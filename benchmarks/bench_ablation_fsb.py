"""Experiment A3: the FSB reduction of Section 4.3.

The paper argues a front-side bus is "a reduced case for the more generic
cross-bar model".  This benchmark executes the claim: the generic ILP-PTAC
machinery instantiated on a single-target scenario must coincide with the
closed-form FSB bound, across a sweep of bus timings and task sizes — and
it measures what the generality costs in solve time versus the closed form.
"""

import random

import pytest

from repro.analysis.report import render_table
from repro.core.fsb import (
    FsbTiming,
    fsb_closed_form,
    fsb_ftc_closed_form,
    fsb_via_crossbar_ilp,
)
from repro.counters.readings import TaskReadings


def _random_pair(rng: random.Random) -> tuple[TaskReadings, TaskReadings]:
    def readings(name: str) -> TaskReadings:
        ps = rng.randint(0, 50_000)
        return TaskReadings(
            name,
            pmem_stall=ps,
            dmem_stall=rng.randint(0, 50_000),
            pcache_miss=rng.randint(0, ps // 6) if ps >= 6 else 0,
        )

    return readings("a"), readings("b")


@pytest.mark.benchmark(group="fsb")
def test_fsb_reduction_equivalence(benchmark, report):
    rng = random.Random(2018)
    cases = []
    for _ in range(24):
        timing = FsbTiming(
            latency=rng.randint(4, 60), cs_min=rng.randint(1, 4)
        )
        cases.append((timing, *_random_pair(rng)))

    def run_all():
        results = []
        for timing, a, b in cases:
            ilp = fsb_via_crossbar_ilp(a, b, timing).bound.delta_cycles
            closed = fsb_closed_form(a, b, timing)
            results.append((timing, a, b, ilp, closed))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for timing, a, b, ilp, closed in results:
        assert ilp == closed, f"reduction violated for l_bus={timing.latency}"

    sample = results[:6]
    report.add(
        "A3 — FSB reduction (crossbar ILP == closed form)",
        render_table(
            ["l_bus", "cs_min", "ILP Δcont", "closed form", "fTC (any rival)"],
            [
                [
                    t.latency,
                    t.cs_min,
                    ilp,
                    closed,
                    fsb_ftc_closed_form(a, t),
                ]
                for t, a, b, ilp, closed in sample
            ],
        ),
    )


@pytest.mark.benchmark(group="fsb")
def test_fsb_closed_form_cost(benchmark):
    """Baseline cost of the closed form (what the ILP generality costs)."""
    timing = FsbTiming(latency=20, cs_min=4)
    a = TaskReadings("a", pmem_stall=30_000, dmem_stall=20_000, pcache_miss=5_000)
    b = TaskReadings("b", pmem_stall=12_000, dmem_stall=9_000, pcache_miss=2_000)
    value = benchmark(lambda: fsb_closed_form(a, b, timing))
    assert value > 0
