"""Experiment T6: regenerate Table 6 (debug counter readings).

Builds the control-loop application and the H-Load contender for both
scenarios, measures them in isolation on the simulator, and compares the
counter footprints against the paper's Table 6 (scaled by the same
factor).  The benchmark timing measures simulation throughput.
"""

import pytest

from repro.analysis.experiments import table6_sim_mode
from repro.analysis.report import render_table6

SCALE = 1 / 16


@pytest.mark.benchmark(group="table6")
def test_table6_counter_readings(benchmark, report):
    rows = benchmark(lambda: table6_sim_mode(scale=SCALE))
    report.add(f"Table 6 — counter readings (scale {SCALE:g})", render_table6(rows, scale=SCALE))

    for row in rows:
        sim, ref = row.simulated, row.reference
        assert sim.pm == ref.pm, f"{row.scenario}/{row.task}: PM mismatch"
        assert sim.ps == pytest.approx(ref.ps, rel=5e-3)
        assert sim.ds == pytest.approx(ref.ds, rel=5e-3)
        assert sim.dmd == 0  # the paper's zeroed dirty-miss column
