"""Experiment T2: regenerate Table 2 (latency / minimum stall constants).

Runs the microbenchmark characterisation suite on the simulator and checks
the measured profile against the paper's Table 2 — exactly the methodology
of Sections 3.3.1-3.3.2.  The benchmark timing measures the cost of a full
characterisation campaign.
"""

import pytest

from repro.analysis.characterization import characterize
from repro.analysis.report import render_latency_table
from repro.platform.latency import tc27x_latency_profile


@pytest.mark.benchmark(group="table2")
def test_table2_characterization(benchmark, report):
    result = benchmark(characterize)
    measured = result.profile

    report.add(
        "Table 2 — SRI latencies and minimum stalls (measured vs paper)",
        render_latency_table(measured, title="measured on simulator")
        + "\n\n"
        + render_latency_table(tc27x_latency_profile(), title="paper"),
    )

    assert measured.as_table() == tc27x_latency_profile().as_table()


@pytest.mark.benchmark(group="table2")
def test_table2_single_probe_cost(benchmark):
    """Cost of one latency probe (isolated accesses on the simulator)."""
    from repro.platform.targets import Operation, Target
    from repro.sim.system import SystemSimulator
    from repro.workloads.microbenchmarks import probe

    sim = SystemSimulator()
    program = probe(Target.PF0, Operation.CODE, "isolated").program
    result = benchmark(lambda: sim.run({1: program}))
    stats = result.core(1).transactions[(Target.PF0, Operation.CODE)]
    assert stats.count == 256
    assert stats.max_service == 16  # the l_max the probe measures
