"""Benchmark-suite configuration.

Each benchmark regenerates one artefact of the paper (see DESIGN.md's
experiment index) and *prints* the regenerated table/figure so that
``pytest benchmarks/ --benchmark-only -s`` doubles as a report generator.
The pytest-benchmark timings additionally quantify the cost of each
analysis step (model solve times, simulation throughput).

Besides the printed sections, benchmarks can attach machine-readable
records via :meth:`Reporter.record`; everything recorded in a session is
written as JSON to ``.benchmarks/engine_report.json`` (override with the
``REPRO_BENCH_JSON`` environment variable), so CI jobs can track
engine-level metrics — e.g. the serial-vs-parallel speedup measured by
``bench_engine_parallel.py`` — without scraping stdout.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

#: Default location of the session's machine-readable benchmark report.
DEFAULT_JSON_PATH = ".benchmarks/engine_report.json"


@pytest.fixture(scope="session")
def report(request):
    """Collector that prints rendered artefacts at session end and dumps
    recorded metrics as JSON."""
    sections: list[str] = []
    records: dict[str, object] = {}

    class Reporter:
        def add(self, title: str, body: str) -> None:
            sections.append(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")

        def record(self, name: str, payload: object) -> None:
            """Attach a JSON-serialisable metric to the session report."""
            records[name] = payload

    yield Reporter()

    if records:
        path = pathlib.Path(
            os.environ.get("REPRO_BENCH_JSON", DEFAULT_JSON_PATH)
        )
        try:
            payload = json.dumps(
                records, indent=2, sort_keys=True, default=repr
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload)
        except (OSError, TypeError, ValueError) as exc:
            # A failed metric dump must never eat the printed report.
            sections.append(f"\n[bench] could not write {path}: {exc}")
        else:
            sections.append(
                f"\n[bench] wrote {len(records)} metric record(s) to {path}"
            )

    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    if capmanager is not None:
        with capmanager.global_and_fixture_disabled():
            for section in sections:
                print(section)
    else:  # pragma: no cover
        for section in sections:
            print(section)
