"""Benchmark-suite configuration.

Each benchmark regenerates one artefact of the paper (see DESIGN.md's
experiment index) and *prints* the regenerated table/figure so that
``pytest benchmarks/ --benchmark-only -s`` doubles as a report generator.
The pytest-benchmark timings additionally quantify the cost of each
analysis step (model solve times, simulation throughput).
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def report(request):
    """Collector that prints rendered artefacts at session end."""
    sections: list[str] = []

    class Reporter:
        def add(self, title: str, body: str) -> None:
            sections.append(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}")

    yield Reporter()
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    if capmanager is not None:
        with capmanager.global_and_fixture_disabled():
            for section in sections:
                print(section)
    else:  # pragma: no cover
        for section in sections:
            print(section)
