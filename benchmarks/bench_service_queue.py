"""Experiment E2: service-queue vs direct remote throughput.

The analysis service adds a durable queue between the engine and its
workers: batches become sqlite-backed jobs, workers lease warm-sharded
units and complete them fenced.  Durability is not free — every unit
takes a lease round-trip and every state transition commits to disk —
so this benchmark measures what the queue costs on the same sweep batch
``bench_engine_parallel.py`` uses:

* run the batch through ``mode="remote"`` against two in-process push
  workers (the direct path: client shards, workers execute);
* run the identical batch through ``mode="service"`` — a coordinator
  with a file-backed store and two auto-registered pull workers — and
  record submit-to-complete throughput (units/sec) next to it.

Results must be identical in both modes (and to serial — the invariant
every backend is held to).  The measured metrics land in the session's
JSON report (``.benchmarks/engine_report.json``) via the shared
``report`` fixture, so CI can track the queue overhead over time.
"""

import time

import pytest

from repro.analysis.report import render_table
from repro.engine import (
    ExperimentEngine,
    WorkerServer,
    get_scenario,
    run_specs,
)
from repro.service import (
    ChaosProxy,
    CoordinatorServer,
    FaultPlan,
    FaultRule,
    PullWorker,
)
from repro.service.store import JobStore

#: Same shrink factor and sweep as E1 — the numbers are comparable.
SCALE = 1 / 4

SPEC_NAMES = tuple(
    f"{base}-pair-{level}"
    for base in ("scenario1", "scenario2")
    for level in ("H", "M", "L")
)


def _batch():
    return [get_scenario(name).scaled(SCALE) for name in SPEC_NAMES]


@pytest.mark.benchmark(group="engine")
def test_service_queue_throughput(benchmark, report, tmp_path):
    specs = _batch()
    serial_results = run_specs(specs)

    # Direct push path: two in-process workers, client-side sharding.
    push_workers = [WorkerServer().start() for _ in range(2)]
    urls = tuple(worker.url for worker in push_workers)
    try:
        with ExperimentEngine(mode="remote", worker_urls=urls) as engine:
            start = time.perf_counter()
            remote_results = run_specs(specs, engine=engine)
            remote_seconds = time.perf_counter() - start
            remote_units = engine.remote_stats.units
    finally:
        for worker in push_workers:
            worker.stop()

    # Service path: durable coordinator queue, two pull workers.
    store = JobStore(tmp_path / "queue.sqlite")
    coordinator = CoordinatorServer(store=store).start()
    pull_workers = [
        PullWorker(coordinator.url, name=f"bench-{i}", idle_poll=0.02).start()
        for i in range(2)
    ]
    try:
        with ExperimentEngine(
            mode="service", coordinator_url=coordinator.url
        ) as engine:
            service_results = benchmark.pedantic(
                lambda: run_specs(specs, engine=engine),
                rounds=1,
                iterations=1,
            )
            service_seconds = benchmark.stats.stats.total
            service_stats = engine.service_stats
            fallbacks = engine.stats.fallbacks
    finally:
        for worker in pull_workers:
            worker.stop()
        coordinator.stop()
        store.close()

    # The queue must never change artefacts.
    assert remote_results == serial_results
    assert service_results == serial_results
    assert fallbacks == 0

    units = remote_units
    service_rate = units / service_seconds if service_seconds else 0.0
    remote_rate = units / remote_seconds if remote_seconds else 0.0
    overhead = (
        service_seconds / remote_seconds if remote_seconds else 0.0
    )

    report.add(
        f"E2 — service-queue throughput ({len(specs)} spec jobs, "
        "2 workers each)",
        render_table(
            ["mode", "seconds", "units/sec"],
            [
                ["remote x2 (direct)", f"{remote_seconds:.2f}",
                 f"{remote_rate:.2f}"],
                ["service x2 (queued)", f"{service_seconds:.2f}",
                 f"{service_rate:.2f}"],
                ["queue overhead", f"{overhead:.2f}x", "-"],
            ],
        ),
    )
    report.record(
        "service_queue",
        {
            "jobs": len(specs),
            "workers": 2,
            "units": units,
            "remote_seconds": round(remote_seconds, 4),
            "service_seconds": round(service_seconds, 4),
            "remote_units_per_second": round(remote_rate, 3),
            "service_units_per_second": round(service_rate, 3),
            "queue_overhead": round(overhead, 3),
            "service_batches": service_stats.batches,
            "service_executed": service_stats.executed,
            "abandoned": service_stats.abandoned,
        },
    )


def _run_service(specs, store_path, proxy_plan=None):
    """One timed service run; workers dial in through a chaos proxy
    when a plan is given, directly otherwise.  Returns
    ``(results, seconds, fallbacks)``."""
    store = JobStore(store_path)
    coordinator = CoordinatorServer(store=store).start()
    proxy = None
    worker_url = coordinator.url
    if proxy_plan is not None:
        proxy = ChaosProxy(coordinator.url, plan=proxy_plan).start()
        worker_url = proxy.url
    workers = [
        PullWorker(worker_url, name=f"bench-{i}", idle_poll=0.02).start()
        for i in range(2)
    ]
    try:
        with ExperimentEngine(
            mode="service", coordinator_url=coordinator.url
        ) as engine:
            start = time.perf_counter()
            results = run_specs(specs, engine=engine)
            seconds = time.perf_counter() - start
            fallbacks = engine.stats.fallbacks
    finally:
        for worker in workers:
            worker.stop()
        if proxy is not None:
            proxy.stop()
        coordinator.stop()
        store.close()
    return results, seconds, fallbacks


@pytest.mark.benchmark(group="engine")
def test_service_queue_faulty_network(benchmark, report, tmp_path):
    """E2b: the queue on a lossy worker network (5% dropped requests).

    The same sweep batch runs twice: once clean, once with both pull
    workers dialing in through a chaos proxy that drops 5% of their
    requests (seeded, so every run replays the same loss pattern).
    Dropped leases, completions and heartbeats all resolve through the
    shared retry policy; results must stay identical, and the recorded
    metric is how much throughput the retries cost.
    """
    specs = _batch()
    serial_results = run_specs(specs)

    clean_results, clean_seconds, clean_fallbacks = _run_service(
        specs, tmp_path / "clean.sqlite"
    )

    plan = FaultPlan(
        [FaultRule("drop", probability=0.05, times=None)], seed=2024
    )

    def _faulty():
        return _run_service(specs, tmp_path / "faulty.sqlite", plan)

    faulty_results, faulty_seconds, faulty_fallbacks = benchmark.pedantic(
        _faulty, rounds=1, iterations=1
    )

    # A lossy network must never change artefacts or force a fallback.
    assert clean_results == serial_results
    assert faulty_results == serial_results
    assert clean_fallbacks == 0 and faulty_fallbacks == 0

    degradation = faulty_seconds / clean_seconds if clean_seconds else 0.0
    dropped = sum(
        1 for record in plan.injections if record["kind"] == "drop"
    )
    report.add(
        f"E2b — service queue on a lossy network ({len(specs)} spec "
        "jobs, 2 workers, 5% request drops)",
        render_table(
            ["network", "seconds", "slowdown"],
            [
                ["clean", f"{clean_seconds:.2f}", "1.00x"],
                ["5% drops", f"{faulty_seconds:.2f}",
                 f"{degradation:.2f}x"],
            ],
        ),
    )
    report.record(
        "service_queue_faulty_network",
        {
            "jobs": len(specs),
            "workers": 2,
            "drop_probability": 0.05,
            "clean_seconds": round(clean_seconds, 4),
            "faulty_seconds": round(faulty_seconds, 4),
            "degradation": round(degradation, 3),
            "proxied_requests": plan.requests,
            "dropped_requests": dropped,
        },
    )
