"""Experiment E2: service-queue vs direct remote throughput.

The analysis service adds a durable queue between the engine and its
workers: batches become sqlite-backed jobs, workers lease warm-sharded
units and complete them fenced.  Durability is not free — every unit
takes a lease round-trip and every state transition commits to disk —
so this benchmark measures what the queue costs on the same sweep batch
``bench_engine_parallel.py`` uses:

* run the batch through ``mode="remote"`` against two in-process push
  workers (the direct path: client shards, workers execute);
* run the identical batch through ``mode="service"`` — a coordinator
  with a file-backed store and two auto-registered pull workers — and
  record submit-to-complete throughput (units/sec) next to it.

Results must be identical in both modes (and to serial — the invariant
every backend is held to).  The measured metrics land in the session's
JSON report (``.benchmarks/engine_report.json``) via the shared
``report`` fixture, so CI can track the queue overhead over time.
"""

import time

import pytest

from repro.analysis.report import render_table
from repro.engine import (
    ExperimentEngine,
    WorkerServer,
    get_scenario,
    run_specs,
)
from repro.service import CoordinatorServer, PullWorker
from repro.service.store import JobStore

#: Same shrink factor and sweep as E1 — the numbers are comparable.
SCALE = 1 / 4

SPEC_NAMES = tuple(
    f"{base}-pair-{level}"
    for base in ("scenario1", "scenario2")
    for level in ("H", "M", "L")
)


def _batch():
    return [get_scenario(name).scaled(SCALE) for name in SPEC_NAMES]


@pytest.mark.benchmark(group="engine")
def test_service_queue_throughput(benchmark, report, tmp_path):
    specs = _batch()
    serial_results = run_specs(specs)

    # Direct push path: two in-process workers, client-side sharding.
    push_workers = [WorkerServer().start() for _ in range(2)]
    urls = tuple(worker.url for worker in push_workers)
    try:
        with ExperimentEngine(mode="remote", worker_urls=urls) as engine:
            start = time.perf_counter()
            remote_results = run_specs(specs, engine=engine)
            remote_seconds = time.perf_counter() - start
            remote_units = engine.remote_stats.units
    finally:
        for worker in push_workers:
            worker.stop()

    # Service path: durable coordinator queue, two pull workers.
    store = JobStore(tmp_path / "queue.sqlite")
    coordinator = CoordinatorServer(store=store).start()
    pull_workers = [
        PullWorker(coordinator.url, name=f"bench-{i}", idle_poll=0.02).start()
        for i in range(2)
    ]
    try:
        with ExperimentEngine(
            mode="service", coordinator_url=coordinator.url
        ) as engine:
            service_results = benchmark.pedantic(
                lambda: run_specs(specs, engine=engine),
                rounds=1,
                iterations=1,
            )
            service_seconds = benchmark.stats.stats.total
            service_stats = engine.service_stats
            fallbacks = engine.stats.fallbacks
    finally:
        for worker in pull_workers:
            worker.stop()
        coordinator.stop()
        store.close()

    # The queue must never change artefacts.
    assert remote_results == serial_results
    assert service_results == serial_results
    assert fallbacks == 0

    units = remote_units
    service_rate = units / service_seconds if service_seconds else 0.0
    remote_rate = units / remote_seconds if remote_seconds else 0.0
    overhead = (
        service_seconds / remote_seconds if remote_seconds else 0.0
    )

    report.add(
        f"E2 — service-queue throughput ({len(specs)} spec jobs, "
        "2 workers each)",
        render_table(
            ["mode", "seconds", "units/sec"],
            [
                ["remote x2 (direct)", f"{remote_seconds:.2f}",
                 f"{remote_rate:.2f}"],
                ["service x2 (queued)", f"{service_seconds:.2f}",
                 f"{service_rate:.2f}"],
                ["queue overhead", f"{overhead:.2f}x", "-"],
            ],
        ),
    )
    report.record(
        "service_queue",
        {
            "jobs": len(specs),
            "workers": 2,
            "units": units,
            "remote_seconds": round(remote_seconds, 4),
            "service_seconds": round(service_seconds, 4),
            "remote_units_per_second": round(remote_rate, 3),
            "service_units_per_second": round(service_rate, 3),
            "queue_overhead": round(overhead, 3),
            "service_batches": service_stats.batches,
            "service_executed": service_stats.executed,
            "abandoned": service_stats.abandoned,
        },
    )
