"""Experiment A5: priority classes and DMA masters (beyond the paper).

The paper restricts itself to contenders in the same SRI priority class.
This experiment probes that scoping decision on the simulator:

1. for single-outstanding CPU masters, fixed-priority and round-robin
   arbitration produce near-identical interference — the restriction is
   harmless for core-vs-core contention;
2. a higher-priority multi-outstanding DMA master breaks the same-class
   alignment assumption (the round-robin-style bound is violated), and
   the occupancy bound of :mod:`repro.core.priority` restores soundness.
"""

import pytest

from repro.analysis.report import render_table
from repro.core.priority import dma_victim_bound
from repro.platform.deployment import custom_scenario, scenario_1
from repro.platform.latency import tc27x_latency_profile
from repro.platform.targets import Target
from repro.sim.dma import DmaAgent
from repro.sim.program import program_from_steps
from repro.sim.requests import data_access
from repro.sim.system import SystemSimulator
from repro.workloads.synthetic import random_task_pair

PROFILE = tc27x_latency_profile()


@pytest.mark.benchmark(group="priority")
def test_work_conserving_equivalence(benchmark, report):
    """Same-class scoping is harmless for CPU masters."""
    scenario = scenario_1()
    pairs = [
        random_task_pair(scenario, seed=seed, max_requests=800)
        for seed in range(5)
    ]

    def run_both():
        rows = []
        for task, contender in pairs:
            rr = SystemSimulator().run({1: task, 2: contender})
            prio = SystemSimulator(
                arbitration="priority", priorities={1: 1, 2: 0}
            ).run({1: task, 2: contender})
            rows.append(
                (
                    task.name,
                    rr.readings(1).require_ccnt(),
                    prio.readings(1).require_ccnt(),
                )
            )
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report.add(
        "A5 — round-robin vs fixed-priority for CPU masters (victim times)",
        render_table(["pair", "RR cycles", "priority cycles"], rows),
    )
    for _, rr_cycles, prio_cycles in rows:
        assert prio_cycles <= rr_cycles * 1.05 + 100


@pytest.mark.benchmark(group="priority")
def test_dma_burst_needs_occupancy_bound(benchmark, report):
    """High-priority DMA: RR-style bound breaks, occupancy bound holds."""
    victim = program_from_steps(
        "victim", [(5, data_access(Target.LMU))] * 200
    )
    agent = DmaAgent(
        master_id=9,
        request=data_access(Target.LMU),
        count=1_600,
        period=3,
        queue_depth=8,
    )
    scenario = custom_scenario(
        "victim-lmu", data_targets=(Target.LMU,)
    )

    def run_case():
        iso = SystemSimulator().run({1: victim}).readings(1).require_ccnt()
        observed = (
            SystemSimulator(
                arbitration="priority", priorities={1: 5, 9: 0}
            )
            .run({1: victim}, dma_agents=[agent])
            .readings(1)
            .require_ccnt()
        )
        return iso, observed

    iso, observed = benchmark.pedantic(run_case, rounds=1, iterations=1)
    rr_style = iso + 200 * 11  # each victim request delayed once
    occupancy = iso + dma_victim_bound(scenario, PROFILE, [agent]).delta_cycles

    report.add(
        "A5 — high-priority DMA burst vs the victim",
        render_table(
            ["quantity", "cycles"],
            [
                ["victim isolation", iso],
                ["observed under hi-prio DMA", observed],
                ["same-class (RR-style) prediction", rr_style],
                ["priority occupancy prediction", occupancy],
            ],
        ),
    )
    assert observed > rr_style  # the paper's scoping is load-bearing
    assert occupancy >= observed  # the extension restores soundness
