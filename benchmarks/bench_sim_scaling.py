"""Simulator throughput: the cost of the hardware substitute.

Not a paper artefact — infrastructure health.  Measures event-engine
throughput (SRI transactions simulated per second) for isolation runs and
co-runs across workload sizes, so regressions in the hot loop show up in
benchmark history.

Since the compiled-program engine landed, this file also carries its
acceptance benchmark: run the same scenario-1 workloads through both
``engine="compiled"`` and ``engine="reference"``, assert the results are
**byte-identical** (pickled :class:`SimResult` bytes compare equal), and
assert the compiled engine delivers **at least 3x** the co-run
requests-per-second of the reference engine.  The measured numbers land
in the session's JSON report (``.benchmarks/engine_report.json``) via
the shared ``report`` fixture and seed the repo's ``BENCH_SIM.json``.
"""

import pickle
import time

import pytest

from repro.analysis.report import render_table
from repro.platform.deployment import scenario_1
from repro.sim.system import SIM_ENGINES, SystemSimulator
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import build_load

#: Acceptance criterion: the compiled engine must simulate the co-run
#: case at least this many times faster than the reference engine.
MIN_CORUN_SPEEDUP = 3.0


@pytest.mark.benchmark(group="sim-throughput")
@pytest.mark.parametrize("denominator", [256, 64, 16])
def test_isolation_throughput(benchmark, denominator):
    program, _ = build_control_loop(scenario_1(), scale=1 / denominator)
    requests = program.request_count()
    sim = SystemSimulator()

    result = benchmark(lambda: sim.run({1: program}))

    assert result.core(1).profile.total == requests
    benchmark.extra_info["sri_requests"] = requests


@pytest.mark.benchmark(group="sim-throughput")
def test_corun_throughput(benchmark):
    scale = 1 / 64
    app, _ = build_control_loop(scenario_1(), scale=scale)
    load = build_load("scenario1", "H", scale=scale)
    sim = SystemSimulator()

    result = benchmark(lambda: sim.run({1: app, 2: load}))

    assert result.core(1).total_wait_cycles > 0
    benchmark.extra_info["sri_requests"] = (
        app.request_count() + load.request_count()
    )


def _best_seconds(run, repeats=3):
    """Best-of-N wall time of ``run()`` (steady state, compile cached)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.benchmark(group="sim-throughput")
def test_engine_equivalence_and_speedup(benchmark, report):
    """Compiled engine = reference engine, only >= 3x faster on co-runs."""
    scale = 1 / 16
    scenario = scenario_1()
    app, _ = build_control_loop(scenario, scale=scale)
    load = build_load("scenario1", "H", scale=scale)
    iso_requests = app.request_count()
    corun_requests = iso_requests + load.request_count()

    cases = {
        "isolation": {1: app},
        "corun": {1: app, 2: load},
    }
    rows = []
    payload = {"scenario": scenario.name, "scale": scale}
    speedups = {}
    for label, programs in cases.items():
        requests = iso_requests if label == "isolation" else corun_requests
        seconds = {}
        pickles = {}
        for engine in SIM_ENGINES:
            sim = SystemSimulator(engine=engine)
            # Warm once outside the timed region: the first compiled run
            # pays the one-off step-stream flattening that later runs
            # (and every sweep in practice) amortise away.
            sim.run(programs)
            if label == "corun" and engine == "compiled":
                # The headline number doubles as the tracked benchmark.
                result = benchmark.pedantic(
                    lambda: sim.run(programs), rounds=3, iterations=1
                )
                seconds[engine] = benchmark.stats.stats.min
            else:
                seconds[engine], result = _best_seconds(
                    lambda: sim.run(programs)
                )
            pickles[engine] = pickle.dumps(result)

        # The engines must be indistinguishable to every consumer:
        # identical pickled bytes covers counters, stats and artifacts.
        assert pickles["compiled"] == pickles["reference"], (
            f"{label}: compiled and reference engines diverged"
        )

        rps = {
            engine: requests / seconds[engine] if seconds[engine] else 0.0
            for engine in SIM_ENGINES
        }
        speedup = seconds["reference"] / max(seconds["compiled"], 1e-12)
        speedups[label] = speedup
        rows.append(
            [
                label,
                requests,
                f"{rps['reference']:,.0f}",
                f"{rps['compiled']:,.0f}",
                f"{speedup:.2f}x",
            ]
        )
        payload[label] = {
            "sri_requests": requests,
            "reference_seconds": round(seconds["reference"], 4),
            "compiled_seconds": round(seconds["compiled"], 4),
            "reference_rps": round(rps["reference"], 1),
            "compiled_rps": round(rps["compiled"], 1),
            "speedup": round(speedup, 3),
            "byte_identical": True,
        }

    benchmark.extra_info["sri_requests"] = corun_requests
    assert speedups["corun"] >= MIN_CORUN_SPEEDUP, (
        f"compiled engine ran the co-run only {speedups['corun']:.2f}x "
        f"faster than the reference engine; the compiled-program engine "
        f"promises >= {MIN_CORUN_SPEEDUP}x"
    )

    report.add(
        "P2 — compiled vs reference sim engine (scenario 1, scale 1/16)",
        render_table(
            ["case", "requests", "ref req/s", "compiled req/s", "speedup"],
            rows,
        ),
    )
    report.record("sim_engine_scaling", payload)
