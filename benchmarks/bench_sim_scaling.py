"""Simulator throughput: the cost of the hardware substitute.

Not a paper artefact — infrastructure health.  Measures event-engine
throughput (SRI transactions simulated per second) for isolation runs and
co-runs across workload sizes, so regressions in the hot loop show up in
benchmark history.
"""

import pytest

from repro.platform.deployment import scenario_1
from repro.sim.system import SystemSimulator
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import build_load


@pytest.mark.benchmark(group="sim-throughput")
@pytest.mark.parametrize("denominator", [256, 64, 16])
def test_isolation_throughput(benchmark, denominator):
    program, _ = build_control_loop(scenario_1(), scale=1 / denominator)
    requests = program.request_count()
    sim = SystemSimulator()

    result = benchmark(lambda: sim.run({1: program}))

    assert result.core(1).profile.total == requests
    benchmark.extra_info["sri_requests"] = requests


@pytest.mark.benchmark(group="sim-throughput")
def test_corun_throughput(benchmark):
    scale = 1 / 64
    app, _ = build_control_loop(scenario_1(), scale=scale)
    load = build_load("scenario1", "H", scale=scale)
    sim = SystemSimulator()

    result = benchmark(lambda: sim.run({1: app, 2: load}))

    assert result.core(1).total_wait_cycles > 0
    benchmark.extra_info["sri_requests"] = (
        app.request_count() + load.request_count()
    )
