"""Experiment A8: three-core evaluation on the full TC277 (extension).

The paper evaluates one contender at a time; a real TC277 integration has
two.  This experiment bounds the application's contention against two
simultaneous load generators (joint multi-contender ILP vs the naive sum
of pairwise bounds), co-runs all three cores and checks soundness.
"""

import pytest

from repro.analysis.report import render_table
from repro.analysis.three_core import three_core_experiment

SCALE = 1 / 32


@pytest.mark.benchmark(group="three-core")
@pytest.mark.parametrize("scenario_name", ["scenario1", "scenario2"])
def test_three_core_evaluation(benchmark, report, scenario_name):
    rows = benchmark.pedantic(
        lambda: three_core_experiment(scenario_name, scale=SCALE),
        rounds=1,
        iterations=1,
    )

    report.add(
        f"A8 — three-core evaluation ({scenario_name}, scale {SCALE:g})",
        render_table(
            [
                "loads (core0, core2)",
                "joint Δ",
                "pairwise ΣΔ",
                "saving",
                "observed",
                "pred (joint)",
                "sound",
            ],
            [
                [
                    f"{row.loads[0]}+{row.loads[1]}",
                    row.joint_delta,
                    row.pairwise_sum_delta,
                    row.joint_saving,
                    f"{row.observed_slowdown:.2f}x",
                    f"{row.joint_prediction / row.isolation_cycles:.2f}x",
                    row.sound,
                ]
                for row in rows
            ],
        ),
    )

    for row in rows:
        # Soundness of both formulations against the 3-core observation.
        assert row.sound, row
        assert row.pairwise_prediction >= row.observed_cycles
        # The joint bound never exceeds the naive pairwise sum.
        assert row.joint_saving >= 0
