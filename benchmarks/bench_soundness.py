"""Experiment A4: randomized soundness sweep.

Sweeps random task pairs through the full pipeline (isolation measurement
→ model bounds → co-run observation) and asserts the paper's soundness
statement — "in all experiments our model predictions upperbound the
observed multicore execution time" — far beyond the paper's six
experiments.  Also reports mean tightness (prediction / observation) per
model, the quantity the paper can only discuss qualitatively ("whether the
gap ... corresponds to overestimation cannot be determined" on hardware;
on the simulator it can).
"""

import pytest

from repro.analysis.report import render_table
from repro.analysis.validation import soundness_sweep
from repro.platform.deployment import scenario_1, scenario_2
from repro.workloads.synthetic import random_task_pair

PAIRS_PER_SCENARIO = 10


@pytest.mark.benchmark(group="soundness")
@pytest.mark.parametrize(
    "scenario_factory", [scenario_1, scenario_2], ids=["sc1", "sc2"]
)
def test_soundness_sweep(benchmark, report, scenario_factory):
    scenario = scenario_factory()
    pairs = [
        random_task_pair(scenario, seed=seed, max_requests=1_500)
        for seed in range(PAIRS_PER_SCENARIO)
    ]

    sweep = benchmark.pedantic(
        lambda: soundness_sweep(pairs, scenario), rounds=1, iterations=1
    )

    assert sweep.all_sound, sweep.violations
    rows = [
        [model, f"{sweep.mean_tightness(model):.2f}"]
        for model in ("ilp-ptac", "ftc-refined", "ftc-baseline")
    ]
    report.add(
        f"A4 — soundness sweep, {scenario.name} "
        f"({PAIRS_PER_SCENARIO} random pairs, 0 violations)",
        render_table(["model", "mean prediction/observation"], rows),
    )
    # Tightness must improve with information.
    assert (
        sweep.mean_tightness("ilp-ptac")
        <= sweep.mean_tightness("ftc-refined")
        <= sweep.mean_tightness("ftc-baseline")
    )
