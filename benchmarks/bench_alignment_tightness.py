"""Experiment A7: exhaustive-alignment tightness measurement (extension).

The paper: "whether the gap between actual measurements and model
estimates corresponds to overestimation (and to what extent) cannot be
determined", because worst-case alignment cannot be triggered on
hardware.  On the simulator it can, for small tasks: sweep every
contender release offset, take the worst observed victim time, and split
each model's margin into *realised* interference and *unrealised*
margin.  Also regenerates the throttling trade-off curve (A5's cited
enforcement line of work, analysis side).
"""

import pytest

from repro.analysis.alignment import alignment_sweep
from repro.analysis.enforcement import throttle_sweep
from repro.analysis.report import render_table
from repro.core.ftc import ftc_refined
from repro.core.ilp_ptac import ilp_ptac_bound
from repro.platform.deployment import custom_scenario, scenario_1
from repro.platform.latency import tc27x_latency_profile
from repro.platform.targets import Target
from repro.sim.program import program_from_steps
from repro.sim.requests import data_access
from repro.sim.system import run_isolation

PROFILE = tc27x_latency_profile()


@pytest.mark.benchmark(group="alignment")
def test_alignment_tightness(benchmark, report):
    victim = program_from_steps(
        "victim", [(3, data_access(Target.LMU))] * 80
    )
    rival = program_from_steps(
        "rival", [(2, data_access(Target.LMU))] * 80
    )
    scenario = custom_scenario("lmu", data_targets=(Target.LMU,))

    result = benchmark.pedantic(
        lambda: alignment_sweep(victim, rival, step=1),
        rounds=1,
        iterations=1,
    )

    readings_a = run_isolation(victim).readings
    readings_b = run_isolation(rival, core=2).readings
    ilp = ilp_ptac_bound(readings_a, readings_b, PROFILE, scenario).bound
    ftc = ftc_refined(readings_a, PROFILE, scenario)

    rows = []
    for bound in (ilp, ftc):
        wcet = result.isolation_cycles + bound.delta_cycles
        rows.append(
            [
                bound.model,
                wcet,
                result.worst_cycles,
                f"{result.pessimism_of(wcet):.1%}",
            ]
        )
        assert wcet >= result.worst_cycles  # sound against the true worst
    report.add(
        "A7 — exhaustive alignment vs model margins "
        f"(worst offset {result.worst_offset}, "
        f"{result.worst_slowdown:.2f}x observed)",
        render_table(
            ["model", "predicted WCET", "worst observed", "unrealised margin"],
            rows,
        ),
    )


@pytest.mark.benchmark(group="alignment")
def test_throttling_tradeoff(benchmark, report):
    from repro.workloads.control_loop import build_control_loop
    from repro.workloads.loads import build_load

    scenario = scenario_1()
    app, _ = build_control_loop(scenario, scale=1 / 64)
    load = build_load("scenario1", "H", scale=1 / 64)
    victim_readings = run_isolation(app).readings

    points = benchmark.pedantic(
        lambda: throttle_sweep(
            victim_readings, load, scenario, gaps=(0, 4, 8, 16, 32, 64)
        ),
        rounds=1,
        iterations=1,
    )
    report.add(
        "A7 — bandwidth-regulation trade-off (scenario 1, H-Load)",
        render_table(
            ["regulator gap", "victim Δcont (windowed)", "contender cycles"],
            [
                [p.min_gap, p.delta_cycles, p.contender_cycles]
                for p in points
            ],
        ),
    )
    deltas = [p.delta_cycles for p in points]
    assert deltas == sorted(deltas, reverse=True)
