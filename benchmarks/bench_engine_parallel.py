"""Experiment E1: serial vs. parallel engine throughput.

The engine's pitch is that design-space exploration batches — many
independent ``(scenario, workload, model)`` jobs — scale with cores and
cache across reruns.  This benchmark quantifies both claims on a sweep
batch of registered scenario specs:

* run the batch serially (the deterministic baseline);
* run the identical batch on the process-pool engine and record the
  speedup (results must be equal — parallelism never changes artefacts);
* run it once more against the warm cache and record the hit-through
  time (zero jobs may execute).

A second experiment (E1-remote) runs the same batch through
``mode="remote"`` against two real ``repro worker`` subprocesses,
recording remote-mode throughput next to the local numbers — the metric
the distributed backend is judged by.

The measured metrics land in the session's JSON report
(``.benchmarks/engine_report.json``) via the shared ``report`` fixture,
so CI can track engine throughput over time.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.analysis.report import render_table
from repro.engine import (
    ExperimentEngine,
    ResultCache,
    get_scenario,
    run_specs,
    wait_for_workers,
)

#: Shrink factor applied to the registered specs (keeps the batch honest
#: — every job simulates and solves — while bounding wall-clock time).
SCALE = 1 / 4

#: The sweep batch: every two-core pairing of both reference scenarios.
SPEC_NAMES = tuple(
    f"{base}-pair-{level}"
    for base in ("scenario1", "scenario2")
    for level in ("H", "M", "L")
)


def _batch():
    return [get_scenario(name).scaled(SCALE) for name in SPEC_NAMES]


@pytest.mark.benchmark(group="engine")
def test_engine_parallel_throughput(benchmark, report):
    specs = _batch()
    workers = min(len(specs), os.cpu_count() or 1)

    start = time.perf_counter()
    serial_results = run_specs(specs)
    serial_seconds = time.perf_counter() - start

    cache = ResultCache()
    # Close the pool before pytest-benchmark's later tests time anything:
    # leaked workers would skew the rest of the session.
    with ExperimentEngine(
        mode="process", workers=workers, cache=cache
    ) as parallel_engine:
        parallel_results = benchmark.pedantic(
            lambda: run_specs(specs, engine=parallel_engine),
            rounds=1,
            iterations=1,
        )
        parallel_seconds = benchmark.stats.stats.total

        executed_before_rerun = parallel_engine.run_count
        start = time.perf_counter()
        cached_results = run_specs(specs, engine=parallel_engine)
        cached_seconds = time.perf_counter() - start

    # Parallelism and caching must never change artefacts.
    assert parallel_results == serial_results
    assert cached_results == serial_results
    # The warm rerun hits the cache instead of re-simulating.
    assert parallel_engine.run_count == executed_before_rerun
    assert all(result.sound for result in serial_results)

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    report.add(
        f"E1 — engine throughput ({len(specs)} spec jobs, "
        f"{workers} workers)",
        render_table(
            ["mode", "seconds", "jobs executed"],
            [
                ["serial", f"{serial_seconds:.2f}", len(specs)],
                [
                    f"process x{workers}",
                    f"{parallel_seconds:.2f}",
                    executed_before_rerun,
                ],
                ["cached rerun", f"{cached_seconds:.3f}", 0],
                ["speedup", f"{speedup:.2f}x", "-"],
            ],
        ),
    )
    report.record(
        "engine_parallel",
        {
            "jobs": len(specs),
            "workers": workers,
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "cached_rerun_seconds": round(cached_seconds, 4),
            "speedup": round(speedup, 3),
            "fallbacks": parallel_engine.stats.fallbacks,
        },
    )


def _spawn_worker() -> tuple[subprocess.Popen, str]:
    """Launch one ``repro worker`` subprocess on an ephemeral port and
    parse its URL from the announced listening line."""
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    python_path = os.pathsep.join(
        part
        for part in (src, os.environ.get("PYTHONPATH"))
        if part
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={**os.environ, "PYTHONPATH": python_path},
    )
    line = process.stdout.readline().strip()
    if not line:
        # Startup failure: surface the real cause, not an IndexError.
        stderr = process.stderr.read()
        process.wait(timeout=10)
        raise RuntimeError(
            f"repro worker exited {process.returncode} before "
            f"announcing its URL; stderr:\n{stderr}"
        )
    return process, line.split()[-1]


@pytest.mark.benchmark(group="engine")
def test_engine_remote_throughput(benchmark, report):
    """E1-remote: the same spec batch sharded over two worker processes.

    Real subprocess workers (true multi-process parallelism, the full
    wire/transport path), compared against a fresh serial run; results
    must be identical, and the throughput lands in the JSON report as
    the remote backend's tracked metric.
    """
    specs = _batch()
    serial_results = run_specs(specs)

    workers = [_spawn_worker() for _ in range(2)]
    urls = tuple(url for _, url in workers)
    try:
        wait_for_workers(urls, timeout=30.0)
        with ExperimentEngine(mode="remote", worker_urls=urls) as engine:
            remote_results = benchmark.pedantic(
                lambda: run_specs(specs, engine=engine),
                rounds=1,
                iterations=1,
            )
            remote_seconds = benchmark.stats.stats.total
            remote_stats = engine.remote_stats
            fallbacks = engine.stats.fallbacks
    finally:
        for process, _ in workers:
            process.terminate()
        for process, _ in workers:
            process.wait(timeout=10)

    # Remote execution must never change artefacts.
    assert remote_results == serial_results
    assert remote_stats is not None and remote_stats.failed_workers == 0

    report.add(
        f"E1-remote — remote-mode throughput ({len(specs)} spec jobs, "
        "2 workers)",
        render_table(
            ["mode", "seconds", "jobs executed"],
            [
                [
                    "remote x2",
                    f"{remote_seconds:.2f}",
                    remote_stats.executed,
                ],
            ],
        ),
    )
    report.record(
        "engine_remote",
        {
            "jobs": len(specs),
            "workers": 2,
            "remote_seconds": round(remote_seconds, 4),
            "units": remote_stats.units,
            "reassigned": remote_stats.reassigned,
            "failed_workers": remote_stats.failed_workers,
            "fallbacks": fallbacks,
        },
    )
