"""Experiment E9: result-store recording and diff throughput.

The store's pitch is that recording is cheap enough to leave on for
every batch and that ``repro diff`` stays interactive over realistically
sized result histories.  Two measurements back that up:

* **record throughput** — rows/second of :meth:`ResultStore.record_batch`
  over synthetic figure-4 cells (one sqlite transaction per batch, the
  engine's write pattern);
* **diff latency** — :func:`diff_runs` wall time over two recorded runs
  of ``CELLS`` cells with a seeded fraction of drifted values, i.e. the
  interactive cost of the CI gate.

Both metrics land in the session JSON report via the shared ``report``
fixture so CI can track them over time.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis.experiments import Figure4Row
from repro.store import ResultStore, diff_runs

#: Cells per synthetic run — roughly a full model x scenario x load
#: matrix, two orders of magnitude above today's figure batches.
CELLS = 2000

#: One drifted cell per this many (the diff's worst case is ~all
#: unchanged plus a handful of findings to classify and render).
DRIFT_EVERY = 100


def _rows(drift: bool = False):
    rows = []
    for i in range(CELLS):
        wobble = 0.001 if drift and i % DRIFT_EVERY == 0 else 0.0
        rows.append(
            Figure4Row(
                # scenario carries the index: cells must be unique, or
                # the (run, cell) primary key folds the synthetic rows.
                scenario=f"scenario{i // 39}",
                load=("H", "M", "L")[i % 3],
                model=f"model-{i % 13}",
                delta_cycles=100 + i,
                slowdown=1.0 + (i % 50) / 100.0 + wobble,
                observed_slowdown=1.0 + (i % 50) / 110.0,
            )
        )
    return rows


def _record_run(store, rows, label):
    run = store.begin_run(engine_mode="bench", label=label)
    store.record_batch(
        run, [(f"figure4:{i}", row, None) for i, row in enumerate(rows)]
    )
    return run


@pytest.mark.benchmark(group="store")
def test_store_record_throughput(benchmark, tmp_path, report):
    store = ResultStore(tmp_path)
    rows = _rows()
    counter = iter(range(1_000_000))

    def record():
        return _record_run(store, rows, f"round-{next(counter)}")

    benchmark(record)
    start = time.perf_counter()
    _record_run(store, rows, "timed")
    elapsed = time.perf_counter() - start
    throughput = CELLS / elapsed
    report.record(
        "store_record",
        {
            "cells": CELLS,
            "seconds": elapsed,
            "rows_per_second": throughput,
        },
    )
    report.add(
        "E9: result-store record throughput",
        f"{CELLS} cells in {elapsed * 1e3:.1f} ms "
        f"({throughput:,.0f} rows/s)",
    )
    store.close()


@pytest.mark.benchmark(group="store")
def test_diff_latency(benchmark, tmp_path, report):
    store = ResultStore(tmp_path)
    before = _record_run(store, _rows(), "before")
    after = _record_run(store, _rows(drift=True), "after")

    result = benchmark(lambda: diff_runs(store, before, after))
    assert result.regression
    assert result.counts()["changed"] == CELLS // DRIFT_EVERY

    start = time.perf_counter()
    diff_runs(store, before, after)
    elapsed = time.perf_counter() - start
    report.record(
        "store_diff",
        {
            "cells": CELLS,
            "changed": CELLS // DRIFT_EVERY,
            "seconds": elapsed,
        },
    )
    report.add(
        "E9: diff latency",
        f"diff of 2x{CELLS} cells ({CELLS // DRIFT_EVERY} drifted) in "
        f"{elapsed * 1e3:.1f} ms",
    )
    store.close()
