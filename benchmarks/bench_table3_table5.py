"""Experiments T3/F2/F3/T5: placement matrix, access paths, ILP tailoring.

These artefacts are structural rather than numeric:

* **Table 3 / Figure 2** — the placement matrix and the code/data access
  paths are platform facts; the benchmark re-derives Figure 2's valid
  (target, operation) pairs *from* Table 3 and checks they agree.
* **Figure 3 / Table 5** — the two deployment scenarios and the extra ILP
  constraints their tailoring adds; the benchmark diffs the generated
  constraint sets against the untailored model, which is exactly what
  Table 5 lists.
"""

import pytest

from repro import paper
from repro.analysis.report import render_placement_table, render_table
from repro.core.ilp_ptac import build_ilp_ptac
from repro.platform.cacheability import (
    ALL_SECTION_KINDS,
    allowed_targets,
)
from repro.platform.deployment import (
    architectural_scenario,
    scenario_1,
    scenario_2,
)
from repro.platform.latency import tc27x_latency_profile
from repro.platform.targets import (
    VALID_PAIRS,
    Operation,
    Target,
)


@pytest.mark.benchmark(group="table3")
def test_table3_placement_matrix(benchmark, report):
    text = benchmark(render_placement_table)
    report.add("Table 3 — code/data placement constraints", text)

    # Figure 2 from Table 3: an operation can reach a target iff some
    # section kind with that operation may be placed there.
    derived_pairs = set()
    for kind in ALL_SECTION_KINDS:
        for target in allowed_targets(kind):
            derived_pairs.add((target, kind.operation))
    assert derived_pairs == set(VALID_PAIRS)


@pytest.mark.benchmark(group="table5")
def test_table5_scenario_tailoring(benchmark, report):
    """Diff the tailored ILPs against the untailored one (Table 5 rows)."""
    profile = tc27x_latency_profile()
    app = paper.table6("scenario1", "app")
    rival = paper.table6("scenario1", "H-Load")

    def build_all():
        return {
            "architectural": build_ilp_ptac(
                app, rival, profile, architectural_scenario()
            ),
            "scenario1": build_ilp_ptac(app, rival, profile, scenario_1()),
            "scenario2": build_ilp_ptac(
                paper.table6("scenario2", "app"),
                paper.table6("scenario2", "H-Load"),
                profile,
                scenario_2(),
            ),
        }

    models = benchmark(build_all)

    rows = []
    for name, model in models.items():
        pair_vars = [v.name for v in model.variables if "[" in v.name]
        extra = sorted(
            {
                c.name
                for c in model.constraints
                if c.name.startswith(("code_count", "data_count"))
            }
        )
        rows.append(
            [
                name,
                len(model.variables),
                len(model.constraints),
                ", ".join(extra) if extra else "(none)",
            ]
        )
        # Table 5's zero rows appear as absent variables:
        if name in ("scenario1", "scenario2"):
            assert not any("dfl" in v for v in pair_vars)
            assert not any("lmu,co" in v for v in pair_vars)
        if name == "scenario1":
            assert not any(
                "pf0,da" in v or "pf1,da" in v for v in pair_vars
            )
    report.add(
        "Table 5 — ILP-PTAC tailoring per scenario",
        render_table(
            ["scenario", "vars", "constraints", "tailoring constraints"],
            rows,
        ),
    )
