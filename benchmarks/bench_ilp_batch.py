"""Experiment P1: cold vs warm-started batch ILP solving.

The batch solver's pitch (ROADMAP "batch-aware ILP solving"): sweep
points over one (model, scenario) pair share their whole constraint
structure, so reusing the previous point's simplex basis and incumbent
should cut solve effort severalfold *without changing a single result*.
This benchmark quantifies the claim on the Figure 4 contender ladder —
the exact repeated-structure regime the layer targets:

* solve every sweep instance cold (``warm_start=False``), counting
  simplex iterations, branch-and-bound nodes and wall-clock time;
* solve the identical instances through one warm :class:`BatchSolver`
  chain and count again;
* assert bit-identical bounds, **at least a 3x reduction in total
  simplex iterations**, and — now that the simplex kernels are numpy
  whole-array operations — **at least a 3x wall-clock speedup** too.

The measured trajectory lands in the session's JSON report
(``.benchmarks/engine_report.json``) via the shared ``report`` fixture
and seeds the repo's ``BENCH_ILP.json``, so CI tracks the cold/warm
ratio over time.
"""

import time

import pytest

from repro import paper
from repro.analysis.report import render_table
from repro.core.ilp_ptac import IlpPtacOptions, build_ilp_ptac
from repro.ilp.batch import BatchSolver
from repro.platform.deployment import scenario_1, scenario_2
from repro.platform.latency import tc27x_latency_profile

#: The Figure 4 contender ladder, densified into a sweep (the H/M/L
#: levels are roughly 1.0 / 0.6 / 0.3 of the H-Load footprint).
SWEEP_SCALES = (0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)

#: Acceptance criterion: warm solving must cut total simplex iterations
#: at least this much on the contender sweep.
MIN_ITERATION_REDUCTION = 3.0

#: Acceptance criterion: the iteration savings must survive contact with
#: the wall clock.  Requires the vectorised simplex kernels and the
#: scatter-layout ``instantiate`` — per-row Python pivots used to eat
#: the warm start's advantage in constant overhead.
MIN_WALL_CLOCK_SPEEDUP = 3.0


def _sweep_models():
    """One ILP-PTAC model per (scenario, contender-scale) sweep point."""
    profile = tc27x_latency_profile()
    models = []
    for scenario in (scenario_1(), scenario_2()):
        readings_a = paper.table6(scenario.name, "app")
        contender = paper.table6(scenario.name, "H-Load")
        for scale in SWEEP_SCALES:
            models.append(
                build_ilp_ptac(
                    readings_a,
                    contender if scale == 1.0 else contender.scaled(scale),
                    profile,
                    scenario,
                    IlpPtacOptions(),
                )
            )
    return models


#: Wall-clock comparisons take the best of this many passes per side —
#: a single pass is at the mercy of scheduler noise.
TIMING_ROUNDS = 5


@pytest.mark.benchmark(group="ilp-batch")
def test_ilp_batch_warm_start(benchmark, report):
    models = _sweep_models()

    cold_iterations = cold_nodes = 0
    cold_objectives = []
    for model in models:
        solution = model.solve()
        cold_iterations += solution.stats.simplex_iterations
        cold_nodes += solution.stats.nodes
        cold_objectives.append(solution.objective)

    cold_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        for model in models:
            model.solve()
        cold_seconds = min(cold_seconds, time.perf_counter() - start)

    def warm_sweep():
        solver = BatchSolver()
        return solver, [solver.solve(model) for model in models]

    solver, warm_solutions = benchmark.pedantic(
        warm_sweep, rounds=TIMING_ROUNDS, iterations=1
    )
    warm_seconds = benchmark.stats.stats.min
    warm_iterations = solver.stats.simplex_iterations
    warm_nodes = solver.stats.nodes

    # Warm solving must be a pure performance change: bit-identical
    # objectives on every sweep point.
    assert [s.objective for s in warm_solutions] == cold_objectives
    # Every point after the first per structure is a warm hit (the two
    # scenarios contribute one structure each).
    assert solver.stats.structures == 2
    assert solver.stats.warm_hits == len(models) - 2

    reduction = cold_iterations / max(warm_iterations, 1)
    assert reduction >= MIN_ITERATION_REDUCTION, (
        f"warm start cut simplex iterations only {reduction:.2f}x "
        f"({cold_iterations} -> {warm_iterations}); the batch layer "
        f"promises >= {MIN_ITERATION_REDUCTION}x on the contender sweep"
    )

    speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    assert speedup >= MIN_WALL_CLOCK_SPEEDUP, (
        f"warm sweep ran only {speedup:.2f}x faster than cold "
        f"({cold_seconds:.3f}s -> {warm_seconds:.3f}s); the vectorised "
        f"kernels promise >= {MIN_WALL_CLOCK_SPEEDUP}x wall-clock on "
        f"the contender sweep"
    )
    report.add(
        f"P1 — batch ILP warm start ({len(models)} sweep solves)",
        render_table(
            ["mode", "simplex iterations", "bnb nodes", "seconds"],
            [
                ["cold", cold_iterations, cold_nodes, f"{cold_seconds:.3f}"],
                ["warm", warm_iterations, warm_nodes, f"{warm_seconds:.3f}"],
                [
                    "reduction",
                    f"{reduction:.2f}x",
                    f"{cold_nodes / max(warm_nodes, 1):.2f}x",
                    f"{speedup:.2f}x",
                ],
            ],
        ),
    )
    report.record(
        "ilp_batch_warm_start",
        {
            "sweep_solves": len(models),
            "cold_simplex_iterations": cold_iterations,
            "warm_simplex_iterations": warm_iterations,
            "iteration_reduction": round(reduction, 3),
            "cold_nodes": cold_nodes,
            "warm_nodes": warm_nodes,
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "wall_clock_speedup": round(speedup, 3),
            "warm_hit_rate": round(solver.stats.warm_hit_rate, 3),
        },
    )
