"""Experiment A1: information-degree ablation.

Quantifies what each level of observability buys, on identical
simulator-measured inputs: architectural knowledge only (ftc-baseline),
deployment knowledge about τa (ftc-refined), contender counters (ilp-ptac)
and ground-truth PTACs (ideal — unobtainable on real silicon).
"""

import pytest

from repro.analysis.experiments import information_ablation
from repro.analysis.report import render_ablation

SCALE = 1 / 32


@pytest.mark.benchmark(group="ablation-information")
def test_information_ablation(benchmark, report):
    rows = benchmark.pedantic(
        lambda: information_ablation(scale=SCALE), rounds=1, iterations=1
    )
    report.add(
        f"A1 — information-degree ablation (scale {SCALE:g})",
        render_ablation(rows),
    )

    for scenario in ("scenario1", "scenario2"):
        by_model = lambda m, load=None: next(  # noqa: E731
            r.delta_cycles
            for r in rows
            if r.scenario == scenario
            and r.model == m
            and (load is None or r.load == load)
        )
        # The information ladder must be monotone.
        assert by_model("ftc-refined") <= by_model("ftc-baseline")
        for load in ("H", "M", "L"):
            assert (
                by_model("ideal", load)
                <= by_model("ilp-ptac", load)
                <= by_model("ftc-refined")
            )
