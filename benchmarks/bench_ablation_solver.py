"""Experiment A2: ILP solver ablation and scaling.

Compares the bundled branch-and-bound against SciPy/HiGHS on the paper's
instances (identical optima, comparable latency) and measures how solve
time scales with the number of simultaneous contenders — the practical
cost of the multi-contender extension.
"""

import pytest

from repro import paper
from repro.analysis.report import render_table
from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.core.multicontender import multi_contender_bound
from repro.platform.deployment import scenario_1, scenario_2
from repro.platform.latency import tc27x_latency_profile

PROFILE = tc27x_latency_profile()


@pytest.mark.benchmark(group="solver-backends")
@pytest.mark.parametrize("backend", ["bnb", "scipy", "lp"])
@pytest.mark.parametrize("scenario_name", ["scenario1", "scenario2"])
def test_backend_solve_time(benchmark, backend, scenario_name):
    scenario = scenario_1() if scenario_name == "scenario1" else scenario_2()
    app = paper.table6(scenario_name, "app")
    rival = paper.table6(scenario_name, "H-Load")
    options = IlpPtacOptions(backend=backend)

    result = benchmark(
        lambda: ilp_ptac_bound(app, rival, PROFILE, scenario, options)
    )
    expected = paper.EXPECTED_DELTA[(scenario_name, "ilp-ptac", "H")]
    if backend == "lp":
        # The relaxation is a (slightly) looser sound bound.
        assert expected <= result.bound.delta_cycles <= expected + 100
    else:
        assert result.bound.delta_cycles == expected


@pytest.mark.benchmark(group="solver-scaling")
@pytest.mark.parametrize("contenders", [1, 2, 4, 8])
def test_multicontender_scaling(benchmark, contenders, report):
    """Solve time and bound growth with the number of contenders."""
    app = paper.table6("scenario1", "app")
    rivals = [
        paper.contender_readings("scenario1", "L").scaled(
            1.0, name=f"rival{i}"
        )
        for i in range(contenders)
    ]
    scenario = scenario_1()

    result = benchmark(
        lambda: multi_contender_bound(app, rivals, PROFILE, scenario)
    )
    assert result.bound.delta_cycles > 0
    if contenders == 8:
        report.add(
            "A2 — multi-contender instance at k=8",
            render_table(
                ["metric", "value"],
                [
                    ["variables", len(result.model.variables)],
                    ["constraints", len(result.model.constraints)],
                    ["B&B nodes", result.solution.stats.nodes],
                    [
                        "simplex iterations",
                        result.solution.stats.simplex_iterations,
                    ],
                    ["Δcont (cycles)", result.bound.delta_cycles],
                ],
            ),
        )
