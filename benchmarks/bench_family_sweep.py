"""Experiment F1: scenario-family sweep throughput.

Families turn "add a sweep" into three lines of axes; this benchmark
quantifies what a family run costs and how it scales.  It runs the
cacheability family (15 Table 3-legal custom placements, each a full
measure → bound → co-run → check cycle) serially and on the process
pool, prints the family artefact, and records **members per second**
for both modes — plus the warm-cache rerun — into the session's JSON
report (``.benchmarks/engine_report.json``), so CI tracks family
throughput next to the engine and ILP metrics.
"""

import os
import time

import pytest

from repro.analysis.export import family_artifact
from repro.analysis.report import render_artifact, render_table
from repro.engine import (
    ExperimentEngine,
    ResultCache,
    expand_family,
    run_family,
)

FAMILY = "cacheability"


@pytest.mark.benchmark(group="engine")
def test_family_sweep_throughput(benchmark, report):
    members = expand_family(FAMILY)
    workers = min(len(members), os.cpu_count() or 1)

    start = time.perf_counter()
    serial_results = run_family(FAMILY)
    serial_seconds = time.perf_counter() - start

    cache = ResultCache()
    with ExperimentEngine(
        mode="process", workers=workers, cache=cache
    ) as engine:
        parallel_results = benchmark.pedantic(
            lambda: run_family(FAMILY, engine=engine),
            rounds=1,
            iterations=1,
        )
        parallel_seconds = benchmark.stats.stats.total

        executed_before_rerun = engine.run_count
        start = time.perf_counter()
        cached_results = run_family(FAMILY, engine=engine)
        cached_seconds = time.perf_counter() - start

    # Parallelism and caching never change family artefacts.
    assert parallel_results == serial_results
    assert cached_results == serial_results
    assert engine.run_count == executed_before_rerun
    assert all(result.sound for result in serial_results)

    def rate(seconds):
        return len(members) / seconds if seconds else 0.0

    report.add(
        f"F1 — family sweep throughput ({FAMILY}, {len(members)} members, "
        f"{workers} workers)",
        render_table(
            ["mode", "seconds", "members/s"],
            [
                ["serial", f"{serial_seconds:.2f}", f"{rate(serial_seconds):.1f}"],
                [
                    f"process x{workers}",
                    f"{parallel_seconds:.2f}",
                    f"{rate(parallel_seconds):.1f}",
                ],
                ["cached rerun", f"{cached_seconds:.2f}", f"{rate(cached_seconds):.1f}"],
            ],
        )
        + "\n\n"
        + render_artifact(
            family_artifact(
                serial_results, title=f"Family run ({FAMILY})"
            )
        ),
    )
    report.record(
        "family_sweep",
        {
            "family": FAMILY,
            "members": len(members),
            "workers": workers,
            "serial_seconds": round(serial_seconds, 3),
            "parallel_seconds": round(parallel_seconds, 3),
            "cached_seconds": round(cached_seconds, 3),
            "serial_members_per_second": round(rate(serial_seconds), 2),
            "parallel_members_per_second": round(rate(parallel_seconds), 2),
        },
    )
