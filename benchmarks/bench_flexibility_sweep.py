"""Experiment A6: flexibility sweeps (Section 4.2's exploration use case).

The paper's Figure 4 samples the contender load at three points; the sweep
API generalises it to a curve and exposes a structural feature three
points cannot show: the ILP bound grows linearly with the contender load
until it **saturates** at the fully time-composable ceiling — the load
beyond which contender information stops helping.  The dirty-latency
sensitivity quantifies Table 2's bracketed 21-cycle LMU entry.
"""

import pytest

from repro import paper
from repro.analysis.report import render_table
from repro.analysis.sweeps import (
    contender_scale_sweep,
    dirty_latency_sensitivity,
)
from repro.platform.deployment import scenario_1, scenario_2


@pytest.mark.benchmark(group="sweep")
@pytest.mark.parametrize("scenario_name", ["scenario1", "scenario2"])
def test_contender_scale_sweep(benchmark, report, scenario_name):
    scenario = scenario_1() if scenario_name == "scenario1" else scenario_2()
    readings_a = paper.table6(scenario_name, "app")
    contender = paper.table6(scenario_name, "H-Load")
    isolation = paper.ISOLATION_CYCLES[scenario_name]

    points = benchmark(
        lambda: contender_scale_sweep(
            readings_a, contender, scenario, isolation_cycles=isolation
        )
    )

    report.add(
        f"A6 — contender-load sweep ({scenario_name})",
        render_table(
            ["scale (x H-Load)", "Δcont (cyc)", "pred", "saturated"],
            [
                [p.scale, p.delta_cycles, p.slowdown, p.saturated]
                for p in points
            ],
        ),
    )

    deltas = [p.delta_cycles for p in points]
    assert deltas == sorted(deltas)  # monotone in load
    assert points[-1].saturated  # the ceiling is reached
    assert not points[0].saturated  # and the sweep starts below it


@pytest.mark.benchmark(group="sweep")
def test_dirty_latency_sensitivity(benchmark, report):
    result = benchmark(
        lambda: dirty_latency_sensitivity(
            paper.table6("scenario2", "app"),
            paper.table6("scenario2", "H-Load"),
            scenario_2(),
        )
    )
    report.add(
        "A6 — LMU dirty-latency sensitivity (scenario 2, H-Load)",
        render_table(
            ["variant", "Δcont (cyc)"],
            [
                ["with 21-cycle dirty latency", result.with_dirty_cycles],
                ["write-through (11 cycles)", result.without_dirty_cycles],
                ["share of bound", f"{result.share:.1%}"],
            ],
        ),
    )
    assert result.without_dirty_cycles <= result.with_dirty_cycles
