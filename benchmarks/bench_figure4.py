"""Experiment F4: regenerate Figure 4 (model predictions vs isolation).

Two modes, per DESIGN.md:

* **paper-counters mode** — published Table 6 readings through our model
  implementations; ratios must match the paper to ±0.02;
* **simulation mode** — counters measured on the simulator, models applied,
  predictions validated against observed co-run times (soundness).

Benchmark timings cover the full pipeline cost of each mode.
"""

import pytest

from repro import paper
from repro.analysis.experiments import figure4_paper_mode, figure4_sim_mode
from repro.analysis.report import render_figure4

SIM_SCALE = 1 / 16


@pytest.mark.benchmark(group="figure4")
def test_figure4_paper_mode(benchmark, report):
    rows = benchmark(figure4_paper_mode)
    report.add("Figure 4 — paper-counters mode", render_figure4(rows))

    for row in rows:
        if row.paper_value is not None:
            assert row.slowdown == pytest.approx(
                row.paper_value, abs=paper.RATIO_TOLERANCE
            ), f"{row.scenario}/{row.model}/{row.load}"

    # Headline claims: the ILP adapts to load, fTC does not; ILP cycles
    # stay around half the fTC bound for the heaviest load.
    for scenario in ("scenario1", "scenario2"):
        ilp = {
            r.load: r.delta_cycles
            for r in rows
            if r.scenario == scenario and r.model == "ilp-ptac"
        }
        ftc = next(
            r.delta_cycles
            for r in rows
            if r.scenario == scenario and r.model == "ftc-refined"
        )
        assert ilp["L"] < ilp["M"] < ilp["H"]
        assert ilp["H"] <= ftc * paper.ILP_VS_FTC_MAX_RATIO


@pytest.mark.benchmark(group="figure4")
def test_figure4_simulation_mode(benchmark, report):
    rows = benchmark.pedantic(
        lambda: figure4_sim_mode(scale=SIM_SCALE),
        rounds=1,
        iterations=1,
    )
    report.add(
        f"Figure 4 — simulation mode (scale {SIM_SCALE:g}, with observed co-runs)",
        render_figure4(rows),
    )

    for row in rows:
        if row.paper_value is not None:
            assert row.slowdown == pytest.approx(
                row.paper_value, abs=paper.RATIO_TOLERANCE
            )
        # Soundness: predictions upper-bound the observed co-run times.
        assert row.sound is True, f"{row.scenario}/{row.model}/{row.load}"
