"""Table 2 of the paper: SRI access latencies and minimum stall cycles.

The contention models consume three families of per-(target, operation)
constants, all measured by the authors with microbenchmarks on a TC277 board
(we re-derive them from the bundled simulator in
:mod:`repro.analysis.characterization`):

``l_max``
    Maximum observable end-to-end latency of a single SRI transaction to a
    target, maximised over read/write operations.  This is the worst delay a
    single in-flight request of a contender can impose on the task under
    analysis, so it is the coefficient used by every contention model.
    The LMU has a second, larger value (21 instead of 11 cycles) that only
    applies when *dirty* data-cache evictions can target it.

``l_min``
    Minimum observable end-to-end latency; documents the benefit of
    prefetching/pipelining on the flash interfaces.

``cs`` (``cs^{t,o}``)
    Minimum number of *pipeline stall* cycles a single access of type ``o``
    to target ``t`` can cost in isolation.  Lower bounds are what the model
    needs: dividing a task's cumulative stall counters by them yields an
    over-approximation of its SRI access counts (Eqs. 2-4).

Values (cycles), verbatim from Table 2 — the two PFlash interfaces share the
``pf`` column:

================  =====  ====  ====
quantity           lmu    pf   dfl
================  =====  ====  ====
l_max             11(21)  16    43
l_min               11    12    43
cs (code)           11     6     -
cs (data)           10    11    42
================  =====  ====  ====
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.errors import PlatformError
from repro.platform.targets import (
    ALL_TARGETS,
    Operation,
    Target,
    check_pair,
    is_valid_pair,
    targets_for,
)


@dataclasses.dataclass(frozen=True)
class TargetTiming:
    """Timing constants of one SRI target (one column of Table 2).

    Attributes:
        l_max: maximum end-to-end latency of a single transaction (cycles).
        l_min: minimum end-to-end latency of a single transaction (cycles).
        l_max_dirty: maximum latency when a dirty cache eviction can hit the
            target, or ``None`` when the distinction does not exist.  Only
            the LMU has one (21 cycles vs. 11).
        cs_code: minimum stall cycles of a single code access, or ``None``
            if the target cannot serve code (DFlash).
        cs_data: minimum stall cycles of a single data access.
    """

    l_max: int
    l_min: int
    cs_data: int
    cs_code: int | None = None
    l_max_dirty: int | None = None

    def __post_init__(self) -> None:
        if self.l_min > self.l_max:
            raise PlatformError(
                f"l_min ({self.l_min}) must not exceed l_max ({self.l_max})"
            )
        if self.l_max_dirty is not None and self.l_max_dirty < self.l_max:
            raise PlatformError(
                f"dirty-miss latency ({self.l_max_dirty}) must not be below "
                f"l_max ({self.l_max})"
            )
        for name in ("l_max", "l_min", "cs_data"):
            if getattr(self, name) <= 0:
                raise PlatformError(f"{name} must be positive")
        if self.cs_code is not None and self.cs_code <= 0:
            raise PlatformError("cs_code must be positive when present")

    def cs(self, operation: Operation) -> int:
        """Minimum stall cycles of a single ``operation`` access."""
        if operation is Operation.CODE:
            if self.cs_code is None:
                raise PlatformError("target cannot serve code accesses")
            return self.cs_code
        return self.cs_data

    def latency(self, *, dirty: bool = False) -> int:
        """Worst-case single-transaction latency, optionally dirty-aware."""
        if dirty and self.l_max_dirty is not None:
            return self.l_max_dirty
        return self.l_max


class LatencyProfile:
    """Complete per-target timing description of a platform (Table 2).

    The default :func:`tc27x_latency_profile` instance encodes the paper's
    Table 2; alternative profiles can be constructed to port the model to
    other TriCore family members (Section 4.3 of the paper).
    """

    def __init__(self, timings: Mapping[Target, TargetTiming]) -> None:
        missing = [t for t in ALL_TARGETS if t not in timings]
        if missing:
            raise PlatformError(
                "latency profile is missing targets: "
                + ", ".join(t.value for t in missing)
            )
        for target, timing in timings.items():
            can_serve_code = is_valid_pair(target, Operation.CODE)
            if can_serve_code and timing.cs_code is None:
                raise PlatformError(
                    f"{target.value} can serve code but has no cs_code"
                )
            if not can_serve_code and timing.cs_code is not None:
                raise PlatformError(
                    f"{target.value} cannot serve code but defines cs_code"
                )
        self._timings = dict(timings)

    def timing(self, target: Target) -> TargetTiming:
        """Return the :class:`TargetTiming` of ``target``."""
        return self._timings[target]

    # ------------------------------------------------------------------
    # Latencies (the l^{t,o} coefficients of the models)
    # ------------------------------------------------------------------
    def latency(
        self, target: Target, operation: Operation, *, dirty: bool = False
    ) -> int:
        """Worst-case latency ``l^{t,o}`` of one ``operation`` to ``target``.

        Args:
            target: the SRI slave addressed.
            operation: code or data.
            dirty: when true and the target distinguishes dirty evictions
                (the LMU), the dirty-miss latency is returned.  The paper
                notes dirty latencies "apply only on limited scenarios";
                scenario objects decide when to enable this flag.
        """
        check_pair(target, operation)
        if operation is Operation.CODE:
            # A code fetch can never be a dirty eviction.
            dirty = False
        return self._timings[target].latency(dirty=dirty)

    def min_latency(self, target: Target) -> int:
        """Minimum observable end-to-end latency ``l_min`` of ``target``."""
        return self._timings[target].l_min

    # ------------------------------------------------------------------
    # Minimum stall cycles (the cs^{t,o} coefficients of Eqs. 2-4, 20-23)
    # ------------------------------------------------------------------
    def stall_cycles(self, target: Target, operation: Operation) -> int:
        """Minimum stall cycles ``cs^{t,o}`` of one access (Table 2)."""
        check_pair(target, operation)
        return self._timings[target].cs(operation)

    def cs_min(
        self,
        operation: Operation,
        targets: tuple[Target, ...] | None = None,
    ) -> int:
        """Smallest per-access stall cost over the reachable targets.

        Implements Eqs. 2-3 of the paper:

        * ``cs_min^co = min(cs^{pf0,co}, cs^{pf1,co}, cs^{lmu,co})``
        * ``cs_min^da = min(cs^{pf0,da}, cs^{pf1,da}, cs^{lmu,da}, cs^{dfl,da})``

        Args:
            operation: the operation type whose minimum is sought.
            targets: optionally restrict the minimum to a subset of targets
                (used by deployment-aware refinements); defaults to every
                target the operation can architecturally reach.
        """
        if targets is None:
            targets = targets_for(operation)
        eligible = [
            self.stall_cycles(t, operation)
            for t in targets
            if is_valid_pair(t, operation)
        ]
        if not eligible:
            raise PlatformError(
                f"no target in {[t.value for t in targets]} can serve "
                f"{operation.value!r} accesses"
            )
        return min(eligible)

    def max_latency(
        self,
        operation: Operation,
        targets: tuple[Target, ...] | None = None,
        *,
        dirty_targets: frozenset[Target] = frozenset(),
    ) -> int:
        """Worst delay a single ``operation`` request of the task under
        analysis can suffer (Eqs. 6-7 of the paper).

        A request of τa to target ``t`` can be delayed by *any* request type
        the contender can issue to ``t``, so the maximum ranges over every
        valid operation on each eligible target.

        Args:
            operation: the τa request type being delayed.
            targets: targets τa's ``operation`` requests can reach
                (defaults to the architectural set, which yields the fully
                time-composable Eqs. 6-7).
            dirty_targets: targets on which dirty evictions may occur, so
                the dirty latency applies (Scenario 2's cacheable LMU data).
        """
        if targets is None:
            targets = targets_for(operation)
        worst = 0
        for target in targets:
            if not is_valid_pair(target, operation):
                continue
            for contender_op in (Operation.CODE, Operation.DATA):
                if not is_valid_pair(target, contender_op):
                    continue
                worst = max(
                    worst,
                    self.latency(
                        target, contender_op, dirty=target in dirty_targets
                    ),
                )
        if worst == 0:
            raise PlatformError(
                f"no target in {[t.value for t in targets]} can serve "
                f"{operation.value!r} accesses"
            )
        return worst

    def as_table(self) -> dict[str, dict[str, int | None]]:
        """Render the profile as a Table-2-shaped nested dict (for reports)."""
        table: dict[str, dict[str, int | None]] = {}
        for target in ALL_TARGETS:
            timing = self._timings[target]
            table[target.value] = {
                "l_max": timing.l_max,
                "l_max_dirty": timing.l_max_dirty,
                "l_min": timing.l_min,
                "cs_code": timing.cs_code,
                "cs_data": timing.cs_data,
            }
        return table


#: Timing of the two PFlash program interfaces (shared ``pf`` column).
_PF_TIMING = TargetTiming(l_max=16, l_min=12, cs_code=6, cs_data=11)


def tc27x_latency_profile() -> LatencyProfile:
    """The TC27x latency profile, verbatim from Table 2 of the paper."""
    return LatencyProfile(
        {
            Target.LMU: TargetTiming(
                l_max=11, l_min=11, cs_code=11, cs_data=10, l_max_dirty=21
            ),
            Target.PF0: _PF_TIMING,
            Target.PF1: _PF_TIMING,
            Target.DFL: TargetTiming(l_max=43, l_min=43, cs_data=42),
        }
    )
