"""SRI target resources and operation types of the AURIX TC27x.

The paper (Section 2, "Basic Notation and Assumptions") models contention on
the Shared Resource Interconnect (SRI) crossbar at the granularity of
*target resources* and *operation types*:

* ``T = {dfl, pf0, pf1, lmu}`` — the SRI slaves reachable by application
  traffic: the DFlash data interface, the two PFlash program interfaces and
  the Local Memory Unit SRAM.
* ``O = {co, da}`` — code and data operations.

Figure 2 of the paper constrains which operations may reach which target:
code can be fetched from pf0, pf1 and the LMU, while data can go to every
target.  The DFlash never serves code.  These architecture facts are
centralised here; every other module queries them instead of re-encoding
them.
"""

from __future__ import annotations

import enum
from typing import Iterable

from repro.errors import InvalidAccessError


class Target(enum.Enum):
    """An SRI slave interface that application traffic can address.

    The member values are the short names used throughout the paper
    (``dfl``, ``pf0``, ``pf1``, ``lmu``) and are convenient for reports.
    """

    DFL = "dfl"
    PF0 = "pf0"
    PF1 = "pf1"
    LMU = "lmu"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_flash(self) -> bool:
        """Whether the target is backed by the PMU flash device."""
        return self in (Target.DFL, Target.PF0, Target.PF1)

    @property
    def is_program_flash(self) -> bool:
        """Whether the target is one of the two PFlash interfaces."""
        return self in (Target.PF0, Target.PF1)


class Operation(enum.Enum):
    """Type of an SRI operation: code fetch or data access."""

    CODE = "co"
    DATA = "da"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All SRI target resources considered by the model (set ``T`` in the paper).
ALL_TARGETS: tuple[Target, ...] = (Target.DFL, Target.PF0, Target.PF1, Target.LMU)

#: All operation types (set ``O`` in the paper).
ALL_OPERATIONS: tuple[Operation, ...] = (Operation.CODE, Operation.DATA)

#: Targets a *code* request can address (Figure 2).
CODE_TARGETS: tuple[Target, ...] = (Target.PF0, Target.PF1, Target.LMU)

#: Targets a *data* request can address (Figure 2).
DATA_TARGETS: tuple[Target, ...] = (Target.DFL, Target.PF0, Target.PF1, Target.LMU)

#: Every architecturally valid (target, operation) pair.
VALID_PAIRS: tuple[tuple[Target, Operation], ...] = tuple(
    [(t, Operation.CODE) for t in CODE_TARGETS]
    + [(t, Operation.DATA) for t in DATA_TARGETS]
)


def targets_for(operation: Operation) -> tuple[Target, ...]:
    """Return the SRI targets reachable by ``operation`` (Figure 2)."""
    if operation is Operation.CODE:
        return CODE_TARGETS
    return DATA_TARGETS


def operations_for(target: Target) -> tuple[Operation, ...]:
    """Return the operation types that ``target`` can serve."""
    if target is Target.DFL:
        return (Operation.DATA,)
    return ALL_OPERATIONS


def is_valid_pair(target: Target, operation: Operation) -> bool:
    """Whether ``operation`` may architecturally address ``target``."""
    return (target, operation) in VALID_PAIRS


def check_pair(target: Target, operation: Operation) -> None:
    """Raise :class:`InvalidAccessError` for architecturally invalid pairs.

    >>> check_pair(Target.PF0, Operation.CODE)   # fine
    >>> check_pair(Target.DFL, Operation.CODE)   # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    InvalidAccessError: ...
    """
    if not is_valid_pair(target, operation):
        raise InvalidAccessError(
            f"the TC27x cannot issue {operation.value!r} requests to "
            f"{target.value!r} (see Figure 2 / Table 3 of the paper)"
        )


def parse_target(name: str) -> Target:
    """Parse a target from its short paper name (case-insensitive).

    Accepts the paper's spellings, e.g. ``"pf0"``, ``"PF1"``, ``"lmu"``,
    ``"dfl"`` and the long-form aliases ``"pflash0"``, ``"pflash1"``,
    ``"dflash"``.
    """
    aliases = {
        "pflash0": Target.PF0,
        "pflash1": Target.PF1,
        "dflash": Target.DFL,
        "sram": Target.LMU,
    }
    lowered = name.strip().lower()
    if lowered in aliases:
        return aliases[lowered]
    try:
        return Target(lowered)
    except ValueError as exc:
        raise InvalidAccessError(f"unknown SRI target name {name!r}") from exc


def parse_operation(name: str) -> Operation:
    """Parse an operation from ``"co"``/``"code"`` or ``"da"``/``"data"``."""
    aliases = {"code": Operation.CODE, "data": Operation.DATA}
    lowered = name.strip().lower()
    if lowered in aliases:
        return aliases[lowered]
    try:
        return Operation(lowered)
    except ValueError as exc:
        raise InvalidAccessError(f"unknown operation name {name!r}") from exc


def pair_label(target: Target, operation: Operation) -> str:
    """Render a pair the way the paper writes it, e.g. ``"pf0,co"``."""
    return f"{target.value},{operation.value}"


def sorted_pairs(pairs: Iterable[tuple[Target, Operation]]) -> list[tuple[Target, Operation]]:
    """Sort pairs in the paper's canonical order (dfl, pf0, pf1, lmu; co, da)."""
    target_order = {t: i for i, t in enumerate(ALL_TARGETS)}
    op_order = {o: i for i, o in enumerate(ALL_OPERATIONS)}
    return sorted(pairs, key=lambda p: (target_order[p[0]], op_order[p[1]]))
