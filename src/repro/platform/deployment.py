"""Deployment configurations and the paper's two reference scenarios.

System software statically decides where each code/data section of an
application lives (scratchpad, PFlash, DFlash, LMU) and whether it is
accessed through a cacheable segment.  That choice — the *deployment
configuration* — determines which SRI targets a task's requests can reach,
which is exactly the information the ILP-PTAC model exploits to tighten its
bounds (Section 4.1 of the paper).

This module provides:

* :class:`Section` / :class:`Deployment` — an explicit section-placement
  description, validated against Table 3;
* :class:`DeploymentScenario` — the model-facing view of a deployment:
  reachable targets per operation, per-target operation mix of co-runners,
  dirty-eviction targets, and what the debug counters mean under it;
* :func:`scenario_1` and :func:`scenario_2` — the two representative
  configurations of Figure 3, used throughout the evaluation;
* :func:`architectural_scenario` — the unconstrained scenario that turns
  the refined models back into the fully time-composable baseline.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

from repro.errors import DeploymentError
from repro.platform.cacheability import (
    CODE_CACHEABLE,
    DATA_CACHEABLE,
    DATA_UNCACHEABLE,
    SectionKind,
    check_placement,
    dirty_eviction_targets,
)
from repro.platform.latency import LatencyProfile
from repro.platform.targets import (
    ALL_TARGETS,
    Operation,
    Target,
    is_valid_pair,
    targets_for,
)

KIB = 1024


@dataclasses.dataclass(frozen=True)
class Section:
    """One linked section of an application image.

    Attributes:
        name: linker-style identifier (e.g. ``".text_pflash"``).
        kind: operation type and cacheability (a Table 3 row).
        target: SRI slave holding the section, or ``None`` for core-local
            scratchpad placement (which generates no SRI traffic).
        size: section size in bytes (used by the simulator's layout).
    """

    name: str
    kind: SectionKind
    target: Target | None
    size: int = 4 * KIB

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise DeploymentError(f"section {self.name!r} must have positive size")
        if self.target is not None:
            check_placement(self.kind, self.target)

    @property
    def on_sri(self) -> bool:
        """Whether accesses to this section travel over the SRI."""
        return self.target is not None


class Deployment:
    """A validated set of sections describing one task's memory layout."""

    def __init__(self, sections: Iterable[Section]) -> None:
        self._sections = tuple(sections)
        if not self._sections:
            raise DeploymentError("a deployment needs at least one section")
        names = [s.name for s in self._sections]
        if len(set(names)) != len(names):
            raise DeploymentError("duplicate section names in deployment")

    @property
    def sections(self) -> tuple[Section, ...]:
        return self._sections

    def sri_sections(self) -> tuple[Section, ...]:
        """Sections that generate SRI traffic (non-scratchpad)."""
        return tuple(s for s in self._sections if s.on_sri)

    def targets(self, operation: Operation) -> tuple[Target, ...]:
        """SRI targets that ``operation`` requests of this task can reach."""
        hit = {
            s.target
            for s in self.sri_sections()
            if s.kind.operation is operation
        }
        return tuple(t for t in ALL_TARGETS if t in hit)

    def operations_on(self, target: Target) -> tuple[Operation, ...]:
        """Operation types this task can issue to ``target``."""
        ops = {
            s.kind.operation for s in self.sri_sections() if s.target is target
        }
        return tuple(o for o in (Operation.CODE, Operation.DATA) if o in ops)

    def dirty_targets(self) -> frozenset[Target]:
        """Targets where dirty data-cache evictions can occur (see Table 2)."""
        return dirty_eviction_targets(
            (s.kind, s.target) for s in self.sri_sections()
        )

    def all_sri_code_cacheable(self) -> bool:
        """True when every SRI code section is cacheable.

        In that case every code request on the SRI is an instruction-cache
        miss, so P$_MISS counts SRI code requests *exactly* — the property
        both reference scenarios exploit.
        """
        code = [
            s
            for s in self.sri_sections()
            if s.kind.operation is Operation.CODE
        ]
        return bool(code) and all(s.kind.cacheable for s in code)

    def has_cacheable_sri_data(self) -> bool:
        """True when some SRI data section is cacheable (Scenario 2)."""
        return any(
            s.kind.operation is Operation.DATA and s.kind.cacheable
            for s in self.sri_sections()
        )


@dataclasses.dataclass(frozen=True)
class DeploymentScenario:
    """Model-facing summary of a deployment configuration.

    This is what the contention models consume: it answers "where can τ's
    requests go", "what can a co-runner throw at each target" and "what do
    the debug counters mean here".  The paper assumes the deployment applies
    equally to the task under analysis and its contenders (Section 4.1), so
    a single scenario object describes both sides.

    Attributes:
        name: short identifier (``"scenario1"``, ``"scenario2"``, ...).
        description: one-line summary for reports.
        deployment: the underlying section placement, when available.
        code_targets: SRI targets reachable by code requests.
        data_targets: SRI targets reachable by data requests.
        dirty_targets: targets where the dirty-miss latency applies.
        code_count_exact: whether P$_MISS equals the task's SRI code
            request count (all SRI code cacheable).
        data_count_lower_bounded: whether D$_MISS_CLEAN + D$_MISS_DIRTY is
            a useful lower bound on the task's SRI data requests (some SRI
            data cacheable — Scenario 2).
    """

    name: str
    description: str
    code_targets: tuple[Target, ...]
    data_targets: tuple[Target, ...]
    dirty_targets: frozenset[Target]
    code_count_exact: bool
    data_count_lower_bounded: bool
    deployment: Deployment | None = None

    def __post_init__(self) -> None:
        for target in self.code_targets:
            if not is_valid_pair(target, Operation.CODE):
                raise DeploymentError(
                    f"scenario {self.name!r}: code cannot reach {target.value!r}"
                )
        for target in self.data_targets:
            if not is_valid_pair(target, Operation.DATA):
                raise DeploymentError(
                    f"scenario {self.name!r}: data cannot reach {target.value!r}"
                )
        if not self.code_targets and not self.data_targets:
            raise DeploymentError(
                f"scenario {self.name!r} generates no SRI traffic at all"
            )

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def targets(self, operation: Operation) -> tuple[Target, ...]:
        """SRI targets that ``operation`` requests can reach."""
        if operation is Operation.CODE:
            return self.code_targets
        return self.data_targets

    def operations_on(self, target: Target) -> tuple[Operation, ...]:
        """Operations any task under this deployment can issue to ``target``."""
        ops = []
        if target in self.code_targets:
            ops.append(Operation.CODE)
        if target in self.data_targets:
            ops.append(Operation.DATA)
        return tuple(ops)

    def valid_pairs(self) -> tuple[tuple[Target, Operation], ...]:
        """Every (target, operation) pair the scenario permits."""
        pairs: list[tuple[Target, Operation]] = []
        for target in ALL_TARGETS:
            for operation in self.operations_on(target):
                pairs.append((target, operation))
        return tuple(pairs)

    def is_dirty(self, target: Target) -> bool:
        """Whether dirty evictions can address ``target``."""
        return target in self.dirty_targets

    # ------------------------------------------------------------------
    # Latency/stall queries restricted to the scenario
    # ------------------------------------------------------------------
    def cs_min(self, profile: LatencyProfile, operation: Operation) -> int:
        """Scenario-restricted ``cs_min`` (Eqs. 2-3 narrowed to reachable
        targets), used to bound access counts from stall counters."""
        return profile.cs_min(operation, targets=self.targets(operation))

    def interference_latency(
        self, profile: LatencyProfile, target: Target, operation: Operation
    ) -> int:
        """Latency one contender request of ``operation`` to ``target``
        imposes on a conflicting request: the ``l^{t,o}`` coefficient of
        Eq. 9, with the dirty variant where the scenario enables it."""
        return profile.latency(target, operation, dirty=self.is_dirty(target))

    def max_interference_latency(
        self, profile: LatencyProfile, operation: Operation
    ) -> int:
        """Worst delay one ``operation`` request of τa can suffer (Eqs. 6-7
        restricted to the scenario).

        The maximum ranges over the targets τa's ``operation`` can reach and,
        per target, over the request types a co-runner *under the same
        deployment* can issue there.
        """
        worst = 0
        for target in self.targets(operation):
            for contender_op in self.operations_on(target):
                worst = max(
                    worst,
                    self.interference_latency(profile, target, contender_op),
                )
        if worst == 0:
            raise DeploymentError(
                f"scenario {self.name!r} gives {operation.value!r} requests "
                "no reachable target"
            )
        return worst


# ----------------------------------------------------------------------
# Reference scenarios (Figure 3)
# ----------------------------------------------------------------------
def _scenario_from_deployment(
    name: str, description: str, deployment: Deployment
) -> DeploymentScenario:
    """Derive the model-facing scenario summary from an explicit layout."""
    return DeploymentScenario(
        name=name,
        description=description,
        code_targets=deployment.targets(Operation.CODE),
        data_targets=deployment.targets(Operation.DATA),
        dirty_targets=deployment.dirty_targets(),
        code_count_exact=deployment.all_sri_code_cacheable(),
        data_count_lower_bounded=deployment.has_cacheable_sri_data(),
        deployment=deployment,
    )


def scenario_1() -> DeploymentScenario:
    """Scenario 1 of the paper (Figure 3-a).

    Part of the code and data fit in the local scratchpads; the remaining
    code is fetched (cacheable) from pf0/pf1; shared data lives in the LMU
    in non-cacheable mode.  Consequences:

    * P$_MISS counts SRI code requests exactly;
    * data requests only reach the LMU and are invisible to the data-cache
      counters (they bypass the cache), so only DMEM_STALL bounds them;
    * no dirty evictions anywhere.
    """
    deployment = Deployment(
        [
            Section(".text_pspr", CODE_CACHEABLE, None, size=24 * KIB),
            Section(".data_dspr", DATA_UNCACHEABLE, None, size=64 * KIB),
            Section(".text_pf0", CODE_CACHEABLE, Target.PF0, size=128 * KIB),
            Section(".text_pf1", CODE_CACHEABLE, Target.PF1, size=128 * KIB),
            Section(".shared_lmu", DATA_UNCACHEABLE, Target.LMU, size=16 * KIB),
        ]
    )
    return _scenario_from_deployment(
        "scenario1",
        "code in pf0/pf1 (cacheable), shared data in LMU (non-cacheable)",
        deployment,
    )


def scenario_2() -> DeploymentScenario:
    """Scenario 2 of the paper (Figure 3-b).

    Code is fetched (cacheable) from pf0/pf1; data lives in the LMU in both
    cacheable and non-cacheable mode; constant data sits in pf0/pf1
    (cacheable).  Consequences:

    * P$_MISS still counts SRI code requests exactly;
    * D$_MISS_CLEAN + D$_MISS_DIRTY lower-bounds the SRI data requests, but
      cannot attribute them to pf0/pf1 vs. LMU;
    * cacheable data in the LMU makes dirty evictions — and hence the
      21-cycle bracketed latency of Table 2 — possible there.
    """
    deployment = Deployment(
        [
            Section(".text_pspr", CODE_CACHEABLE, None, size=24 * KIB),
            Section(".data_dspr", DATA_UNCACHEABLE, None, size=64 * KIB),
            Section(".text_pf0", CODE_CACHEABLE, Target.PF0, size=192 * KIB),
            Section(".text_pf1", CODE_CACHEABLE, Target.PF1, size=192 * KIB),
            Section(".data_lmu", DATA_CACHEABLE, Target.LMU, size=8 * KIB),
            Section(".shared_lmu", DATA_UNCACHEABLE, Target.LMU, size=8 * KIB),
            Section(".rodata_pf0", DATA_CACHEABLE, Target.PF0, size=32 * KIB),
            Section(".rodata_pf1", DATA_CACHEABLE, Target.PF1, size=32 * KIB),
        ]
    )
    return _scenario_from_deployment(
        "scenario2",
        "code in pf0/pf1, data in LMU ($ and n$), constants in pf0/pf1 ($)",
        deployment,
    )


def architectural_scenario(*, dirty_lmu: bool = False) -> DeploymentScenario:
    """The unconstrained scenario: every architecturally reachable target.

    Feeding this scenario to the refined models reproduces the fully
    time-composable baseline (global ``cs_min``, Eqs. 6-7 latencies),
    because no deployment knowledge is assumed.  ``dirty_lmu`` optionally
    enables the LMU dirty-miss latency for maximum conservatism.
    """
    return DeploymentScenario(
        name="architectural",
        description="no deployment knowledge (fully time-composable)",
        code_targets=targets_for(Operation.CODE),
        data_targets=targets_for(Operation.DATA),
        dirty_targets=frozenset({Target.LMU}) if dirty_lmu else frozenset(),
        code_count_exact=False,
        data_count_lower_bounded=False,
        deployment=None,
    )


def custom_scenario(
    name: str,
    *,
    code_targets: Iterable[Target] = (),
    data_targets: Iterable[Target] = (),
    dirty_targets: Iterable[Target] = (),
    code_count_exact: bool = False,
    data_count_lower_bounded: bool = False,
    description: str = "",
) -> DeploymentScenario:
    """Build a scenario directly from target sets.

    This is the porting hook of Section 4.3: any TriCore-style deployment
    can be described by listing reachable targets and counter semantics,
    without writing a full section layout.
    """
    return DeploymentScenario(
        name=name,
        description=description or f"custom scenario {name!r}",
        code_targets=tuple(
            t for t in ALL_TARGETS if t in set(code_targets)
        ),
        data_targets=tuple(
            t for t in ALL_TARGETS if t in set(data_targets)
        ),
        dirty_targets=frozenset(dirty_targets),
        code_count_exact=code_count_exact,
        data_count_lower_bounded=data_count_lower_bounded,
        deployment=None,
    )


#: Registry of the named scenarios used by examples and benchmarks.
def named_scenarios() -> Mapping[str, DeploymentScenario]:
    """The scenarios evaluated in the paper, keyed by their report names."""
    return {
        "scenario1": scenario_1(),
        "scenario2": scenario_2(),
        "architectural": architectural_scenario(),
    }
