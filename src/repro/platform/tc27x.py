"""Top-level description of the AURIX TC277 platform (Figure 1).

The TC277 packages three TriCore processors — two high-performance TC1.6P
and one low-power TC1.6E — behind the SRI crossbar, together with the shared
memory system (LMU SRAM via its own slave port; DFlash, PFlash0 and PFlash1
via the PMU's three independent interfaces).  This module captures those
structural facts in one :class:`Tc27xPlatform` object that the simulator,
the workload generators and the reports all share.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import PlatformError
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.platform.memory_map import KIB, MemoryMap
from repro.platform.targets import ALL_TARGETS, Target


class CoreKind(enum.Enum):
    """TriCore flavour of one processor."""

    TC16P = "1.6P"
    TC16E = "1.6E"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclasses.dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a set-associative cache (or line buffer)."""

    size: int
    line_size: int = 32
    ways: int = 2

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line_size <= 0 or self.ways <= 0:
            raise PlatformError("cache geometry values must be positive")
        if self.size % (self.line_size * self.ways) != 0:
            raise PlatformError(
                f"cache size {self.size} not divisible into "
                f"{self.ways} ways of {self.line_size}-byte lines"
            )

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.size // (self.line_size * self.ways)


@dataclasses.dataclass(frozen=True)
class CoreDescriptor:
    """One TriCore processor of the TC27x (one box of Figure 1).

    Attributes:
        index: platform core id; the paper uses core 1 and core 2 (both
            TC1.6P) for the application under analysis and the contender.
        kind: TC1.6P or TC1.6E.
        icache: instruction-cache geometry.
        dcache: data-cache geometry; the TC1.6E has no data cache, only a
            32-byte data read buffer (modelled as a 1-way, 1-set cache).
        pspr_size: program scratchpad size in bytes.
        dspr_size: data scratchpad size in bytes.
    """

    index: int
    kind: CoreKind
    icache: CacheGeometry
    dcache: CacheGeometry | None
    pspr_size: int
    dspr_size: int

    @property
    def has_data_cache(self) -> bool:
        """Whether the core has a real (write-back) data cache."""
        return self.dcache is not None and self.kind is CoreKind.TC16P

    def label(self) -> str:
        """Human-readable name, e.g. ``"Core1 (TC1.6P)"``."""
        return f"Core{self.index} (TC{self.kind.value})"


def _tc16p(index: int) -> CoreDescriptor:
    return CoreDescriptor(
        index=index,
        kind=CoreKind.TC16P,
        icache=CacheGeometry(size=16 * KIB),
        dcache=CacheGeometry(size=8 * KIB),
        pspr_size=32 * KIB,
        dspr_size=120 * KIB,
    )


def _tc16e(index: int) -> CoreDescriptor:
    # The 1.6E deploys a small instruction cache and a 32-byte data read
    # buffer (DRB) instead of a data cache (Figure 1).
    return CoreDescriptor(
        index=index,
        kind=CoreKind.TC16E,
        icache=CacheGeometry(size=8 * KIB),
        dcache=CacheGeometry(size=32, line_size=32, ways=1),
        pspr_size=24 * KIB,
        dspr_size=112 * KIB,
    )


@dataclasses.dataclass(frozen=True)
class Tc27xPlatform:
    """The complete platform: cores, SRI targets, timing, memory map.

    Attributes:
        cores: the three TriCore processors, indexed 0..2.  Core 0 is the
            TC1.6E; cores 1 and 2 (TC1.6P) are the ones the evaluation uses.
        latency_profile: Table 2 timing constants.
        memory_map: address map (cacheable/uncacheable views, scratchpads).
        frequency_hz: CPU/SRI clock; the TC277 runs at 200 MHz.
    """

    cores: tuple[CoreDescriptor, ...]
    latency_profile: LatencyProfile
    memory_map: MemoryMap
    frequency_hz: int = 200_000_000

    def core(self, index: int) -> CoreDescriptor:
        """Look a core up by platform index."""
        for core in self.cores:
            if core.index == index:
                return core
        raise PlatformError(f"platform has no core {index}")

    @property
    def sri_targets(self) -> tuple[Target, ...]:
        """The SRI slaves relevant to contention (set T of the paper)."""
        return ALL_TARGETS

    def cycles_to_seconds(self, cycles: int | float) -> float:
        """Convert a cycle count to wall-clock seconds at platform clock."""
        return cycles / self.frequency_hz

    def performance_cores(self) -> tuple[CoreDescriptor, ...]:
        """The TC1.6P cores (the evaluation pins tasks to these)."""
        return tuple(c for c in self.cores if c.kind is CoreKind.TC16P)

    def block_diagram(self) -> str:
        """ASCII rendering of Figure 1 for reports and the quickstart."""
        lines = ["AURIX TC27x", "=" * 64]
        for core in self.cores:
            dcache = (
                f"{core.dcache.size // KIB}KB D$"
                if core.has_data_cache
                else "32B DRB"
            )
            lines.append(
                f"  {core.label():<18} "
                f"{core.icache.size // KIB}KB I$  {dcache:<8} "
                f"PSPR {core.pspr_size // KIB}K  DSPR {core.dspr_size // KIB}K"
            )
        lines.append("-" * 64)
        lines.append("  SRI cross-bar (per-target round-robin arbitration)")
        lines.append("-" * 64)
        lines.append(
            "  LMU 32K RAM | PMU: 384KB DFlash | 1MB PFlash0 | 1MB PFlash1"
        )
        return "\n".join(lines)


def tc277() -> Tc27xPlatform:
    """Build the TC277 instance used throughout the paper's evaluation."""
    return Tc27xPlatform(
        cores=(_tc16e(0), _tc16p(1), _tc16p(2)),
        latency_profile=tc27x_latency_profile(),
        memory_map=MemoryMap(),
    )
