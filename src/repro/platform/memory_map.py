"""Address map of the AURIX TC27x as used by the simulator and deployments.

The TC27x exposes every memory both through *cacheable* and *non-cacheable*
address segments; system software chooses the access mode per section by
linking it into one view or the other (Section 2 of the paper: "LMU and PMU
memory areas can be accessed in cacheable or uncacheable mode, depending on
the address segment used").

The numeric layout follows the TC27x D-step memory map closely enough for a
faithful simulation (sizes are taken from Figure 1 of the paper):

========================  ==========  ========  ==============  =========
region                    base        size      SRI target      cacheable
========================  ==========  ========  ==============  =========
PFlash0 (cached view)     0x80000000  1 MiB     pf0             yes
PFlash1 (cached view)     0x80100000  1 MiB     pf1             yes
LMU RAM (cached view)     0x90000000  32 KiB    lmu             yes
PFlash0 (uncached view)   0xA0000000  1 MiB     pf0             no
PFlash1 (uncached view)   0xA0100000  1 MiB     pf1             no
DFlash                    0xAF000000  384 KiB   dfl             no
LMU RAM (uncached view)   0xB0000000  32 KiB    lmu             no
core 2 DSPR / PSPR        0x50000000  120/32 K  (core-local)    n/a
core 1 DSPR / PSPR        0x60000000  120/32 K  (core-local)    n/a
core 0 DSPR / PSPR        0x70000000  112/24 K  (core-local)    n/a
========================  ==========  ========  ==============  =========

Core-local scratchpads (DSPR/PSPR) are *not* SRI targets in our model: the
paper explicitly excludes inter-core scratchpad traffic ("We do not consider
SRI traffic caused by code and data requests targeting scratchpads of other
cores").
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlatformError
from repro.platform.targets import Operation, Target

KIB = 1024
MIB = 1024 * KIB


@dataclasses.dataclass(frozen=True)
class MemoryRegion:
    """A contiguous address range with uniform routing and cacheability.

    Attributes:
        name: human-readable identifier (e.g. ``"pflash0_cached"``).
        base: first byte address of the region.
        size: region size in bytes.
        target: the SRI slave serving the region, or ``None`` for
            core-local memories that never generate SRI traffic.
        cacheable: whether accesses through this view allocate in the
            core-local caches.
        local_core: for scratchpads, the id of the owning core.
    """

    name: str
    base: int
    size: int
    target: Target | None
    cacheable: bool
    local_core: int | None = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise PlatformError(f"region {self.name!r} must have positive size")
        if self.base < 0:
            raise PlatformError(f"region {self.name!r} has negative base")

    @property
    def end(self) -> int:
        """One past the last byte address of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside the region."""
        return self.base <= address < self.end

    @property
    def is_local(self) -> bool:
        """Whether the region is a core-local scratchpad (no SRI traffic)."""
        return self.target is None


def _sprams(core: int, base: int, dspr_size: int, pspr_size: int) -> list[MemoryRegion]:
    """Build the DSPR/PSPR pair of one core at its segment base."""
    return [
        MemoryRegion(
            name=f"core{core}_dspr",
            base=base,
            size=dspr_size,
            target=None,
            cacheable=False,
            local_core=core,
        ),
        MemoryRegion(
            name=f"core{core}_pspr",
            base=base + 0x0010_0000,
            size=pspr_size,
            target=None,
            cacheable=False,
            local_core=core,
        ),
    ]


def tc27x_regions() -> list[MemoryRegion]:
    """The standard TC27x region list described in the module docstring."""
    regions = [
        MemoryRegion("pflash0_cached", 0x8000_0000, 1 * MIB, Target.PF0, True),
        MemoryRegion("pflash1_cached", 0x8010_0000, 1 * MIB, Target.PF1, True),
        MemoryRegion("lmu_cached", 0x9000_0000, 32 * KIB, Target.LMU, True),
        MemoryRegion("pflash0_uncached", 0xA000_0000, 1 * MIB, Target.PF0, False),
        MemoryRegion("pflash1_uncached", 0xA010_0000, 1 * MIB, Target.PF1, False),
        MemoryRegion("dflash", 0xAF00_0000, 384 * KIB, Target.DFL, False),
        MemoryRegion("lmu_uncached", 0xB000_0000, 32 * KIB, Target.LMU, False),
    ]
    # Core 0 is the TC1.6E (smaller scratchpads), cores 1-2 the TC1.6P.
    regions += _sprams(2, 0x5000_0000, 120 * KIB, 32 * KIB)
    regions += _sprams(1, 0x6000_0000, 120 * KIB, 32 * KIB)
    regions += _sprams(0, 0x7000_0000, 112 * KIB, 24 * KIB)
    return regions


class MemoryMap:
    """Address-to-region resolver used by deployments and the simulator."""

    def __init__(self, regions: list[MemoryRegion] | None = None) -> None:
        self._regions = sorted(
            regions if regions is not None else tc27x_regions(),
            key=lambda r: r.base,
        )
        self._check_no_overlap()
        self._by_name = {r.name: r for r in self._regions}
        if len(self._by_name) != len(self._regions):
            raise PlatformError("duplicate region names in memory map")

    def _check_no_overlap(self) -> None:
        for earlier, later in zip(self._regions, self._regions[1:]):
            if later.base < earlier.end:
                raise PlatformError(
                    f"regions {earlier.name!r} and {later.name!r} overlap"
                )

    @property
    def regions(self) -> tuple[MemoryRegion, ...]:
        """All regions, sorted by base address."""
        return tuple(self._regions)

    def region(self, name: str) -> MemoryRegion:
        """Look a region up by name, raising ``PlatformError`` if unknown."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise PlatformError(f"unknown memory region {name!r}") from exc

    def resolve(self, address: int) -> MemoryRegion:
        """Return the region containing ``address``.

        Binary search over the sorted region list; raises
        :class:`PlatformError` for unmapped addresses (the TC27x would raise
        a bus error trap).
        """
        lo, hi = 0, len(self._regions) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            region = self._regions[mid]
            if address < region.base:
                hi = mid - 1
            elif address >= region.end:
                lo = mid + 1
            else:
                return region
        raise PlatformError(f"address {address:#010x} is not mapped")

    def target_of(self, address: int) -> Target | None:
        """SRI target serving ``address`` (``None`` for scratchpads)."""
        return self.resolve(address).target

    def is_cacheable(self, address: int) -> bool:
        """Whether ``address`` lies in a cacheable segment."""
        return self.resolve(address).cacheable

    def sri_regions(self, target: Target | None = None) -> tuple[MemoryRegion, ...]:
        """Regions routed over the SRI, optionally filtered by target."""
        return tuple(
            r
            for r in self._regions
            if r.target is not None and (target is None or r.target is target)
        )

    def code_region_valid(self, region: MemoryRegion) -> bool:
        """Whether code may execute from ``region``.

        Code can live in scratchpads (PSPR), PFlash or the LMU, but never in
        the DFlash (Figure 2 / Table 3).
        """
        if region.is_local:
            return region.name.endswith("pspr")
        return region.target in (Target.PF0, Target.PF1, Target.LMU)


def cacheable_view(map_: MemoryMap, target: Target) -> MemoryRegion:
    """The cacheable region of ``target``; DFlash has none (Table 3)."""
    for region in map_.sri_regions(target):
        if region.cacheable:
            return region
    raise PlatformError(f"target {target.value!r} has no cacheable view")


def uncacheable_view(map_: MemoryMap, target: Target) -> MemoryRegion:
    """The non-cacheable region of ``target``."""
    for region in map_.sri_regions(target):
        if not region.cacheable:
            return region
    raise PlatformError(f"target {target.value!r} has no uncacheable view")


def region_for(
    map_: MemoryMap, target: Target, *, cacheable: bool
) -> MemoryRegion:
    """The region of ``target`` with the requested cacheability."""
    if cacheable:
        return cacheable_view(map_, target)
    return uncacheable_view(map_, target)


def classify_access(
    map_: MemoryMap, address: int, operation: Operation
) -> tuple[MemoryRegion, bool]:
    """Resolve an access and validate it architecturally.

    Returns the region and its cacheability; raises
    :class:`~repro.errors.PlatformError` for code fetches from regions that
    cannot hold code.
    """
    region = map_.resolve(address)
    if operation is Operation.CODE and not map_.code_region_valid(region):
        raise PlatformError(
            f"code cannot execute from region {region.name!r} "
            f"(address {address:#010x})"
        )
    return region, region.cacheable
