"""Table 3 of the paper: placement constraints of code/data on SRI slaves.

The TC27x restricts which kind of section may be linked into which memory
and with which cacheability.  Table 3 (reproduced below, '$' = cacheable,
'n$' = non-cacheable) is the authoritative matrix; deployments are validated
against it before they are used to tailor the contention models.

==========  ====  ====  ====  ====
section     pf0   pf1   dfl   lmu
==========  ====  ====  ====  ====
Code $       ok    ok    no    ok
Code n$      ok    ok    no    ok
Data $       ok    ok    no    ok
Data n$      no    no    ok    ok
==========  ====  ====  ====  ====

Two consequences matter for the models:

* the DFlash only ever sees non-cacheable *data* traffic, hence the missing
  ``cs^{dfl,co}`` entry in Table 2; and
* non-cacheable data can never target the program flashes, so every data
  access observed on pf0/pf1 went through the data cache (exploited by the
  Scenario-2 tailoring).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.errors import DeploymentError
from repro.platform.targets import ALL_TARGETS, Operation, Target


@dataclasses.dataclass(frozen=True, order=True)
class SectionKind:
    """The type of a deployed section: operation type plus cacheability."""

    operation: Operation
    cacheable: bool

    def label(self) -> str:
        """Table 3 row label, e.g. ``"Code $"`` or ``"Data n$"``."""
        kind = "Code" if self.operation is Operation.CODE else "Data"
        return f"{kind} {'$' if self.cacheable else 'n$'}"


CODE_CACHEABLE = SectionKind(Operation.CODE, True)
CODE_UNCACHEABLE = SectionKind(Operation.CODE, False)
DATA_CACHEABLE = SectionKind(Operation.DATA, True)
DATA_UNCACHEABLE = SectionKind(Operation.DATA, False)

ALL_SECTION_KINDS: tuple[SectionKind, ...] = (
    CODE_CACHEABLE,
    CODE_UNCACHEABLE,
    DATA_CACHEABLE,
    DATA_UNCACHEABLE,
)

#: Table 3 verbatim: which targets may hold each section kind.
_PLACEMENT: dict[SectionKind, frozenset[Target]] = {
    CODE_CACHEABLE: frozenset({Target.PF0, Target.PF1, Target.LMU}),
    CODE_UNCACHEABLE: frozenset({Target.PF0, Target.PF1, Target.LMU}),
    DATA_CACHEABLE: frozenset({Target.PF0, Target.PF1, Target.LMU}),
    DATA_UNCACHEABLE: frozenset({Target.DFL, Target.LMU}),
}


def allowed_targets(kind: SectionKind) -> frozenset[Target]:
    """Targets that may hold a section of ``kind`` (one Table 3 row)."""
    return _PLACEMENT[kind]


def allowed_kinds(target: Target) -> frozenset[SectionKind]:
    """Section kinds a target may hold (one Table 3 column)."""
    return frozenset(k for k, targets in _PLACEMENT.items() if target in targets)


def is_placement_valid(kind: SectionKind, target: Target) -> bool:
    """Whether Table 3 permits placing ``kind`` on ``target``."""
    return target in _PLACEMENT[kind]


def check_placement(kind: SectionKind, target: Target) -> None:
    """Raise :class:`DeploymentError` when Table 3 forbids the placement."""
    if not is_placement_valid(kind, target):
        raise DeploymentError(
            f"{kind.label()} sections cannot be placed on "
            f"{target.value!r} (Table 3)"
        )


def check_placements(
    placements: Iterable[tuple[SectionKind, Target]],
) -> None:
    """Validate a batch of (kind, target) placements against Table 3."""
    for kind, target in placements:
        check_placement(kind, target)


def placement_matrix() -> dict[str, dict[str, bool]]:
    """Render Table 3 as nested dicts keyed by row/column labels.

    Used by the Table-3 benchmark to print the matrix exactly as the paper
    lays it out (rows: section kinds; columns: pf0, pf1, dfl, LMU).
    """
    column_order = (Target.PF0, Target.PF1, Target.DFL, Target.LMU)
    return {
        kind.label(): {
            target.value: is_placement_valid(kind, target)
            for target in column_order
        }
        for kind in ALL_SECTION_KINDS
    }


def dirty_eviction_targets(
    placements: Iterable[tuple[SectionKind, Target]],
) -> frozenset[Target]:
    """Targets on which dirty data-cache evictions can occur.

    A dirty miss requires *cacheable data* deployed on the target and a
    write-back cache in front of it.  The paper only distinguishes dirty
    latencies on the LMU (Table 2's bracketed 21-cycle value); flash targets
    are not writable at run time, so cacheable data placed there is
    read-only and can never be dirtied.
    """
    dirty: set[Target] = set()
    for kind, target in placements:
        if kind == DATA_CACHEABLE and target is Target.LMU:
            dirty.add(target)
    return frozenset(dirty)


def validate_target_set(targets: Iterable[Target]) -> tuple[Target, ...]:
    """Normalise a target iterable into canonical order, checking membership."""
    targets = set(targets)
    unknown = targets - set(ALL_TARGETS)
    if unknown:
        raise DeploymentError(
            f"unknown targets: {sorted(t.value for t in unknown)}"
        )
    return tuple(t for t in ALL_TARGETS if t in targets)
