"""Platform description of the AURIX TC27x.

This package holds every architecture fact the contention models and the
simulator rely on: the SRI target/operation taxonomy (Figure 2), the Table 2
latency/stall constants, the memory map, the Table 3 placement matrix, the
Figure 3 deployment scenarios and the Figure 1 platform structure.
"""

from repro.platform.cacheability import (
    ALL_SECTION_KINDS,
    CODE_CACHEABLE,
    CODE_UNCACHEABLE,
    DATA_CACHEABLE,
    DATA_UNCACHEABLE,
    SectionKind,
    allowed_kinds,
    allowed_targets,
    check_placement,
    is_placement_valid,
    placement_matrix,
)
from repro.platform.deployment import (
    Deployment,
    DeploymentScenario,
    Section,
    architectural_scenario,
    custom_scenario,
    named_scenarios,
    scenario_1,
    scenario_2,
)
from repro.platform.latency import (
    LatencyProfile,
    TargetTiming,
    tc27x_latency_profile,
)
from repro.platform.memory_map import (
    MemoryMap,
    MemoryRegion,
    classify_access,
    region_for,
    tc27x_regions,
)
from repro.platform.targets import (
    ALL_OPERATIONS,
    ALL_TARGETS,
    CODE_TARGETS,
    DATA_TARGETS,
    VALID_PAIRS,
    Operation,
    Target,
    check_pair,
    is_valid_pair,
    operations_for,
    pair_label,
    parse_operation,
    parse_target,
    targets_for,
)
from repro.platform.tc27x import (
    CacheGeometry,
    CoreDescriptor,
    CoreKind,
    Tc27xPlatform,
    tc277,
)

__all__ = [
    "ALL_OPERATIONS",
    "ALL_SECTION_KINDS",
    "ALL_TARGETS",
    "CODE_CACHEABLE",
    "CODE_TARGETS",
    "CODE_UNCACHEABLE",
    "CacheGeometry",
    "CoreDescriptor",
    "CoreKind",
    "DATA_CACHEABLE",
    "DATA_TARGETS",
    "DATA_UNCACHEABLE",
    "Deployment",
    "DeploymentScenario",
    "LatencyProfile",
    "MemoryMap",
    "MemoryRegion",
    "Operation",
    "Section",
    "SectionKind",
    "Target",
    "TargetTiming",
    "Tc27xPlatform",
    "VALID_PAIRS",
    "allowed_kinds",
    "allowed_targets",
    "architectural_scenario",
    "check_pair",
    "check_placement",
    "classify_access",
    "custom_scenario",
    "is_placement_valid",
    "is_valid_pair",
    "named_scenarios",
    "operations_for",
    "pair_label",
    "parse_operation",
    "parse_target",
    "placement_matrix",
    "region_for",
    "scenario_1",
    "scenario_2",
    "targets_for",
    "tc277",
    "tc27x_latency_profile",
    "tc27x_regions",
]
