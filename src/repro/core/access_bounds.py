"""Upper-bounding SRI access counts from stall counters (Eqs. 2-4).

The TC27x has no per-target SRI access counters, so the models bound the
number of requests from the *stall cycle* counters instead: if a task
accumulated ``cs`` stall cycles and every single access of that class costs
at least ``cs_min`` stall cycles, the task cannot have issued more than
``⌈cs / cs_min⌉`` accesses.

Equations 2-3 pick ``cs_min`` per operation class over the targets the
class can address; Equation 4 performs the division.  The deployment-aware
refinement narrows the target set (a task whose data only ever reaches the
LMU divides by ``cs^{lmu,da}``), and replaces the code bound by the *exact*
P$_MISS count when the scenario guarantees every SRI code request is a
cache miss (Section 4.1).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario, architectural_scenario
from repro.platform.latency import LatencyProfile
from repro.platform.targets import Operation


class CountSource(enum.Enum):
    """Where an access-count bound came from (for reports and tests)."""

    STALL_BOUND = "stall-bound"  # Eq. 4: ceil(cs / cs_min)
    PCACHE_MISS = "pcache-miss"  # exact count via P$_MISS (Section 4.1)
    ZERO = "zero"  # no stalls observed, hence no SRI accesses


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division (the ⌈·⌉ of Eq. 4)."""
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


@dataclasses.dataclass(frozen=True)
class AccessCountBound:
    """An upper bound on one operation class's SRI access count.

    Attributes:
        operation: code or data.
        count: the bound ``n̂`` (exact when :attr:`source` is P$_MISS).
        cs_min: the per-access stall divisor used (Eqs. 2-3); carried even
            for exact counts so reports can show both derivations.
        source: provenance of the number.
    """

    operation: Operation
    count: int
    cs_min: int
    source: CountSource

    @property
    def exact(self) -> bool:
        """Whether the count is exact rather than an upper bound."""
        return self.source is CountSource.PCACHE_MISS


@dataclasses.dataclass(frozen=True)
class AccessCountBounds:
    """Code and data access-count bounds of one task (``n̂^co``, ``n̂^da``)."""

    task: str
    code: AccessCountBound
    data: AccessCountBound

    def bound(self, operation: Operation) -> AccessCountBound:
        """The bound of one operation class."""
        if operation is Operation.CODE:
            return self.code
        return self.data

    @property
    def total(self) -> int:
        """Total bounded SRI accesses (Eq. 5's ``n`` upper bound)."""
        return self.code.count + self.data.count


def stall_bound(
    readings: TaskReadings,
    profile: LatencyProfile,
    operation: Operation,
    scenario: DeploymentScenario | None = None,
) -> AccessCountBound:
    """Equation 4 for one operation class.

    Args:
        readings: the task's isolation counter readings.
        profile: Table 2 constants.
        operation: which class to bound.
        scenario: optional deployment knowledge narrowing the ``cs_min``
            of Eqs. 2-3 to the reachable targets; defaults to the
            architectural (fully time-composable) target sets.
    """
    scenario = scenario or architectural_scenario()
    stalls = readings.ps if operation is Operation.CODE else readings.ds
    if not scenario.targets(operation):
        # The deployment routes no such traffic over the SRI at all; the
        # readings must agree, otherwise they belong to another scenario.
        if stalls:
            raise ModelError(
                f"{readings.name!r}: scenario {scenario.name!r} admits no "
                f"{operation.value!r} SRI traffic but the task shows "
                f"{stalls} stall cycles"
            )
        return AccessCountBound(operation, 0, 1, CountSource.ZERO)
    cs_min = scenario.cs_min(profile, operation)
    if stalls == 0:
        return AccessCountBound(operation, 0, cs_min, CountSource.ZERO)
    return AccessCountBound(
        operation, ceil_div(stalls, cs_min), cs_min, CountSource.STALL_BOUND
    )


def access_count_bounds(
    readings: TaskReadings,
    profile: LatencyProfile,
    scenario: DeploymentScenario | None = None,
    *,
    use_exact_counts: bool = True,
) -> AccessCountBounds:
    """Bound a task's code and data SRI access counts (Eqs. 2-4 + §4.1).

    Args:
        readings: the task's isolation counter readings.
        profile: Table 2 constants.
        scenario: deployment knowledge; ``None`` means the architectural
            scenario (the baseline fTC derivation).
        use_exact_counts: when the scenario guarantees P$_MISS counts SRI
            code requests exactly, use it instead of the stall bound
            (both reference scenarios do).  Disable to study the pure
            Eq. 4 behaviour.

    Returns:
        Bounds for both classes, each tagged with its provenance.
    """
    scenario = scenario or architectural_scenario()
    code = stall_bound(readings, profile, Operation.CODE, scenario)
    if use_exact_counts and scenario.code_count_exact:
        code = AccessCountBound(
            Operation.CODE,
            readings.pm,
            code.cs_min,
            CountSource.PCACHE_MISS if readings.pm else CountSource.ZERO,
        )
    data = stall_bound(readings, profile, Operation.DATA, scenario)
    return AccessCountBounds(task=readings.name, code=code, data=data)
