"""Front-side-bus (FSB) reduction of the crossbar model (Section 4.3).

The paper argues its crossbar model generalises the FSB-based contention
models of prior work: "we consider the FSB model to be a reduced case for
the more generic cross-bar model".  On an FSB platform every request of
every core serialises on a single shared bus, which is exactly the
crossbar model with *one* target.

This module demonstrates the reduction constructively:

* :func:`fsb_latency_profile` builds a degenerate Table 2 where every
  target shares the bus timing;
* :func:`fsb_scenario` routes all code and data to a single nominal target
  (the LMU slot stands in for "the bus");
* :func:`fsb_closed_form` is the textbook FSB bound
  ``min(n_a, n_b) · l_bus`` (per round-robin round, each τa request waits
  for at most one τb request);
* the test-suite and the A3 ablation benchmark check that the generic
  ILP-PTAC machinery instantiated on the FSB scenario returns *exactly*
  the closed form — the reduction claim, executed.
"""

from __future__ import annotations

import dataclasses

from repro.core.access_bounds import access_count_bounds
from repro.core.ilp_ptac import IlpPtacOptions, IlpPtacResult, ilp_ptac_bound
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario, custom_scenario
from repro.platform.latency import LatencyProfile, TargetTiming
from repro.platform.targets import Target


@dataclasses.dataclass(frozen=True)
class FsbTiming:
    """Timing of the single shared bus.

    Attributes:
        latency: worst-case occupancy of the bus by one request (the
            ``l_bus`` coefficient).
        cs_min: minimum stall cycles a single bus request costs the
            issuing core (used to bound access counts from stalls).
    """

    latency: int
    cs_min: int

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.cs_min <= 0:
            raise ModelError("FSB timing constants must be positive")
        if self.cs_min > self.latency:
            raise ModelError(
                "per-access stall cannot exceed the bus latency"
            )


def fsb_latency_profile(timing: FsbTiming) -> LatencyProfile:
    """A degenerate latency profile where every target is 'the bus'."""
    bus = TargetTiming(
        l_max=timing.latency,
        l_min=timing.latency,
        cs_code=timing.cs_min,
        cs_data=timing.cs_min,
    )
    dfl_bus = TargetTiming(
        l_max=timing.latency,
        l_min=timing.latency,
        cs_data=timing.cs_min,
    )
    return LatencyProfile(
        {
            Target.LMU: bus,
            Target.PF0: bus,
            Target.PF1: bus,
            Target.DFL: dfl_bus,
        }
    )


def fsb_scenario() -> DeploymentScenario:
    """Route all code and data onto one target — a bus in crossbar clothes."""
    return custom_scenario(
        "fsb",
        code_targets=(Target.LMU,),
        data_targets=(Target.LMU,),
        description="single shared front-side bus (reduction of Section 4.3)",
    )


def _floor_total(readings: TaskReadings, timing: FsbTiming) -> int:
    """Tight stall-derived access-count bound of one task on the bus.

    An access costs at least ``cs_min`` stall cycles, so an integer access
    count obeys ``n ≤ ⌊cs / cs_min⌋`` per class.  (Eq. 4 of the paper
    writes ``⌈·⌉``, which is also sound but one looser when the stalls are
    not an exact multiple; the ILP's budget inequalities imply the floor,
    so the closed form uses it for the exact-reduction equality.)
    """
    return readings.ps // timing.cs_min + readings.ds // timing.cs_min


def fsb_closed_form(
    readings_a: TaskReadings,
    readings_b: TaskReadings,
    timing: FsbTiming,
) -> int:
    """Textbook FSB contention bound from stall-derived access counts.

    Every request of τa can wait for at most one τb request per round-robin
    round, so the number of conflicts is ``min(n̂_a, n̂_b)`` and each costs
    at most ``l_bus``:

        Δcont = min(n̂_a, n̂_b) · l_bus
    """
    return min(
        _floor_total(readings_a, timing), _floor_total(readings_b, timing)
    ) * timing.latency


def fsb_via_crossbar_ilp(
    readings_a: TaskReadings,
    readings_b: TaskReadings,
    timing: FsbTiming,
    *,
    backend: str = "bnb",
) -> IlpPtacResult:
    """The generic ILP-PTAC model instantiated on the FSB scenario.

    By Section 4.3's argument this must coincide with
    :func:`fsb_closed_form`; the test-suite asserts it does.
    """
    return ilp_ptac_bound(
        readings_a,
        readings_b,
        fsb_latency_profile(timing),
        fsb_scenario(),
        IlpPtacOptions(backend=backend, use_exact_code_counts=False),
    )


def fsb_ftc_closed_form(readings_a: TaskReadings, timing: FsbTiming) -> int:
    """Fully time-composable FSB bound: every τa request delayed once.

        Δcont = n̂_a · l_bus
    """
    profile = fsb_latency_profile(timing)
    scenario = fsb_scenario()
    bounds_a = access_count_bounds(
        readings_a, profile, scenario, use_exact_counts=False
    )
    return bounds_a.total * timing.latency
