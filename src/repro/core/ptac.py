"""Per-Target Access Counts (PTAC) — Section 3.3.3 of the paper.

A PTAC is the mapping ``(target, operation) → request count`` of one task.
The SRI serves different slaves in parallel, so no useful contention bound
exists without per-target attribution; the whole point of the ILP model is
to *search* over the PTACs consistent with the observed counters.  The
ideal model (Eq. 1), by contrast, assumes the true PTACs are known — in
this reproduction they are available as simulator ground truth, which lets
the benchmarks quantify exactly how much the limited DSU information costs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Iterator, Mapping

from repro.errors import ModelError
from repro.platform.targets import (
    ALL_TARGETS,
    Operation,
    Target,
    check_pair,
    pair_label,
    sorted_pairs,
)


@dataclasses.dataclass(frozen=True)
class AccessProfile:
    """Exact per-target access counts of one task (its PTAC).

    Attributes:
        task: task name for reports.
        counts: mapping of valid (target, operation) pairs to non-negative
            request counts; absent pairs mean zero.
    """

    task: str
    counts: Mapping[tuple[Target, Operation], int]

    def __post_init__(self) -> None:
        for (target, operation), count in self.counts.items():
            check_pair(target, operation)
            if not isinstance(count, int) or count < 0:
                raise ModelError(
                    f"{self.task!r}: count for {pair_label(target, operation)} "
                    f"must be a non-negative integer, got {count!r}"
                )

    def count(self, target: Target, operation: Operation) -> int:
        """Requests of ``operation`` type to ``target`` (``n^{t,o}``)."""
        check_pair(target, operation)
        return self.counts.get((target, operation), 0)

    def op_total(self, operation: Operation) -> int:
        """Total requests of one class (``n^co`` / ``n^da`` of Eq. 5)."""
        return sum(
            count
            for (_, op), count in self.counts.items()
            if op is operation
        )

    def target_total(self, target: Target) -> int:
        """Total requests addressing ``target`` regardless of type."""
        return sum(
            count
            for (tgt, _), count in self.counts.items()
            if tgt is target
        )

    @property
    def total(self) -> int:
        """Total SRI requests (``n`` of Eq. 5)."""
        return sum(self.counts.values())

    def nonzero_pairs(self) -> list[tuple[Target, Operation]]:
        """Pairs with at least one request, in canonical order."""
        return sorted_pairs(
            pair for pair, count in self.counts.items() if count > 0
        )

    def targets(self, operation: Operation) -> tuple[Target, ...]:
        """Targets actually addressed by ``operation`` requests."""
        hit = {
            target
            for (target, op), count in self.counts.items()
            if op is operation and count > 0
        }
        return tuple(t for t in ALL_TARGETS if t in hit)

    def scaled(self, factor: float, *, task: str | None = None) -> "AccessProfile":
        """Profile with every count scaled (rounded up, conservatively)."""
        if factor <= 0:
            raise ModelError("scale factor must be positive")
        return AccessProfile(
            task=task if task is not None else f"{self.task}x{factor:g}",
            counts={
                pair: int(math.ceil(count * factor))
                for pair, count in self.counts.items()
            },
        )

    def merged(self, other: "AccessProfile", *, task: str = "") -> "AccessProfile":
        """Pointwise sum of two profiles (e.g. phases of one task)."""
        counts = dict(self.counts)
        for pair, count in other.counts.items():
            counts[pair] = counts.get(pair, 0) + count
        return AccessProfile(
            task=task or f"{self.task}+{other.task}", counts=counts
        )

    def as_rows(self) -> Iterator[tuple[str, int]]:
        """(label, count) rows in canonical order, for reports."""
        for target, operation in self.nonzero_pairs():
            yield pair_label(target, operation), self.count(target, operation)


def profile_from_pairs(
    task: str, pairs: Iterable[tuple[Target, Operation, int]]
) -> AccessProfile:
    """Build a profile from (target, operation, count) triples, summing
    duplicates — convenient for workload generators."""
    counts: dict[tuple[Target, Operation], int] = {}
    for target, operation, count in pairs:
        key = (target, operation)
        counts[key] = counts.get(key, 0) + count
    return AccessProfile(task=task, counts=counts)
