"""Assembling contention-aware WCET estimates (the MBTA end product).

The workflow the paper targets (Section 1, contribution ➁): a software
provider measures its task **in isolation** during early development —
execution time plus debug counters — and computes, per candidate
deployment scenario and per hypothesised contender load, a WCET estimate
that already includes multicore contention:

    WCET = ET_isolation(high-watermark) + Δcont(model)

:func:`contention_bound` and :func:`wcet_estimate` are the one-call
facade over the model family.  They are thin lookups into the
:mod:`repro.core.registry`: the ``model`` argument is any registered
name (see ``repro models`` or
:func:`~repro.core.registry.model_names`), the remaining arguments are
folded into an :class:`~repro.core.model.AnalysisContext`, and the
registered model's capabilities decide which of them are required.

:class:`ModelKind` is the deprecated enum the facade used to dispatch
on; it survives as an alias layer (its members name the same four
registry entries) so existing callers keep working.
"""

from __future__ import annotations

import enum

from repro.core.model import AnalysisContext
from repro.core.registry import get_model, model_names
from repro.core.ilp_ptac import IlpPtacOptions
from repro.core.ptac import AccessProfile
from repro.core.results import ContentionBound, WcetEstimate
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile


class ModelKind(enum.Enum):
    """Deprecated closed enumeration of the facade's original models.

    Kept as an alias layer: each member's value is the registry name of
    the same model.  New code should pass registry names (strings)
    directly — the registry also knows the models this enum never
    learned about (``ilp-ptac-multi``, ``ideal``, the occupancy and FSB
    bounds, and anything registered downstream).
    """

    FTC_BASELINE = "ftc-baseline"
    FTC_REFINED = "ftc-refined"
    ILP_PTAC = "ilp-ptac"
    ILP_PTAC_TC = "ilp-ptac-tc"  # ILP without contender information

    @classmethod
    def parse(cls, name: str) -> "ModelKind":
        """Parse a model name as used in reports/CLI arguments."""
        for kind in cls:
            if kind.value == name:
                return kind
        raise ModelError(
            f"unknown model kind {name!r}; "
            f"valid kinds: {', '.join(kind.value for kind in cls)} "
            f"(the model registry additionally knows: "
            f"{', '.join(n for n in model_names() if n not in cls._value2member_map_)})"
        )


def contention_bound(
    model: "ModelKind | str",
    readings_a: TaskReadings | None = None,
    profile: LatencyProfile | None = None,
    scenario: DeploymentScenario | None = None,
    readings_b: TaskReadings | None = None,
    *,
    contenders=(),
    access_profile_a: AccessProfile | None = None,
    access_profile_b: AccessProfile | None = None,
    contender_profiles=(),
    dma_agents=(),
    fsb_timing=None,
    options: IlpPtacOptions | None = None,
    task: str | None = None,
) -> ContentionBound:
    """Compute Δcont with any registered model.

    Args:
        model: a registered model name (see ``repro models``) or a
            deprecated :class:`ModelKind` member.
        readings_a: isolation readings of the task under analysis
            (required by the counter-based models).
        profile: Table 2 constants.
        scenario: deployment scenario (ignored by models that declare no
            deployment knowledge, e.g. the baseline fTC).
        readings_b: single-contender shorthand for ``contenders``.
        contenders: contender readings (the multi-contender ILP accepts
            any number; single-contender models read the first).
        access_profile_a: τa's ground-truth per-target access profile
            (the ideal model's input; simulator-only).
        access_profile_b: single-contender shorthand for
            ``contender_profiles``.
        contender_profiles: ground-truth / statically-known contender or
            higher-priority-master access profiles.
        dma_agents: DMA transfer descriptors (``dma-occupancy``).
        fsb_timing: bus timing constants (the ``fsb-*`` reductions).
        options: ILP knobs, forwarded to the ILP-backed models.
        task: victim name for models needing no τa measurements.

    Raises:
        ModelError: unknown model name (the message lists the registered
            names), or the chosen model's declared inputs are missing.
    """
    name = model.value if isinstance(model, ModelKind) else str(model)
    spec = get_model(name)
    all_contenders = tuple(contenders)
    if readings_b is not None:
        all_contenders = (readings_b,) + all_contenders
    profiles = tuple(contender_profiles)
    if access_profile_b is not None:
        profiles = (access_profile_b,) + profiles
    context = AnalysisContext(
        profile=profile,
        scenario=scenario,
        readings=readings_a,
        contenders=all_contenders,
        access_profile=access_profile_a,
        contender_profiles=profiles,
        dma_agents=tuple(dma_agents),
        fsb_timing=fsb_timing,
        options=options,
        task=task,
    )
    return spec.bound(context)


def wcet_estimate(
    model: "ModelKind | str",
    readings_a: TaskReadings,
    profile: LatencyProfile | None = None,
    scenario: DeploymentScenario | None = None,
    readings_b: TaskReadings | None = None,
    *,
    isolation_cycles: int | None = None,
    contenders=(),
    options: IlpPtacOptions | None = None,
    **context_kwargs,
) -> WcetEstimate:
    """One-call WCET estimate: isolation time + model contention bound.

    Args:
        model: which contention model to use (any registered name).
        readings_a: isolation readings of the task under analysis;
            must carry ``ccnt`` unless ``isolation_cycles`` is given.
        profile: Table 2 constants.
        scenario: deployment scenario.
        readings_b: contender readings (single-contender shorthand).
        isolation_cycles: override for the isolation execution time
            (e.g. a high-watermark over many runs rather than one run).
        contenders: contender readings for multi-contender models.
        options: ILP knobs.
        **context_kwargs: any further :func:`contention_bound` keyword
            (access profiles, DMA agents, FSB timing, task name).
    """
    bound = contention_bound(
        model,
        readings_a,
        profile,
        scenario,
        readings_b,
        contenders=contenders,
        options=options,
        **context_kwargs,
    )
    cycles = (
        isolation_cycles
        if isolation_cycles is not None
        else readings_a.require_ccnt()
    )
    return WcetEstimate(isolation_cycles=cycles, bound=bound)
