"""Assembling contention-aware WCET estimates (the MBTA end product).

The workflow the paper targets (Section 1, contribution ➁): a software
provider measures its task **in isolation** during early development —
execution time plus debug counters — and computes, per candidate
deployment scenario and per hypothesised contender load, a WCET estimate
that already includes multicore contention:

    WCET = ET_isolation(high-watermark) + Δcont(model)

This module provides the one-call facade over the individual models, used
by the examples and the Figure 4 driver.
"""

from __future__ import annotations

import enum

from repro.core.ftc import ftc_baseline, ftc_refined
from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.core.results import ContentionBound, WcetEstimate
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile


class ModelKind(enum.Enum):
    """The contention models selectable through the facade."""

    FTC_BASELINE = "ftc-baseline"
    FTC_REFINED = "ftc-refined"
    ILP_PTAC = "ilp-ptac"
    ILP_PTAC_TC = "ilp-ptac-tc"  # ILP without contender information

    @classmethod
    def parse(cls, name: str) -> "ModelKind":
        """Parse a model name as used in reports/CLI arguments."""
        for kind in cls:
            if kind.value == name:
                return kind
        raise ModelError(f"unknown model kind {name!r}")


def contention_bound(
    model: ModelKind | str,
    readings_a: TaskReadings,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    readings_b: TaskReadings | None = None,
    *,
    options: IlpPtacOptions | None = None,
) -> ContentionBound:
    """Compute Δcont with the selected model.

    Args:
        model: which model to run (a :class:`ModelKind` or its name).
        readings_a: isolation readings of the task under analysis.
        profile: Table 2 constants.
        scenario: deployment scenario (used by every model except the
            baseline fTC, which ignores deployment knowledge by design).
        readings_b: contender readings; required by ``ILP_PTAC`` only.
        options: ILP knobs, forwarded to the ILP variants.
    """
    if isinstance(model, str):
        model = ModelKind.parse(model)
    if model is ModelKind.FTC_BASELINE:
        return ftc_baseline(readings_a, profile)
    if model is ModelKind.FTC_REFINED:
        return ftc_refined(readings_a, profile, scenario)
    if model is ModelKind.ILP_PTAC:
        if readings_b is None:
            raise ModelError("ilp-ptac needs contender readings")
        return ilp_ptac_bound(
            readings_a, readings_b, profile, scenario, options
        ).bound
    # ILP without contender constraints (fully time-composable variant).
    base = options or IlpPtacOptions()
    import dataclasses as _dc

    tc_options = _dc.replace(base, contender_constraints=False)
    return ilp_ptac_bound(
        readings_a, None, profile, scenario, tc_options
    ).bound


def wcet_estimate(
    model: ModelKind | str,
    readings_a: TaskReadings,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    readings_b: TaskReadings | None = None,
    *,
    isolation_cycles: int | None = None,
    options: IlpPtacOptions | None = None,
) -> WcetEstimate:
    """One-call WCET estimate: isolation time + model contention bound.

    Args:
        model: which contention model to use.
        readings_a: isolation readings of the task under analysis;
            must carry ``ccnt`` unless ``isolation_cycles`` is given.
        profile: Table 2 constants.
        scenario: deployment scenario.
        readings_b: contender readings (ILP-PTAC only).
        isolation_cycles: override for the isolation execution time
            (e.g. a high-watermark over many runs rather than one run).
        options: ILP knobs.
    """
    bound = contention_bound(
        model, readings_a, profile, scenario, readings_b, options=options
    )
    cycles = (
        isolation_cycles
        if isolation_cycles is not None
        else readings_a.require_ccnt()
    )
    return WcetEstimate(isolation_cycles=cycles, bound=bound)
