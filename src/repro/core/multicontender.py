"""Multi-contender extension of the ILP-PTAC model.

The paper analyses one contender and notes the model "can be easily
extended to consider more contenders at the same time" (Section 2).  This
module is that extension: with contenders τb1..τbk, each request of τa to a
target can — under round-robin arbitration — wait once for *each* other
core's in-flight request per round, so the per-target caps of Eqs. 10-19
apply *per contender* while all contenders share one consistent choice of
τa's per-target access mapping.

Formally, for every contender ``i`` and target ``t``:

* ``n_{bi→a}[t,o] ≤ n_{bi}[t,o]``                       (per-contender Eq. 11b)
* ``Σ_o n_{bi→a}[t,o] ≤ Σ_o n_a[t,o]``                  (per-contender Eq. 13)

and the objective sums interference over contenders.  Because the τa
variables are shared, the joint optimum can be *smaller* than the sum of
the k single-contender optima (each of which may pick a different τa
mapping) — a tightness gain the ablation benchmark quantifies.

Like the single-contender builder, the model declares redundant
per-class *total* variables first (``n_a^co``, ``n_ba[b1]^da``, …):
branch-and-bound and the canonical-vertex polish then operate on
integral sums before per-bank splits, which collapses the symmetric
pf0/pf1 plateau (observed: a 4-core instance dropped from ~2k to ~13
nodes when the totals were introduced).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.core.ilp_ptac import IlpPtacOptions, Pair, solve_contention_ilp
from repro.core.results import ContentionBound
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.ilp.expr import Var, lin_sum
from repro.ilp.model import IlpModel
from repro.ilp.solution import Solution
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile
from repro.platform.targets import Operation, pair_label


@dataclasses.dataclass(frozen=True)
class MultiContenderResult:
    """Outcome of a joint multi-contender solve.

    Attributes:
        bound: total contention bound over all contenders.
        per_contender_cycles: interference cycles attributed to each
            contender at the joint optimum.
        interference: worst-case ``n_{bi→a}[t,o]`` per contender.
        model: the underlying ILP.
        solution: raw solver result.
    """

    bound: ContentionBound
    per_contender_cycles: Mapping[str, int]
    interference: Mapping[str, Mapping[Pair, int]]
    model: IlpModel
    solution: Solution


def multi_contender_bound(
    readings_a: TaskReadings,
    contenders: Sequence[TaskReadings],
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    options: IlpPtacOptions | None = None,
) -> MultiContenderResult:
    """Joint worst-case contention of several simultaneous contenders.

    Args:
        readings_a: isolation readings of the task under analysis.
        contenders: isolation readings of each co-runner (the TC27x allows
            up to two, one per remaining core, but the formulation is
            generic in k).
        profile: Table 2 constants.
        scenario: deployment scenario shared by every task.
        options: same knobs as the single-contender model; the
            ``contender_constraints`` flag must stay enabled (a fully
            time-composable bound does not depend on contender count).
    """
    options = options or IlpPtacOptions()
    if not options.contender_constraints:
        raise ModelError(
            "multi-contender analysis without contender constraints is "
            "meaningless; use ilp_ptac_bound(contender_constraints=False)"
        )
    if not contenders:
        raise ModelError("at least one contender is required")
    names = [c.name for c in contenders]
    if len(set(names)) != len(names):
        raise ModelError("contender names must be unique")

    pairs = scenario.valid_pairs()
    model = IlpModel(
        name=f"ilp-ptac-multi[{readings_a.name} vs {', '.join(names)}]"
    )

    # Per-class total variables first, mirroring the single-contender
    # builder: they are redundant for the LP, but they give both the
    # branch-and-bound and the canonical-vertex polish integral *sums*
    # as the leading columns, collapsing the symmetric pf0/pf1 plateau
    # (the banks share one latency, so fractional mass could otherwise
    # hop between their columns without changing the bound).
    operations = tuple(
        op
        for op in (Operation.CODE, Operation.DATA)
        if any(o is op for _, o in pairs)
    )
    totals: dict[tuple[str, str, Operation], Var] = {}
    for op in operations:
        totals[("a", "a", op)] = model.add_var(f"n_a^{op.value}")
    for contender in contenders:
        for family in ("ba", "b"):
            for op in operations:
                totals[(family, contender.name, op)] = model.add_var(
                    f"n_{family}[{contender.name}]^{op.value}"
                )

    n_a: dict[Pair, Var] = {
        pair: model.add_var(f"n_a[{pair_label(*pair)}]") for pair in pairs
    }
    n_b: dict[str, dict[Pair, Var]] = {}
    n_ba: dict[str, dict[Pair, Var]] = {}
    for contender in contenders:
        n_b[contender.name] = {
            pair: model.add_var(f"n_b[{contender.name}][{pair_label(*pair)}]")
            for pair in pairs
        }
        n_ba[contender.name] = {
            pair: model.add_var(f"n_ba[{contender.name}][{pair_label(*pair)}]")
            for pair in pairs
        }
    for (family, owner, op), total in totals.items():
        variables = (
            n_a
            if family == "a"
            else (n_b if family == "b" else n_ba)[owner]
        )
        model.add_constraint(
            lin_sum(
                variables[(t, o)] for (t, o) in pairs if o is op
            )
            == total,
            name=f"total_{family}[{owner}]_{op.value}",
        )

    def latency(pair: Pair) -> int:
        return scenario.interference_latency(profile, *pair)

    model.maximize(
        lin_sum(
            n_ba[name][pair] * latency(pair)
            for name in names
            for pair in pairs
        )
    )

    # Interference caps, per contender (Eqs. 10-19 generalised).
    targets = {target for target, _ in pairs}
    for target in targets:
        ops = [op for t, op in pairs if t is target]
        exposure = lin_sum(n_a[(target, op)] for op in ops)
        for name in names:
            for op in ops:
                pair = (target, op)
                model.add_constraint(
                    n_ba[name][pair] <= n_b[name][pair],
                    name=f"cap_b[{name}][{pair_label(*pair)}]",
                )
                model.add_constraint(
                    n_ba[name][pair] <= exposure,
                    name=f"cap_a[{name}][{pair_label(*pair)}]",
                )
            model.add_constraint(
                lin_sum(n_ba[name][(target, op)] for op in ops) <= exposure,
                name=f"cumulative[{name}][{target.value}]",
            )

    # Stall profiles and tailoring, per task (Eqs. 20-23 + Table 5).
    def add_task_constraints(
        who: str, readings: TaskReadings, variables: dict[Pair, Var]
    ) -> None:
        for op, budget in (
            (Operation.CODE, readings.ps),
            (Operation.DATA, readings.ds),
        ):
            terms = [
                variables[(target, o)] * profile.stall_cycles(target, o)
                for (target, o) in pairs
                if o is op
            ]
            if not terms:
                continue
            expr = lin_sum(terms)
            if options.stall_budget == "exact":
                model.add_constraint(expr == budget, name=f"stall_{op.value}[{who}]")
            else:
                model.add_constraint(expr <= budget, name=f"stall_{op.value}[{who}]")
        code_vars = [
            variables[(t, o)] for (t, o) in pairs if o is Operation.CODE
        ]
        if options.use_exact_code_counts and scenario.code_count_exact and code_vars:
            model.add_constraint(
                lin_sum(code_vars) == readings.pm, name=f"code_count[{who}]"
            )
        data_vars = [
            variables[(t, o)] for (t, o) in pairs if o is Operation.DATA
        ]
        if scenario.data_count_lower_bounded and data_vars:
            model.add_constraint(
                lin_sum(data_vars) >= readings.data_cache_misses,
                name=f"data_count_lb[{who}]",
            )

    add_task_constraints("a", readings_a, n_a)
    for contender in contenders:
        add_task_constraints(contender.name, contender, n_b[contender.name])

    solution = solve_contention_ilp(model, options).require_optimal()

    per_contender: dict[str, int] = {}
    interference: dict[str, dict[Pair, int]] = {}
    op_totals = {Operation.CODE: 0, Operation.DATA: 0}
    breakdown: dict[Pair, int] = {}
    for name in names:
        cycles = 0
        counts: dict[Pair, int] = {}
        for pair in pairs:
            count = solution.int_value(n_ba[name][pair])
            counts[pair] = count
            contribution = count * latency(pair)
            cycles += contribution
            op_totals[pair[1]] += contribution
            if contribution:
                breakdown[pair] = breakdown.get(pair, 0) + contribution
        per_contender[name] = cycles
        interference[name] = counts

    bound = ContentionBound(
        model="ilp-ptac-multi",
        task=readings_a.name,
        contenders=tuple(names),
        delta_cycles=int(round(solution.objective)),
        op_breakdown=op_totals,
        breakdown=breakdown,
        scenario=scenario.name,
        time_composable=False,
    )
    return MultiContenderResult(
        bound=bound,
        per_contender_cycles=per_contender,
        interference=interference,
        model=model,
        solution=solution,
    )
