"""The pluggable contention-model protocol.

The paper's artefact is a *family* of contention models sharing one shape:
consume whatever is known about a deployment (counter readings, latency
constants, scenario, contender set, ground-truth access profiles, DMA
descriptors) and produce a :class:`~repro.core.results.ContentionBound`.
This module defines that shape as data, mirroring how
:mod:`repro.engine.scenario` turned deployments into data:

* :class:`AnalysisContext` — the uniform input record.  It is a superset
  of what any one model needs: each model reads the fields its
  capabilities declare and ignores the rest, so one context can be
  threaded through a whole model ladder (the ablation driver does
  exactly that).  Contexts are plain picklable data, which makes
  ``(model name, context)`` an engine job and lets model choice
  participate in the content-addressed result cache.
* :class:`ModelCapabilities` — the declared input requirements and
  informational traits of one model (contender arity, DMA awareness,
  ILP backend use, time-composability).
* :class:`ContentionModel` — the protocol: a named, described object
  with capabilities and a ``bound(context)`` entry point.
* :class:`ModelSpec` — the standard implementation wrapping a plain
  ``context -> bound`` function, with capability validation up front so
  a missing input fails with a message naming what to pass.

Models register by name in :mod:`repro.core.registry`; the
:func:`~repro.core.wcet.contention_bound` facade, the experiment
drivers and the CLI all resolve them from there.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Protocol, runtime_checkable

from repro.core.fsb import FsbTiming
from repro.core.ilp_ptac import IlpPtacOptions
from repro.core.ptac import AccessProfile
from repro.core.results import ContentionBound
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile
from repro.sim.dma import DmaAgent


@dataclasses.dataclass(frozen=True)
class ModelCapabilities:
    """Declared input requirements and traits of one contention model.

    The ``needs_*`` flags drive :meth:`ModelSpec.validate`; the trailing
    informational traits drive reports (``repro models``) and driver
    decisions (e.g. whether a Figure 4 bar exists per contender load or
    once per scenario).

    Attributes:
        needs_readings: requires the analysed task's counter readings.
        needs_profile: requires Table 2 latency constants (FSB models
            derive a degenerate profile from the bus timing instead).
        needs_scenario: requires a deployment scenario.
        min_contenders: minimum number of contender readings consumed.
        max_contenders: maximum number of contender readings consumed;
            ``0`` for contender-blind models, ``None`` for unbounded.
            Passing *more* readings than a single-contender model
            consumes is a validation error (the surplus would be
            silently ignored, making the bound unsound for the full
            contender set).  Contender-blind models stay permissive:
            their bound already holds against any single co-runner, so
            extra readings are documentation, not input.
        joint_counterpart: registered name of this model's
            multi-contender generalisation, if one exists (``ilp-ptac``
            names ``ilp-ptac-multi``); drivers use it to bound whole
            contender sets jointly instead of summing pairwise bounds.
        needs_access_profile: requires the analysed task's ground-truth
            per-target access profile (simulator-only information).
        needs_contender_profiles: requires at least one contender /
            higher-priority-master access profile.
        needs_dma_agents: requires DMA transfer descriptors.
        needs_fsb_timing: requires front-side-bus timing constants.
        needs_ilp: solves an ILP (informational; such models honour the
            ``backend`` / ``node_limit`` knobs of the options).
        time_composable: the bound holds against *any* co-runner.
        dma_aware: the bound covers multi-outstanding, higher-priority
            masters (which break the round-robin alignment assumption).
    """

    needs_readings: bool = True
    needs_profile: bool = True
    needs_scenario: bool = True
    min_contenders: int = 0
    max_contenders: int | None = 0
    joint_counterpart: str | None = None
    needs_access_profile: bool = False
    needs_contender_profiles: bool = False
    needs_dma_agents: bool = False
    needs_fsb_timing: bool = False
    needs_ilp: bool = False
    time_composable: bool = False
    dma_aware: bool = False

    def contender_summary(self) -> str:
        """Compact contender-arity rendering for listings.

        ``-`` (contender-blind), ``1``, ``1+``; models fed by contender
        *access profiles* rather than counter readings (ideal, the
        occupancy bounds) render as ``1+ (profiles)`` so listings agree
        with :attr:`uses_contender_information`.
        """
        if self.needs_contender_profiles:
            return "1+ (profiles)"
        if self.max_contenders == 0:
            return "-"
        if self.max_contenders is None:
            return f"{self.min_contenders}+"
        if self.min_contenders == self.max_contenders:
            return str(self.min_contenders)
        return f"{self.min_contenders}-{self.max_contenders}"

    @property
    def uses_contender_information(self) -> bool:
        """Whether per-contender inputs shape the bound at all."""
        return self.min_contenders > 0 or self.needs_contender_profiles

    @property
    def counter_based(self) -> bool:
        """Whether the model runs on counter measurements alone.

        True when the model consumes the analysed task's (and possibly
        contenders') debug-counter readings and nothing a scenario run
        cannot measure — no simulator-only access profiles, no DMA
        descriptors, no bus timing.  Exactly these models can drive
        :func:`~repro.engine.experiment.run_spec` and populate the
        model × scenario matrix.
        """
        return (
            self.needs_readings
            and not self.needs_fsb_timing
            and not self.needs_access_profile
            and not self.needs_contender_profiles
            and not self.needs_dma_agents
        )


@dataclasses.dataclass(frozen=True)
class AnalysisContext:
    """Everything a contention analysis may know, in one picklable record.

    A context is deliberately a *superset* of any single model's inputs:
    build it once from what you have and run any registered model over
    it — validation rejects models whose declared needs are not met.

    Attributes:
        profile: Table 2 latency constants.
        scenario: deployment scenario of the analysed task.
        readings: isolation counter readings of the analysed task (τa).
        contenders: isolation counter readings of each co-runner (τb…).
        access_profile: τa's ground-truth per-target access counts
            (simulator-only; the ideal model's input).
        contender_profiles: ground-truth / statically-known per-target
            access counts of contenders or higher-priority masters.
        dma_agents: DMA transfer descriptors of higher-priority masters.
        fsb_timing: bus timing for the FSB reduction models.
        options: ILP knobs, honoured by the ILP-backed models.
        task: victim name for models that need no τa measurements at
            all (the occupancy bounds); defaults to the readings' /
            profile's task name, else ``"victim"``.
    """

    profile: LatencyProfile | None = None
    scenario: DeploymentScenario | None = None
    readings: TaskReadings | None = None
    contenders: tuple[TaskReadings, ...] = ()
    access_profile: AccessProfile | None = None
    contender_profiles: tuple[AccessProfile, ...] = ()
    dma_agents: tuple[DmaAgent, ...] = ()
    fsb_timing: FsbTiming | None = None
    options: IlpPtacOptions | None = None
    task: str | None = None

    def __post_init__(self) -> None:
        # Accept any iterable for the plural fields; store tuples so the
        # context stays hashable, picklable and cache-canonicalisable.
        for field in ("contenders", "contender_profiles", "dma_agents"):
            value = getattr(self, field)
            if not isinstance(value, tuple):
                object.__setattr__(self, field, tuple(value))

    @property
    def contender(self) -> TaskReadings | None:
        """The first contender's readings (single-contender models)."""
        return self.contenders[0] if self.contenders else None

    @property
    def resolved_options(self) -> IlpPtacOptions:
        """The ILP options, defaulted to the paper's configuration."""
        return self.options or IlpPtacOptions()

    @property
    def task_name(self) -> str:
        """Best-effort name of the analysed task for reports."""
        if self.task:
            return self.task
        if self.readings is not None:
            return self.readings.name
        if self.access_profile is not None:
            return self.access_profile.task
        return "victim"


@runtime_checkable
class ContentionModel(Protocol):
    """What the registry, facade and drivers require of a model."""

    name: str
    description: str
    capabilities: ModelCapabilities

    def bound(self, context: AnalysisContext) -> ContentionBound:
        """Compute Δcont from the context (validated against capabilities)."""
        ...  # pragma: no cover - protocol


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """A registered contention model: name, description, capabilities
    and the ``context -> bound`` implementation.

    Attributes:
        name: registry key (also the CLI/report identifier).
        description: one-line summary, surfaced by ``repro models`` and
            the README's generated Models section.
        capabilities: declared input requirements / traits.
        fn: the implementation; called only after validation.
    """

    name: str
    description: str
    capabilities: ModelCapabilities
    fn: Callable[[AnalysisContext], ContentionBound]

    def validate(self, context: AnalysisContext) -> None:
        """Check the context against the declared capabilities.

        Raises :class:`~repro.errors.ModelError` naming every missing
        input and the keyword that supplies it.
        """
        caps = self.capabilities
        if (
            caps.max_contenders is not None
            and caps.max_contenders >= 1
            and len(context.contenders) > caps.max_contenders
        ):
            suggestion = caps.joint_counterpart or "ilp-ptac-multi"
            raise ModelError(
                f"model {self.name!r} accepts at most "
                f"{caps.max_contenders} contender reading(s), got "
                f"{len(context.contenders)}; use a multi-contender model "
                f"(e.g. {suggestion!r}) for a joint bound over the whole "
                "contender set"
            )
        missing: list[str] = []
        if caps.needs_readings and context.readings is None:
            missing.append(
                "isolation counter readings of the analysed task "
                "(readings_a=)"
            )
        if caps.needs_profile and context.profile is None:
            missing.append("a latency profile (Table 2 constants; profile=)")
        if caps.needs_scenario and context.scenario is None:
            missing.append("a deployment scenario (scenario=)")
        if len(context.contenders) < caps.min_contenders:
            if caps.min_contenders == 1:
                missing.append(
                    "contender readings (readings_b= or contenders=)"
                )
            else:
                missing.append(
                    f"at least {caps.min_contenders} contender readings "
                    "(contenders=)"
                )
        if caps.needs_access_profile and context.access_profile is None:
            missing.append(
                "the analysed task's ground-truth access profile "
                "(access_profile_a=)"
            )
        if caps.needs_contender_profiles and not context.contender_profiles:
            missing.append(
                "contender access profiles (access_profile_b= or "
                "contender_profiles=)"
            )
        if caps.needs_dma_agents and not context.dma_agents:
            missing.append("DMA transfer descriptors (dma_agents=)")
        if caps.needs_fsb_timing and context.fsb_timing is None:
            missing.append("bus timing constants (fsb_timing=)")
        if missing:
            raise ModelError(
                f"model {self.name!r} needs " + "; ".join(missing)
            )

    def bound(self, context: AnalysisContext) -> ContentionBound:
        """Validate the context, then run the model."""
        self.validate(context)
        return self.fn(context)
