"""The fully time-composable (fTC) contention model (Section 3.4).

The fTC model uses **no contender information at all**: every SRI request
of the task under analysis is assumed to collide with the longest request
any co-runner could possibly have in flight on the same interface.  With
access counts bounded by Eq. 4 and worst latencies from Eqs. 6-7,

    Δcont = n̂^co_a · l^co_max + n̂^da_a · l^da_max        (Eq. 8)

Two variants are provided, matching the paper:

``ftc_baseline``
    Pure Eqs. 4+6-8 over the architectural target sets (code can be in
    pf0/pf1/lmu, data anywhere).  ``l^da_max`` is the 43-cycle DFlash
    latency, which makes the bound spectacularly pessimistic — the paper
    cites this as the reason fully time-composable bounds "may end up
    being poorly useful".

``ftc_refined``
    Incorporates indirect PTAC information *about τa only* (Section 4.1:
    "indirect PTAC information ... can be incorporated on a refined fTC
    model, but limitedly to τa"): exact code counts via P$_MISS where the
    deployment guarantees them, and cs_min / max-latency restricted to the
    targets the deployment can actually reach.  This is the fTC variant
    plotted in Figure 4 (the baseline would sit at ≈4.3x for Scenario 1,
    far above the reported 1.95x).

Both remain fully time-composable: they never look at contender counters.
"""

from __future__ import annotations

import dataclasses

from repro.core.access_bounds import AccessCountBounds, access_count_bounds
from repro.core.results import ContentionBound
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario, architectural_scenario
from repro.platform.latency import LatencyProfile
from repro.platform.targets import Operation


@dataclasses.dataclass(frozen=True)
class FtcDetails:
    """Intermediate quantities of an fTC computation, for reports/tests.

    Attributes:
        bounds: the access-count bounds used (``n̂^co_a``, ``n̂^da_a``).
        l_co_max: Eq. 6 latency (scenario-restricted for the refined model).
        l_da_max: Eq. 7 latency.
    """

    bounds: AccessCountBounds
    l_co_max: int
    l_da_max: int


def _ftc(
    readings: TaskReadings,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    *,
    use_exact_counts: bool,
    model_name: str,
) -> tuple[ContentionBound, FtcDetails]:
    bounds = access_count_bounds(
        readings, profile, scenario, use_exact_counts=use_exact_counts
    )
    # Operation classes the deployment never routes over the SRI have no
    # interference latency — and no accesses to multiply it with.
    l_co_max = (
        scenario.max_interference_latency(profile, Operation.CODE)
        if scenario.targets(Operation.CODE)
        else 0
    )
    l_da_max = (
        scenario.max_interference_latency(profile, Operation.DATA)
        if scenario.targets(Operation.DATA)
        else 0
    )
    code_cycles = bounds.code.count * l_co_max
    data_cycles = bounds.data.count * l_da_max
    bound = ContentionBound(
        model=model_name,
        task=readings.name,
        contenders=(),
        delta_cycles=code_cycles + data_cycles,
        op_breakdown={
            Operation.CODE: code_cycles,
            Operation.DATA: data_cycles,
        },
        breakdown=None,  # fTC cannot attribute delay to targets
        scenario=scenario.name,
        time_composable=True,
    )
    return bound, FtcDetails(bounds=bounds, l_co_max=l_co_max, l_da_max=l_da_max)


def ftc_baseline(
    readings: TaskReadings,
    profile: LatencyProfile,
    *,
    dirty_lmu: bool = False,
) -> ContentionBound:
    """The baseline fTC bound of Eqs. 4+8 (no deployment knowledge).

    Args:
        readings: τa's isolation counter readings.
        profile: Table 2 constants.
        dirty_lmu: charge the LMU's dirty-miss latency (21 cycles) instead
            of 11; Table 2 brackets it because it "applies only on limited
            scenarios".  The architectural worst case for data is the
            DFlash at 43 cycles either way.
    """
    scenario = architectural_scenario(dirty_lmu=dirty_lmu)
    bound, _ = _ftc(
        readings,
        profile,
        scenario,
        use_exact_counts=False,
        model_name="ftc-baseline",
    )
    return bound


def ftc_refined(
    readings: TaskReadings,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    *,
    with_details: bool = False,
) -> ContentionBound | tuple[ContentionBound, FtcDetails]:
    """The deployment-refined fTC bound plotted in Figure 4.

    Args:
        readings: τa's isolation counter readings.
        profile: Table 2 constants.
        scenario: the deployment configuration of τa (and, by the paper's
            symmetry assumption, of any co-runner).
        with_details: also return the intermediate quantities.
    """
    if scenario is None:
        raise ModelError("ftc_refined requires a deployment scenario")
    bound, details = _ftc(
        readings,
        profile,
        scenario,
        use_exact_counts=True,
        model_name="ftc-refined",
    )
    if with_details:
        return bound, details
    return bound
