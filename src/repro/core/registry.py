"""Named contention-model registry: models as data, not an enum.

Adding a contention model used to mean growing the ``ModelKind`` enum and
its if-chain; now it means registering a
:class:`~repro.core.model.ModelSpec`::

    from repro.core import (
        AnalysisContext, ModelCapabilities, ModelSpec, register_model,
    )

    def _my_bound(context: AnalysisContext) -> ContentionBound:
        ...  # read the fields your capabilities declare

    register_model(ModelSpec(
        name="my-model",
        description="one line for `repro models` and the README",
        capabilities=ModelCapabilities(min_contenders=1, max_contenders=1),
        fn=_my_bound,
    ))

after which ``contention_bound("my-model", ...)``, the experiment
drivers' ``models=`` arguments and ``repro figure4 --model my-model``
all resolve it, and engine jobs can carry the *name* (plain, picklable
data that participates in the content-addressed cache key) instead of a
callable.

Process-pool caveat: a worker resolves names against *its own*
process's default registry.  Fork-based platforms (Linux) inherit the
parent's registrations; platforms that spawn fresh workers
(macOS/Windows) re-import the package instead, so perform
``register_model(...)`` at import time of a module your job functions
import — then every worker re-creates the registration itself.

The default registry ships the paper's whole model family: the fTC
baseline/refined pair (Section 3.4), the ILP-PTAC model and its fully
time-composable variant (Section 3.5), the multi-contender joint ILP
(Section 2's extension), the ideal model (Eq. 1), the priority/DMA
occupancy bounds for higher-priority masters (plus ``dma-rr-alignment``,
the same-class accounting applied to DMA descriptors — the sound/unsound
contrast the dma-pressure scenario family measures), and the three FSB
reductions of Section 4.3.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterable, Iterator

from repro.core.fsb import (
    fsb_closed_form,
    fsb_ftc_closed_form,
    fsb_latency_profile,
    fsb_scenario,
)
from repro.core.ftc import ftc_baseline, ftc_refined
from repro.core.ideal import ideal_bound
from repro.core.ilp_ptac import ilp_ptac_bound
from repro.core.model import (
    AnalysisContext,
    ContentionModel,
    ModelCapabilities,
    ModelSpec,
)
from repro.core.multicontender import multi_contender_bound
from repro.core.priority import dma_victim_bound, priority_victim_bound
from repro.core.results import ContentionBound
from repro.errors import ModelError
from repro.platform.targets import Operation, Target


class ModelRegistry:
    """An ordered name → :class:`~repro.core.model.ContentionModel` map."""

    def __init__(self, models: Iterable[ContentionModel] = ()) -> None:
        self._models: dict[str, ContentionModel] = {}
        for model in models:
            self.register(model)

    def register(
        self, model: ContentionModel, *, replace: bool = False
    ) -> ContentionModel:
        """Add a model under its name; re-registration needs ``replace``."""
        if not isinstance(model, ContentionModel):
            raise ModelError(
                f"expected a ContentionModel (name/description/"
                f"capabilities/bound), got {type(model).__qualname__}"
            )
        if model.name in self._models and not replace:
            raise ModelError(
                f"model {model.name!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        self._models[model.name] = model
        return model

    def unregister(self, name: str) -> None:
        if name not in self._models:
            raise ModelError(f"model {name!r} is not registered")
        del self._models[name]

    def get(self, name: str) -> ContentionModel:
        try:
            return self._models[name]
        except KeyError as exc:
            raise ModelError(
                f"unknown model {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def names(self) -> tuple[str, ...]:
        return tuple(self._models)

    def specs(self) -> tuple[ContentionModel, ...]:
        return tuple(self._models.values())

    def __contains__(self, name: object) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[ContentionModel]:
        return iter(self._models.values())


# ----------------------------------------------------------------------
# Builtin model implementations (context adapters over repro.core.*)
# ----------------------------------------------------------------------
def _ftc_baseline(context: AnalysisContext) -> ContentionBound:
    return ftc_baseline(context.readings, context.profile)


def _ftc_refined(context: AnalysisContext) -> ContentionBound:
    return ftc_refined(context.readings, context.profile, context.scenario)


def _ilp_ptac(context: AnalysisContext) -> ContentionBound:
    return ilp_ptac_bound(
        context.readings,
        context.contender,
        context.profile,
        context.scenario,
        context.options,
    ).bound


def _ilp_ptac_tc(context: AnalysisContext) -> ContentionBound:
    options = dataclasses.replace(
        context.resolved_options, contender_constraints=False
    )
    return ilp_ptac_bound(
        context.readings, None, context.profile, context.scenario, options
    ).bound


def _ilp_ptac_multi(context: AnalysisContext) -> ContentionBound:
    return multi_contender_bound(
        context.readings,
        context.contenders,
        context.profile,
        context.scenario,
        context.options,
    ).bound


def _ideal(context: AnalysisContext) -> ContentionBound:
    # Eq. 1 is pairwise.  Under round-robin each victim request waits
    # once per contending *core* per round, so the multi-contender bound
    # is the SUM of the pairwise solves — merging the profiles first
    # would compute min(n_a, Σ n_b) and undercount the interference.
    bounds = [
        ideal_bound(
            context.access_profile, profile, context.profile,
            context.scenario,
        )
        for profile in context.contender_profiles
    ]
    if len(bounds) == 1:
        return bounds[0]
    breakdown: dict = {}
    op_totals = {Operation.CODE: 0, Operation.DATA: 0}
    for bound in bounds:
        for pair, cycles in (bound.breakdown or {}).items():
            breakdown[pair] = breakdown.get(pair, 0) + cycles
        op_totals[Operation.CODE] += bound.code_cycles
        op_totals[Operation.DATA] += bound.data_cycles
    return ContentionBound(
        model="ideal",
        task=bounds[0].task,
        contenders=tuple(p.task for p in context.contender_profiles),
        delta_cycles=sum(bound.delta_cycles for bound in bounds),
        op_breakdown=op_totals,
        breakdown=breakdown,
        scenario=bounds[0].scenario,
        time_composable=False,
    )


def _priority_occupancy(context: AnalysisContext) -> ContentionBound:
    profiles = context.contender_profiles
    traffic = profiles[0]
    for extra in profiles[1:]:  # occupancies of independent masters add
        traffic = traffic.merged(extra)
    return priority_victim_bound(
        context.scenario, context.profile, traffic, task=context.task_name
    )


def _dma_occupancy(context: AnalysisContext) -> ContentionBound:
    return dma_victim_bound(
        context.scenario,
        context.profile,
        context.dma_agents,
        task=context.task_name,
    )


def _dma_rr_alignment(context: AnalysisContext) -> ContentionBound:
    """The same-class alignment assumption applied to DMA descriptors.

    Under round-robin every victim request to slave ``t`` is delayed at
    most once per other master per round, so an agent addressing ``t``
    costs at most ``min(count, n̂_a^t) · l^{t,o}`` — with ``n̂_a^t`` the
    Eqs. 2-4 bound on the victim's requests that can reach ``t``.  This
    is exactly the accounting the paper's same-priority-class models
    perform for core contenders; registering it as a DMA bound makes the
    scoping decision *testable*: the bound is sound for paced,
    single-outstanding agents and demonstrably under-predicts once a
    higher-priority agent saturates its slave or queues a deep burst
    (the dma-pressure scenario family measures both regimes).
    """
    from repro.core.access_bounds import access_count_bounds

    scenario = context.scenario
    bounds = access_count_bounds(context.readings, context.profile, scenario)
    breakdown: dict[tuple[Target, Operation], int] = {}
    op_totals = {Operation.CODE: 0, Operation.DATA: 0}
    for agent in context.dma_agents:
        target = agent.request.target
        operations = scenario.operations_on(target)
        if not operations or agent.count == 0:
            continue  # traffic the victim cannot conflict with
        victim_requests = sum(bounds.bound(op).count for op in operations)
        latency = scenario.interference_latency(
            context.profile, target, agent.request.operation
        )
        cycles = min(agent.count, victim_requests) * latency
        key = (target, agent.request.operation)
        breakdown[key] = breakdown.get(key, 0) + cycles
        op_totals[agent.request.operation] += cycles
    return ContentionBound(
        model="dma-rr-alignment",
        task=context.task_name,
        contenders=tuple(agent.label for agent in context.dma_agents),
        delta_cycles=sum(op_totals.values()),
        op_breakdown=op_totals,
        breakdown={k: v for k, v in breakdown.items() if v},
        scenario=scenario.name,
        time_composable=False,
    )


def _fsb_bound(
    model: str,
    task: str,
    contenders: tuple[str, ...],
    delta: int,
    *,
    time_composable: bool,
) -> ContentionBound:
    # The bus serialises code and data alike and the closed forms cannot
    # attribute classes, so the whole bound reports under the nominal
    # bus slot (the LMU data pair of the degenerate FSB scenario).
    return ContentionBound(
        model=model,
        task=task,
        contenders=contenders,
        delta_cycles=delta,
        op_breakdown={Operation.CODE: 0, Operation.DATA: delta},
        breakdown={(Target.LMU, Operation.DATA): delta} if delta else {},
        scenario="fsb",
        time_composable=time_composable,
    )


def _fsb_closed_form(context: AnalysisContext) -> ContentionBound:
    contender = context.contenders[0]
    delta = fsb_closed_form(context.readings, contender, context.fsb_timing)
    return _fsb_bound(
        "fsb-closed-form",
        context.readings.name,
        (contender.name,),
        delta,
        time_composable=False,
    )


def _fsb_ftc(context: AnalysisContext) -> ContentionBound:
    delta = fsb_ftc_closed_form(context.readings, context.fsb_timing)
    return _fsb_bound(
        "fsb-ftc", context.readings.name, (), delta, time_composable=True
    )


def _fsb_crossbar_ilp(context: AnalysisContext) -> ContentionBound:
    options = dataclasses.replace(
        context.resolved_options, use_exact_code_counts=False
    )
    result = ilp_ptac_bound(
        context.readings,
        context.contenders[0],
        fsb_latency_profile(context.fsb_timing),
        fsb_scenario(),
        options,
    )
    return dataclasses.replace(result.bound, model="fsb-crossbar-ilp")


def builtin_models() -> tuple[ModelSpec, ...]:
    """The model family every registry starts from (the paper's plus the
    extensions its discussion calls for)."""
    return (
        ModelSpec(
            name="ftc-baseline",
            description=(
                "fully time-composable bound from architectural worst "
                "cases alone (Eqs. 4+6-8); no deployment or contender "
                "knowledge"
            ),
            capabilities=ModelCapabilities(
                needs_scenario=False, time_composable=True
            ),
            fn=_ftc_baseline,
        ),
        ModelSpec(
            name="ftc-refined",
            description=(
                "deployment-refined fTC bound of Figure 4 (Section 4.1): "
                "exact code counts, scenario-restricted latencies, still "
                "contender-blind"
            ),
            capabilities=ModelCapabilities(time_composable=True),
            fn=_ftc_refined,
        ),
        ModelSpec(
            name="ilp-ptac",
            description=(
                "ILP over per-target access counts consistent with both "
                "tasks' counters (Section 3.5, Eqs. 9-23); the paper's "
                "tightest counter-based bound"
            ),
            capabilities=ModelCapabilities(
                min_contenders=1,
                max_contenders=1,
                joint_counterpart="ilp-ptac-multi",
                needs_ilp=True,
            ),
            fn=_ilp_ptac,
        ),
        ModelSpec(
            name="ilp-ptac-tc",
            description=(
                "ILP-PTAC without the contender-side constraints "
                "(Eqs. 22-23 dropped): fully time-composable again, at "
                "the cost of tightness"
            ),
            capabilities=ModelCapabilities(
                needs_ilp=True, time_composable=True
            ),
            fn=_ilp_ptac_tc,
        ),
        ModelSpec(
            name="ilp-ptac-multi",
            description=(
                "joint ILP over any number of simultaneous contenders "
                "sharing one consistent victim mapping (the Section 2 "
                "extension)"
            ),
            capabilities=ModelCapabilities(
                min_contenders=1, max_contenders=None, needs_ilp=True
            ),
            fn=_ilp_ptac_multi,
        ),
        ModelSpec(
            name="ideal",
            description=(
                "Equation 1 with ground-truth per-target access counts of "
                "both tasks; the simulator-only tightness yardstick"
            ),
            capabilities=ModelCapabilities(
                needs_readings=False,
                needs_scenario=False,
                needs_access_profile=True,
                needs_contender_profiles=True,
            ),
            fn=_ideal,
        ),
        ModelSpec(
            name="priority-occupancy",
            description=(
                "occupancy bound against higher-priority multi-outstanding "
                "SRI masters with known traffic profiles (sound where "
                "round-robin alignment breaks)"
            ),
            capabilities=ModelCapabilities(
                needs_readings=False,
                needs_contender_profiles=True,
                time_composable=True,
                dma_aware=True,
            ),
            fn=_priority_occupancy,
        ),
        ModelSpec(
            name="dma-occupancy",
            description=(
                "occupancy bound against a set of higher-priority DMA "
                "agents, from their transfer descriptors (additive per "
                "master)"
            ),
            capabilities=ModelCapabilities(
                needs_readings=False,
                needs_dma_agents=True,
                time_composable=True,
                dma_aware=True,
            ),
            fn=_dma_occupancy,
        ),
        ModelSpec(
            name="dma-rr-alignment",
            description=(
                "the same-class round-robin alignment assumption applied "
                "to DMA descriptors (each victim request delayed at most "
                "once per agent); sound for paced single-outstanding "
                "agents, under-predicts saturating or deep-queue bursts"
            ),
            capabilities=ModelCapabilities(
                needs_dma_agents=True,
                dma_aware=False,
            ),
            fn=_dma_rr_alignment,
        ),
        ModelSpec(
            name="fsb-closed-form",
            description=(
                "textbook front-side-bus bound min(n_a, n_b) * l_bus; the "
                "single-target reduction of Section 4.3"
            ),
            capabilities=ModelCapabilities(
                needs_profile=False,
                needs_scenario=False,
                min_contenders=1,
                max_contenders=1,
                needs_fsb_timing=True,
            ),
            fn=_fsb_closed_form,
        ),
        ModelSpec(
            name="fsb-ftc",
            description=(
                "fully time-composable FSB bound n_a * l_bus (every "
                "victim request delayed once on the bus)"
            ),
            capabilities=ModelCapabilities(
                needs_profile=False,
                needs_scenario=False,
                needs_fsb_timing=True,
                time_composable=True,
            ),
            fn=_fsb_ftc,
        ),
        ModelSpec(
            name="fsb-crossbar-ilp",
            description=(
                "the generic crossbar ILP instantiated on the one-target "
                "FSB scenario; provably equal to the closed form"
            ),
            capabilities=ModelCapabilities(
                needs_profile=False,
                needs_scenario=False,
                min_contenders=1,
                max_contenders=1,
                needs_fsb_timing=True,
                needs_ilp=True,
            ),
            fn=_fsb_crossbar_ilp,
        ),
    )


_DEFAULT: ModelRegistry | None = None


def default_model_registry() -> ModelRegistry:
    """The process-wide registry, created with the builtin models."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ModelRegistry(builtin_models())
    return _DEFAULT


def register_model(
    model: ContentionModel, *, replace: bool = False
) -> ContentionModel:
    """Register a model in the default registry."""
    return default_model_registry().register(model, replace=replace)


@contextlib.contextmanager
def temporary_models(
    *models: ContentionModel, replace: bool = False
) -> Iterator[ModelRegistry]:
    """Scope model registrations to a ``with`` block.

    The model-registry analogue of
    :func:`repro.engine.registry.temporary_scenarios`: snapshots the
    process-wide default registry, registers ``models``, and restores
    the exact prior contents on exit, exception or not — so a test or
    example that registers a model cannot leak it into everything that
    runs later in the process.  The ``registry-leak`` lint rule flags
    tests that mutate a default registry outside one of these scopes.
    """
    registry = default_model_registry()
    snapshot = dict(registry._models)
    try:
        for model in models:
            registry.register(model, replace=replace)
        yield registry
    finally:
        registry._models.clear()
        registry._models.update(snapshot)


def get_model(name: str) -> ContentionModel:
    """Look a model up in the default registry."""
    return default_model_registry().get(name)


def model_names() -> tuple[str, ...]:
    """Names registered in the default registry."""
    return default_model_registry().names()


def model_specs() -> tuple[ContentionModel, ...]:
    """Registered models, in registration order."""
    return default_model_registry().specs()


def counter_based_model_names() -> tuple[str, ...]:
    """Registered models a scenario run can drive, in registry order.

    Exactly the models whose declared capabilities are satisfied by
    counter measurements alone (see
    :attr:`~repro.core.model.ModelCapabilities.counter_based`); the
    default model set of the matrix and family-matrix drivers — one
    filter, shared, so the two can never accept different model sets.
    """
    return tuple(
        spec.name
        for spec in default_model_registry()
        if spec.capabilities.counter_based
    )


def model_bound(model: str, context: AnalysisContext) -> ContentionBound:
    """Run a registered model over a context, both addressed as data.

    This is the engine-job entry point: ``job(model_bound, name, ctx)``
    is picklable for process-mode fan-out, and the *name* participates
    in the content-addressed cache key, so sweeps over models cache per
    model.
    """
    return default_model_registry().get(model).bound(context)


__all__ = [
    "ModelRegistry",
    "builtin_models",
    "counter_based_model_names",
    "default_model_registry",
    "get_model",
    "model_bound",
    "model_names",
    "model_specs",
    "register_model",
]
