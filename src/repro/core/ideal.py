"""The ideal contention model (Section 3.2, Equation 1).

When the exact per-target access counts of both tasks are known, the worst
case is simple: each contender request delays at most one request of the
task under analysis on the same target, for the full request latency, so

    Δcont_{b→a} = Σ_{t∈T} Σ_{o∈O} min(n_a^{t,o}, n_b^{t,o}) · l^{t,o}

The ideal model is unattainable on the real TC27x (no PTAC counters), but
our simulator exposes ground-truth profiles, so it serves as the tightness
yardstick in the information-degree ablation.
"""

from __future__ import annotations

from repro.core.ptac import AccessProfile
from repro.core.results import ContentionBound
from repro.platform.deployment import DeploymentScenario, architectural_scenario
from repro.platform.latency import LatencyProfile
from repro.platform.targets import VALID_PAIRS, Operation


def ideal_bound(
    profile_a: AccessProfile,
    profile_b: AccessProfile,
    latencies: LatencyProfile,
    scenario: DeploymentScenario | None = None,
) -> ContentionBound:
    """Equation 1: the ideal contention bound given both true PTACs.

    Args:
        profile_a: exact per-target access counts of the task under
            analysis.
        profile_b: exact per-target access counts of the contender.
        latencies: Table 2 constants.
        scenario: deployment scenario; only used to decide whether the
            LMU dirty-miss latency applies (the counts are already exact).

    Returns:
        A :class:`~repro.core.results.ContentionBound` with a full
        per-(target, operation) breakdown.

    Note:
        Pairing ``min(n_a^{t,o}, n_b^{t,o})`` per *operation* follows the
        paper's formula literally.  The paper also notes that requests of
        τb with different latencies can be captured "trivially"; with
        Table 2 all requests to one target share one latency, so the
        formula is exact as written.
    """
    scenario = scenario or architectural_scenario()
    breakdown: dict = {}
    op_totals = {Operation.CODE: 0, Operation.DATA: 0}
    for target, operation in VALID_PAIRS:
        conflicting = min(
            profile_a.count(target, operation),
            profile_b.count(target, operation),
        )
        if conflicting == 0:
            continue
        latency = scenario.interference_latency(latencies, target, operation)
        cycles = conflicting * latency
        breakdown[(target, operation)] = cycles
        op_totals[operation] += cycles

    delta = sum(op_totals.values())
    return ContentionBound(
        model="ideal",
        task=profile_a.task,
        contenders=(profile_b.task,),
        delta_cycles=delta,
        op_breakdown=op_totals,
        breakdown=breakdown,
        scenario=scenario.name,
        time_composable=False,
    )
