"""The paper's contribution: contention models for the AURIX TC27x.

Every model is a registered, name-addressable object implementing the
:class:`~repro.core.model.ContentionModel` protocol — a name, a one-line
description, declared :class:`~repro.core.model.ModelCapabilities` and a
``bound(context)`` entry point over the uniform
:class:`~repro.core.model.AnalysisContext` record (readings, latency
profile, scenario, contender set, access profiles, DMA descriptors, ILP
options).  The default :mod:`repro.core.registry` ships the full family:

* ``ftc-baseline`` / ``ftc-refined`` — fully time-composable bounds
  (Section 3.4, Eqs. 2-8);
* ``ilp-ptac`` / ``ilp-ptac-tc`` — the ILP-based per-target access count
  model (Section 3.5, Eqs. 9-23 + Table 5) and its time-composable
  variant;
* ``ilp-ptac-multi`` — the joint ILP over several simultaneous
  contenders (Section 2's extension);
* ``ideal`` — the ideal model (Eq. 1), usable only with ground-truth
  access profiles (our simulator provides them);
* ``priority-occupancy`` / ``dma-occupancy`` — sound companion bounds
  for higher-priority multi-outstanding masters;
* ``fsb-closed-form`` / ``fsb-ftc`` / ``fsb-crossbar-ilp`` — the
  front-side-bus reduction of Section 4.3.

Registering a new model mirrors registering a scenario in
:mod:`repro.engine.registry`::

    from repro.core import (
        AnalysisContext, ModelCapabilities, ModelSpec, register_model,
    )

    def _my_bound(context: AnalysisContext) -> ContentionBound:
        ...  # use the context fields your capabilities declare

    register_model(ModelSpec(
        name="my-model",
        description="shown by `repro models`",
        capabilities=ModelCapabilities(min_contenders=1, max_contenders=1),
        fn=_my_bound,
    ))

after which ``contention_bound("my-model", ...)``, every driver's
``models=`` argument, ``repro figure4 --model my-model`` and engine jobs
built from the model *name* (picklable, cache-key-stable) all resolve
it.  The typed free functions (:func:`~repro.core.ftc.ftc_refined`,
:func:`~repro.core.ilp_ptac.ilp_ptac_bound`, ...) remain available for
callers that want a model's full result object rather than the uniform
:class:`~repro.core.results.ContentionBound`.
"""

from repro.core.access_bounds import (
    AccessCountBound,
    AccessCountBounds,
    CountSource,
    access_count_bounds,
    ceil_div,
    stall_bound,
)
from repro.core.fsb import (
    FsbTiming,
    fsb_closed_form,
    fsb_ftc_closed_form,
    fsb_latency_profile,
    fsb_scenario,
    fsb_via_crossbar_ilp,
)
from repro.core.ftc import FtcDetails, ftc_baseline, ftc_refined
from repro.core.ideal import ideal_bound
from repro.core.ilp_ptac import (
    IlpPtacOptions,
    IlpPtacResult,
    build_ilp_ptac,
    ilp_ptac_bound,
)
from repro.core.model import (
    AnalysisContext,
    ContentionModel,
    ModelCapabilities,
    ModelSpec,
)
from repro.core.multicontender import MultiContenderResult, multi_contender_bound
from repro.core.priority import (
    dma_traffic_profile,
    dma_victim_bound,
    priority_victim_bound,
)
from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.core.registry import (
    ModelRegistry,
    builtin_models,
    default_model_registry,
    get_model,
    model_bound,
    model_names,
    model_specs,
    register_model,
    temporary_models,
)
from repro.core.results import ContentionBound, WcetEstimate
from repro.core.wcet import ModelKind, contention_bound, wcet_estimate

__all__ = [
    "AccessCountBound",
    "AccessCountBounds",
    "AccessProfile",
    "AnalysisContext",
    "ContentionBound",
    "ContentionModel",
    "CountSource",
    "FsbTiming",
    "FtcDetails",
    "IlpPtacOptions",
    "IlpPtacResult",
    "ModelCapabilities",
    "ModelKind",
    "ModelRegistry",
    "ModelSpec",
    "MultiContenderResult",
    "WcetEstimate",
    "access_count_bounds",
    "build_ilp_ptac",
    "builtin_models",
    "ceil_div",
    "contention_bound",
    "default_model_registry",
    "dma_traffic_profile",
    "dma_victim_bound",
    "fsb_closed_form",
    "fsb_ftc_closed_form",
    "fsb_latency_profile",
    "fsb_scenario",
    "fsb_via_crossbar_ilp",
    "ftc_baseline",
    "ftc_refined",
    "get_model",
    "ideal_bound",
    "ilp_ptac_bound",
    "model_bound",
    "model_names",
    "model_specs",
    "multi_contender_bound",
    "priority_victim_bound",
    "profile_from_pairs",
    "register_model",
    "stall_bound",
    "temporary_models",
    "wcet_estimate",
]
