"""The paper's contribution: contention models for the AURIX TC27x.

Three models with increasing information requirements and tightness:

* :func:`~repro.core.ftc.ftc_baseline` / :func:`~repro.core.ftc.ftc_refined`
  — fully time-composable bounds (Section 3.4, Eqs. 2-8);
* :func:`~repro.core.ilp_ptac.ilp_ptac_bound` — the ILP-based per-target
  access count model (Section 3.5, Eqs. 9-23 + Table 5 tailoring);
* :func:`~repro.core.ideal.ideal_bound` — the ideal model (Eq. 1), usable
  only with ground-truth access profiles (our simulator provides them).

Plus the extensions discussed by the paper: multiple simultaneous
contenders and the FSB reduction of Section 4.3.
"""

from repro.core.access_bounds import (
    AccessCountBound,
    AccessCountBounds,
    CountSource,
    access_count_bounds,
    ceil_div,
    stall_bound,
)
from repro.core.fsb import (
    FsbTiming,
    fsb_closed_form,
    fsb_ftc_closed_form,
    fsb_latency_profile,
    fsb_scenario,
    fsb_via_crossbar_ilp,
)
from repro.core.ftc import FtcDetails, ftc_baseline, ftc_refined
from repro.core.ideal import ideal_bound
from repro.core.ilp_ptac import (
    IlpPtacOptions,
    IlpPtacResult,
    build_ilp_ptac,
    ilp_ptac_bound,
)
from repro.core.multicontender import MultiContenderResult, multi_contender_bound
from repro.core.priority import (
    dma_traffic_profile,
    dma_victim_bound,
    priority_victim_bound,
)
from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.core.results import ContentionBound, WcetEstimate
from repro.core.wcet import ModelKind, contention_bound, wcet_estimate

__all__ = [
    "AccessCountBound",
    "AccessCountBounds",
    "AccessProfile",
    "ContentionBound",
    "CountSource",
    "FsbTiming",
    "FtcDetails",
    "IlpPtacOptions",
    "IlpPtacResult",
    "ModelKind",
    "MultiContenderResult",
    "WcetEstimate",
    "access_count_bounds",
    "build_ilp_ptac",
    "ceil_div",
    "dma_traffic_profile",
    "dma_victim_bound",
    "contention_bound",
    "fsb_closed_form",
    "fsb_ftc_closed_form",
    "fsb_latency_profile",
    "fsb_scenario",
    "fsb_via_crossbar_ilp",
    "ftc_baseline",
    "ftc_refined",
    "ideal_bound",
    "ilp_ptac_bound",
    "multi_contender_bound",
    "priority_victim_bound",
    "profile_from_pairs",
    "stall_bound",
    "wcet_estimate",
]
