"""Result types shared by every contention model.

All models — ideal (Eq. 1), fTC (Eq. 8) and ILP-PTAC (Eq. 9) — produce the
same kind of answer: an upper bound ``Δcont`` on the extra cycles the task
under analysis can suffer because of its contenders, optionally broken down
per (target, operation).  :class:`ContentionBound` captures that answer;
:class:`WcetEstimate` combines it with the isolation measurement into the
contention-aware WCET estimate the paper plots in Figure 4.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro.errors import ModelError
from repro.platform.targets import Operation, Target, pair_label, sorted_pairs


@dataclasses.dataclass(frozen=True)
class ContentionBound:
    """An upper bound on contention delay inflicted on the analysed task.

    Attributes:
        model: model identifier (``"ideal"``, ``"ftc-baseline"``,
            ``"ftc-refined"``, ``"ilp-ptac"``, ...).
        task: name of the task under analysis (τa).
        contenders: names of the contender tasks the bound accounts for;
            empty for fully time-composable bounds, which hold against *any*
            co-runner.
        delta_cycles: the bound ``Δcont`` in cycles.
        breakdown: optional per-(target, operation) decomposition of the
            bound; models that cannot attribute delay per target (fTC)
            key the split on operation only via the ``code``/``data``
            entries of :attr:`op_breakdown`.
        op_breakdown: code/data split of the bound, available for every
            model.
        scenario: name of the deployment scenario the bound was tailored
            to (``"architectural"`` when none).
        time_composable: whether the bound is valid under any contention
            scenario (no contender information used).
    """

    model: str
    task: str
    contenders: tuple[str, ...]
    delta_cycles: int
    op_breakdown: Mapping[Operation, int]
    breakdown: Mapping[tuple[Target, Operation], int] | None = None
    scenario: str = "architectural"
    time_composable: bool = False

    def __post_init__(self) -> None:
        if self.delta_cycles < 0:
            raise ModelError(
                f"{self.model}: contention bound must be non-negative, "
                f"got {self.delta_cycles}"
            )
        op_total = sum(self.op_breakdown.values())
        if op_total != self.delta_cycles:
            raise ModelError(
                f"{self.model}: op breakdown ({op_total}) does not add up "
                f"to the bound ({self.delta_cycles})"
            )
        if self.breakdown is not None:
            pair_total = sum(self.breakdown.values())
            if pair_total != self.delta_cycles:
                raise ModelError(
                    f"{self.model}: per-target breakdown ({pair_total}) does "
                    f"not add up to the bound ({self.delta_cycles})"
                )

    @property
    def code_cycles(self) -> int:
        """Contention charged to code requests (``Δcs^co_a``)."""
        return self.op_breakdown.get(Operation.CODE, 0)

    @property
    def data_cycles(self) -> int:
        """Contention charged to data requests (``Δcs^da_a``)."""
        return self.op_breakdown.get(Operation.DATA, 0)

    def describe(self) -> str:
        """One-paragraph human-readable summary for reports."""
        lines = [
            f"{self.model} bound for {self.task!r} "
            f"(scenario {self.scenario}): {self.delta_cycles} cycles"
        ]
        lines.append(
            f"  code: {self.code_cycles} cycles, data: {self.data_cycles} cycles"
        )
        if self.breakdown:
            for target, op in sorted_pairs(self.breakdown):
                cycles = self.breakdown[(target, op)]
                if cycles:
                    lines.append(f"  {pair_label(target, op)}: {cycles} cycles")
        if self.time_composable:
            lines.append("  (fully time-composable: valid for any co-runner)")
        elif self.contenders:
            lines.append(f"  against contenders: {', '.join(self.contenders)}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class WcetEstimate:
    """A contention-aware WCET estimate (isolation time + contention bound).

    This is what Figure 4 plots, normalised: the model prediction relative
    to the execution time observed in isolation.

    Attributes:
        isolation_cycles: the task's (high-watermark) execution time
            measured in isolation.
        bound: the contention bound added on top.
    """

    isolation_cycles: int
    bound: ContentionBound

    def __post_init__(self) -> None:
        if self.isolation_cycles <= 0:
            raise ModelError("isolation execution time must be positive")

    @property
    def wcet_cycles(self) -> int:
        """The estimate: isolation time plus contention bound."""
        return self.isolation_cycles + self.bound.delta_cycles

    @property
    def slowdown(self) -> float:
        """Normalised prediction (Figure 4's y-axis): WCET / isolation."""
        return self.wcet_cycles / self.isolation_cycles

    def upper_bounds(self, observed_cycles: int) -> bool:
        """Whether the estimate covers an observed multicore execution time.

        The paper's soundness criterion: "In all experiments our model
        predictions upperbound the observed multicore execution time."
        """
        return self.wcet_cycles >= observed_cycles

    def describe(self) -> str:
        """Human-readable summary, normalised as in Figure 4."""
        return (
            f"{self.bound.model}: isolation {self.isolation_cycles} + "
            f"Δcont {self.bound.delta_cycles} = {self.wcet_cycles} cycles "
            f"({self.slowdown:.2f}x)"
        )
