"""The ILP-based PTAC contention model (Section 3.5, Eqs. 9-23).

The tightest model the TC27x's debug counters allow: an Integer Linear
Program searches for the per-target mapping of τa's and τb's requests that
is (i) consistent with everything the counters and the deployment scenario
say, and (ii) maximises the contention inflicted on τa.  Because it
maximises over *all* consistent mappings, the result is a sound bound even
though the true mapping is unknown.

Model anatomy (names refer to the paper's equations):

* Variables ``n_a[t,o]``, ``n_b[t,o]`` — candidate per-target access counts
  of each task; ``n_ba[t,o]`` — contender requests of type ``o`` to target
  ``t`` assumed to interfere with τa.
* **Objective** (Eq. 9): maximise ``Σ n_ba[t,o] · l^{t,o}``, split into code
  and data interference.
* **Interference caps** (Eqs. 10-19): per target, interfering requests are
  bounded by what τb issues there (``n_ba ≤ n_b``) and by what τa exposes
  there (each τa request is delayed at most once per contender:
  ``Σ_o n_ba[t,o] ≤ Σ_o n_a[t,o]``).  The ``min()`` forms of Eqs. 10-12 are
  linearised as constraint pairs, exact under maximisation.  (Eqs. 15-16
  carry two typos in the paper — ``da`` variables written as ``co`` — which
  are corrected here, mirroring the pf0 forms.)
* **Stall profiles** (Eqs. 20-23): access counts must be consistent with
  the observed PMEM_STALL / DMEM_STALL readings.  The paper writes these as
  equalities with per-access stall terms, then notes only the *minimum*
  stall per access is known; with minima as coefficients the only sound
  (and, on the paper's own Table 6 data, feasible) reading is the budget
  inequality ``Σ_t n[t,o] · cs^{t,o} ≤ cs^o`` — see DESIGN.md.  An
  ``exact`` mode retains the literal equality for exploration.
* **Scenario tailoring** (Table 5): pairs the deployment cannot produce are
  simply absent; when all SRI code is cacheable, ``Σ_t n[t,co] = PM``;
  when some data is cacheable, ``Σ_t n[t,da] ≥ DMC + DMD``.

Dropping the τb-side constraints (Eqs. 22-23 and τb's tailoring) makes the
bound fully time-composable again, as the paper remarks after Eq. 23 —
exposed as ``contender_constraints=False`` and exercised by the ablation
benchmark.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping

from repro.core.results import ContentionBound
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.ilp.expr import Var, lin_sum
from repro.ilp.model import IlpModel
from repro.ilp.solution import Solution
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile
from repro.platform.targets import Operation, Target, pair_label

Pair = tuple[Target, Operation]


@dataclasses.dataclass(frozen=True)
class IlpPtacOptions:
    """Knobs of the ILP-PTAC model.

    Attributes:
        stall_budget: ``"minimum"`` (default) treats Eqs. 20-23 as budget
            inequalities with the Table 2 minimum stall coefficients;
            ``"exact"`` keeps the paper's literal equalities (usually
            infeasible on real counter data — see DESIGN.md).
        contender_constraints: include the τb-side information (Eqs. 22-23
            and τb's Table 5 tailoring).  ``False`` yields the fully
            time-composable ILP variant.
        use_exact_code_counts: honour the scenario's "P$_MISS is exact"
            semantics (Table 5's ``Σ n^{t,co} = PM`` rows).
        backend: ILP backend (``"bnb"``, ``"scipy"`` or ``"lp"`` for the
            relaxation bound, which is also sound and ≥ the ILP optimum).
        node_limit: branch-and-bound node budget.
        warm_start: solve through the per-worker
            :class:`~repro.ilp.batch.BatchSolver`, reusing the previous
            same-structure solve's basis and incumbent (``"bnb"``
            backend only).  Results are bit-identical to cold solves —
            the simplex reports the canonical optimal vertex either
            way — so this is purely a performance knob; disable it to
            benchmark cold solving.
    """

    stall_budget: str = "minimum"
    contender_constraints: bool = True
    use_exact_code_counts: bool = True
    backend: str = "bnb"
    node_limit: int = 100_000
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.stall_budget not in ("minimum", "exact"):
            raise ModelError(
                f"unknown stall budget mode {self.stall_budget!r}"
            )


@dataclasses.dataclass(frozen=True)
class IlpPtacResult:
    """Full outcome of an ILP-PTAC solve.

    Attributes:
        bound: the contention bound (what Figure 4 plots).
        interference: worst-case interfering request counts
            (``n_{b→a}^{t,o}`` at the optimum).
        worst_profile_a: the τa per-target access mapping the optimiser
            chose (a witness, not ground truth).
        worst_profile_b: same for τb (empty without contender constraints).
        model: the underlying ILP, for inspection.
        solution: raw solver result (status, stats, values).
    """

    bound: ContentionBound
    interference: Mapping[Pair, int]
    worst_profile_a: Mapping[Pair, int]
    worst_profile_b: Mapping[Pair, int]
    model: IlpModel
    solution: Solution


class _IlpPtacBuilder:
    """Constructs the ILP of Section 3.5 for one (τa, τb, scenario) triple."""

    def __init__(
        self,
        readings_a: TaskReadings,
        readings_b: TaskReadings | None,
        profile: LatencyProfile,
        scenario: DeploymentScenario,
        options: IlpPtacOptions,
    ) -> None:
        if options.contender_constraints and readings_b is None:
            raise ModelError(
                "contender constraints requested but no contender readings "
                "given; pass readings_b or set contender_constraints=False"
            )
        self.readings_a = readings_a
        self.readings_b = readings_b
        self.profile = profile
        self.scenario = scenario
        self.options = options
        self.pairs: tuple[Pair, ...] = scenario.valid_pairs()
        if not self.pairs:
            raise ModelError(
                f"scenario {scenario.name!r} admits no SRI traffic"
            )
        self.model = IlpModel(
            name=f"ilp-ptac[{readings_a.name} vs "
            f"{readings_b.name if readings_b else '<any>'}; {scenario.name}]"
        )
        self.n_a: dict[Pair, Var] = {}
        self.n_b: dict[Pair, Var] = {}
        self.n_ba: dict[Pair, Var] = {}

    # ------------------------------------------------------------------
    def build(self) -> IlpModel:
        """Assemble variables, objective and all constraint families."""
        self._add_variables()
        self._add_objective()
        self._add_interference_caps()
        self._add_stall_profile(
            "a", self.readings_a, self.n_a
        )
        self._add_tailoring("a", self.readings_a, self.n_a)
        if self.options.contender_constraints:
            assert self.readings_b is not None
            self._add_stall_profile("b", self.readings_b, self.n_b)
            self._add_tailoring("b", self.readings_b, self.n_b)
        return self.model

    def _add_variables(self) -> None:
        # Per-class total variables first (Eq. 5's n^co / n^da): they are
        # redundant for the LP but give branch-and-bound integral *sums*
        # to branch on, collapsing the pf0/pf1 symmetry plateau (the two
        # banks share one latency, so fractions can otherwise hop between
        # their columns without changing the bound).
        self._totals: dict[tuple[str, Operation], Var] = {}
        families = ["a", "ba"] + (
            ["b"] if self.options.contender_constraints else []
        )
        for family in families:
            for op in (Operation.CODE, Operation.DATA):
                if any(o is op for _, o in self.pairs):
                    self._totals[(family, op)] = self.model.add_var(
                        f"n_{family}^{op.value}"
                    )
        for target, op in self.pairs:
            label = pair_label(target, op)
            self.n_a[(target, op)] = self.model.add_var(f"n_a[{label}]")
            self.n_ba[(target, op)] = self.model.add_var(f"n_ba[{label}]")
            if self.options.contender_constraints:
                self.n_b[(target, op)] = self.model.add_var(f"n_b[{label}]")
        for (family, op), total in self._totals.items():
            variables = {
                "a": self.n_a,
                "b": self.n_b,
                "ba": self.n_ba,
            }[family]
            self.model.add_constraint(
                lin_sum(
                    variables[(t, o)] for (t, o) in self.pairs if o is op
                )
                == total,
                name=f"total_{family}_{op.value}",
            )

    def _add_objective(self) -> None:
        """Equation 9: maximise Δcs^co_a + Δcs^da_a."""
        self.model.maximize(
            lin_sum(
                self.n_ba[pair] * self._latency(pair) for pair in self.pairs
            )
        )

    def _latency(self, pair: Pair) -> int:
        target, op = pair
        return self.scenario.interference_latency(self.profile, target, op)

    def _add_interference_caps(self) -> None:
        """Equations 10-19 (linearised; Eq. 15-16 typos corrected)."""
        targets = {target for target, _ in self.pairs}
        for target in targets:
            ops = [op for t, op in self.pairs if t is target]
            exposure = lin_sum(self.n_a[(target, op)] for op in ops)
            for op in ops:
                pair = (target, op)
                label = pair_label(target, op)
                # n_ba <= τa's exposure on the target (Eqs. 11a/12a/...).
                self.model.add_constraint(
                    self.n_ba[pair] <= exposure, name=f"cap_a[{label}]"
                )
                # n_ba <= what τb issues there (Eqs. 11b/12b/...); absent
                # without contender info, leaving only the τa-side caps.
                if self.options.contender_constraints:
                    self.model.add_constraint(
                        self.n_ba[pair] <= self.n_b[pair],
                        name=f"cap_b[{label}]",
                    )
            # Cumulative per-target cap (Eqs. 13/16/19): τa's requests on a
            # target can each be delayed at most once by this contender.
            self.model.add_constraint(
                lin_sum(self.n_ba[(target, op)] for op in ops) <= exposure,
                name=f"cumulative[{target.value}]",
            )

    def _add_stall_profile(
        self,
        who: str,
        readings: TaskReadings,
        variables: dict[Pair, Var],
    ) -> None:
        """Equations 20-23: consistency with PMEM_STALL / DMEM_STALL."""
        for op, budget in (
            (Operation.CODE, readings.ps),
            (Operation.DATA, readings.ds),
        ):
            terms = [
                variables[(target, o)] * self.profile.stall_cycles(target, o)
                for (target, o) in self.pairs
                if o is op
            ]
            if not terms:
                continue
            expr = lin_sum(terms)
            name = f"stall_{op.value}[{who}]"
            if self.options.stall_budget == "exact":
                self.model.add_constraint(expr == budget, name=name)
            else:
                self.model.add_constraint(expr <= budget, name=name)

    def _add_tailoring(
        self,
        who: str,
        readings: TaskReadings,
        variables: dict[Pair, Var],
    ) -> None:
        """Table 5: scenario-specific PTAC constraints.

        The "n^{t,o} = 0" rows of Table 5 are realised structurally: pairs
        outside ``scenario.valid_pairs()`` have no variable at all.
        """
        code_vars = [
            variables[(target, op)]
            for (target, op) in self.pairs
            if op is Operation.CODE
        ]
        if (
            self.options.use_exact_code_counts
            and self.scenario.code_count_exact
            and code_vars
        ):
            self.model.add_constraint(
                lin_sum(code_vars) == readings.pm,
                name=f"code_count[{who}]",
            )
        data_vars = [
            variables[(target, op)]
            for (target, op) in self.pairs
            if op is Operation.DATA
        ]
        if self.scenario.data_count_lower_bounded and data_vars:
            self.model.add_constraint(
                lin_sum(data_vars) >= readings.data_cache_misses,
                name=f"data_count_lb[{who}]",
            )


def solve_contention_ilp(model: IlpModel, options: IlpPtacOptions) -> Solution:
    """Solve a contention ILP honouring the options' solver knobs.

    The shared dispatch of every ILP-backed model (single-contender,
    time-composable, multi-contender, FSB reduction): with the default
    ``bnb`` backend and ``warm_start`` enabled, the solve goes through
    the per-worker :class:`~repro.ilp.batch.BatchSolver`, so batches of
    same-structure instances (sweep points, matrix cells) reuse each
    other's simplex bases and incumbents.  Any other configuration is
    handed to :meth:`~repro.ilp.model.IlpModel.solve` unchanged.
    """
    if options.backend == "bnb" and options.warm_start:
        from repro.ilp.batch import default_batch_solver

        return default_batch_solver().solve(
            model, node_limit=options.node_limit
        )
    return model.solve(
        backend=options.backend, node_limit=options.node_limit
    )


def build_ilp_ptac(
    readings_a: TaskReadings,
    readings_b: TaskReadings | None,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    options: IlpPtacOptions | None = None,
) -> IlpModel:
    """Build (without solving) the ILP of Section 3.5 — useful for
    inspecting the generated constraints in tests and reports."""
    options = options or IlpPtacOptions()
    return _IlpPtacBuilder(
        readings_a, readings_b, profile, scenario, options
    ).build()


def ilp_ptac_bound(
    readings_a: TaskReadings,
    readings_b: TaskReadings | None,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    options: IlpPtacOptions | None = None,
) -> IlpPtacResult:
    """Solve the ILP-PTAC model for one contender (Section 3.5).

    Args:
        readings_a: isolation counter readings of the task under analysis.
        readings_b: isolation counter readings of the contender; may be
            ``None`` when ``options.contender_constraints`` is off.
        profile: Table 2 constants.
        scenario: deployment scenario shared by both tasks (Section 4.1).
        options: model knobs; defaults reproduce the paper's configuration.

    Returns:
        An :class:`IlpPtacResult` whose ``bound.delta_cycles`` is the
        worst-case contention in cycles.
    """
    options = options or IlpPtacOptions()
    builder = _IlpPtacBuilder(
        readings_a, readings_b, profile, scenario, options
    )
    model = builder.build()
    solution = solve_contention_ilp(model, options).require_optimal()

    # With the "lp" backend the relaxation optimum is fractional; rounding
    # each interference term *up* keeps the reported bound sound (the LP
    # optimum already dominates the ILP optimum).
    relaxed = options.backend == "lp"

    def count_of(pair: Pair) -> int:
        if relaxed:
            return int(math.ceil(solution.value(builder.n_ba[pair]) - 1e-9))
        return solution.int_value(builder.n_ba[pair])

    interference: dict[Pair, int] = {}
    breakdown: dict[Pair, int] = {}
    op_totals = {Operation.CODE: 0, Operation.DATA: 0}
    for pair in builder.pairs:
        count = count_of(pair)
        latency = builder._latency(pair)
        interference[pair] = count
        cycles = count * latency
        if cycles:
            breakdown[pair] = cycles
        op_totals[pair[1]] += cycles

    contenders: tuple[str, ...] = ()
    if options.contender_constraints and readings_b is not None:
        contenders = (readings_b.name,)
    bound = ContentionBound(
        model="ilp-ptac"
        if options.contender_constraints
        else "ilp-ptac-tc",
        task=readings_a.name,
        contenders=contenders,
        delta_cycles=sum(op_totals.values()),
        op_breakdown=op_totals,
        breakdown=breakdown,
        scenario=scenario.name,
        time_composable=not options.contender_constraints,
    )

    def witness(variables: dict[Pair, Var]) -> dict[Pair, int]:
        if relaxed:
            return {
                pair: int(math.ceil(solution.value(var) - 1e-9))
                for pair, var in variables.items()
            }
        return {
            pair: solution.int_value(var) for pair, var in variables.items()
        }

    return IlpPtacResult(
        bound=bound,
        interference=interference,
        worst_profile_a=witness(builder.n_a),
        worst_profile_b=witness(builder.n_b),
        model=model,
        solution=solution,
    )
