"""Contention from higher-priority SRI masters (beyond the paper's scope).

The paper analyses contenders "mapped to the same SRI priority class",
calling it "the most stressing one for our model" — for *cores* that is
right: a TriCore has a single outstanding SRI transaction, and under any
work-conserving arbitration (round-robin or fixed priority) each of its
requests delays a given victim request at most once per round.  The
simulator reproduces this equivalence and the test-suite asserts it.

The assumption genuinely breaks for **multi-outstanding, higher-priority
masters** — DMA channels streaming descriptors at line rate.  A burst of
``d`` queued DMA transactions delays one victim request up to ``d`` times;
the round-robin model's per-target cap ``Σ n_{b→a} ≤ Σ n_a`` then
under-approximates, which the test-suite demonstrates constructively on
the simulator.

This module provides the sound companion bound for that regime: a victim
request at target ``t`` can, over the whole run, accumulate at most the
total *occupancy* the higher-priority master generates on ``t``:

    Δcont_hp = Σ_{(t,o) : τa reaches t}  n_hp^{t,o} · l^{t,o}

Combine with the same-class ILP-PTAC bound for the ordinary co-runner
cores: contention sources at different priority levels are additive.
"""

from __future__ import annotations

from repro.core.ptac import AccessProfile
from repro.core.results import ContentionBound
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile
from repro.platform.targets import Operation, Target
from repro.sim.dma import DmaAgent


def priority_victim_bound(
    scenario: DeploymentScenario,
    profile: LatencyProfile,
    high_priority_traffic: AccessProfile,
    *,
    task: str = "victim",
) -> ContentionBound:
    """Worst-case delay inflicted by one higher-priority SRI master.

    Args:
        scenario: the victim's deployment scenario — only targets the
            victim can reach contribute (traffic to other slaves proceeds
            in parallel on the crossbar).
        profile: Table 2 constants.
        high_priority_traffic: per-target transaction counts of the
            higher-priority master (a DMA transfer descriptor is known
            statically, so exact counts — not counter-derived bounds —
            are the natural input here).
        task: victim name for the report.

    Returns:
        A :class:`ContentionBound`; time-composable with respect to the
        *victim* (no victim counters are needed at all — the occupancy
        bound holds whatever the victim does).
    """
    reachable: set[Target] = set()
    for operation in (Operation.CODE, Operation.DATA):
        reachable.update(scenario.targets(operation))
    if not reachable:
        raise ModelError("the scenario gives the victim no SRI targets")

    breakdown: dict[tuple[Target, Operation], int] = {}
    op_totals = {Operation.CODE: 0, Operation.DATA: 0}
    for (target, operation), count in high_priority_traffic.counts.items():
        if target not in reachable or count == 0:
            continue
        latency = scenario.interference_latency(profile, target, operation)
        cycles = count * latency
        breakdown[(target, operation)] = cycles
        op_totals[operation] += cycles

    return ContentionBound(
        model="priority-occupancy",
        task=task,
        contenders=(high_priority_traffic.task,),
        delta_cycles=sum(op_totals.values()),
        op_breakdown=op_totals,
        breakdown=breakdown,
        scenario=scenario.name,
        time_composable=True,
    )


def dma_traffic_profile(agent: DmaAgent) -> AccessProfile:
    """The exact per-target access profile of a DMA transfer descriptor."""
    return AccessProfile(
        task=agent.label,
        counts={(agent.request.target, agent.request.operation): agent.count},
    )


def dma_victim_bound(
    scenario: DeploymentScenario,
    profile: LatencyProfile,
    agents: list[DmaAgent] | tuple[DmaAgent, ...],
    *,
    task: str = "victim",
) -> ContentionBound:
    """Occupancy bound for a set of higher-priority DMA agents.

    Sums :func:`priority_victim_bound` over agents (occupancies of
    independent masters are additive on a single slave).
    """
    if not agents:
        raise ModelError("at least one DMA agent is required")
    total = AccessProfile(task="+".join(a.label for a in agents), counts={})
    for agent in agents:
        total = total.merged(dma_traffic_profile(agent), task=total.task)
    return priority_victim_bound(
        scenario, profile, total, task=task
    )
