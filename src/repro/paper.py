"""Reference numbers published in the paper (and values derived from them).

Single source of truth for every constant the reproduction compares
against:

* **Table 6** — debug counter readings of the application and the H-Load
  contender under both scenarios (verbatim).
* **Figure 4** — the model-prediction ratios read off the bar chart
  (fTC and the ILP model under H/M/L load, both scenarios).
* **Derived isolation times** — the paper reports ratios but not the
  isolation execution times; solving the models on the Table 6 inputs and
  inverting the Figure 4 ratios pins them (see DESIGN.md).  Any value
  within ±1% reproduces the published two-decimal figures; we fix one.
* **Derived M/L-load scalings** — M/L counter readings are not reported;
  matching the published L endpoints requires L ≈ 0.5×H (both scenarios),
  and M is set mid-way.  The workload generators inherit these factors.
* **Expected model outputs** — the analytically computed Δcont values on
  Table 6 inputs, asserted by the regression tests.
"""

from __future__ import annotations

import dataclasses
import types

from repro.counters.readings import TaskReadings

# ----------------------------------------------------------------------
# Table 6 — counter readings for Scenarios 1 and 2 (verbatim).
# Core 1 runs the application under analysis, core 2 the H-Load contender.
# ----------------------------------------------------------------------
TABLE6_SC1_APP = TaskReadings(
    name="app",
    pcache_miss=236_544,
    dcache_miss_clean=0,
    dcache_miss_dirty=0,
    pmem_stall=3_421_242,
    dmem_stall=8_345_056,
)

TABLE6_SC1_HLOAD = TaskReadings(
    name="H-Load",
    pcache_miss=120_594,
    dcache_miss_clean=0,
    dcache_miss_dirty=0,
    pmem_stall=1_744_167,
    dmem_stall=4_251_811,
)

TABLE6_SC2_APP = TaskReadings(
    name="app",
    pcache_miss=458_394,
    dcache_miss_clean=200,
    dcache_miss_dirty=0,
    pmem_stall=2_753_995,
    dmem_stall=86_371,
)

TABLE6_SC2_HLOAD = TaskReadings(
    name="H-Load",
    pcache_miss=233_694,
    dcache_miss_clean=200,
    dcache_miss_dirty=0,
    pmem_stall=1_404_145,
    dmem_stall=42_826,
)


def table6(scenario: str, task: str) -> TaskReadings:
    """Look up a Table 6 row by scenario ("scenario1"/"scenario2") and
    task ("app"/"H-Load")."""
    rows = {
        ("scenario1", "app"): TABLE6_SC1_APP,
        ("scenario1", "H-Load"): TABLE6_SC1_HLOAD,
        ("scenario2", "app"): TABLE6_SC2_APP,
        ("scenario2", "H-Load"): TABLE6_SC2_HLOAD,
    }
    try:
        return rows[(scenario, task)]
    except KeyError as exc:
        raise KeyError(
            f"Table 6 has no row for ({scenario!r}, {task!r})"
        ) from exc


# ----------------------------------------------------------------------
# Derived quantities (DESIGN.md, "Substitutions").
# ----------------------------------------------------------------------
#: Isolation execution times (cycles), derived by inverting Figure 4.
ISOLATION_CYCLES = types.MappingProxyType(
    {"scenario1": 13_600_000, "scenario2": 5_660_000}
)

#: Contender load scalings relative to H-Load (M/L readings unreported;
#: L ≈ 0.5 reproduces the published L endpoints, M is set mid-way).
LOAD_SCALE = types.MappingProxyType({"H": 1.0, "M": 0.75, "L": 0.5})


def contender_readings(scenario: str, load: str) -> TaskReadings:
    """Counter readings of one contender level (H verbatim, M/L scaled)."""
    base = table6(scenario, "H-Load")
    factor = LOAD_SCALE[load]
    if factor == 1.0:
        return base
    return base.scaled(factor, name=f"{load}-Load")


# ----------------------------------------------------------------------
# Figure 4 — published prediction ratios (model WCET / isolation time).
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Figure4Reference:
    """Published prediction ratios of one scenario.

    ``ilp`` maps the contender level to the ratio; the paper reports the
    H and L endpoints ("in between 1.49 and 1.24"); M is not reported.
    """

    scenario: str
    ftc: float
    ilp: dict[str, float]


FIGURE4 = types.MappingProxyType(
    {
        "scenario1": Figure4Reference(
            scenario="scenario1", ftc=1.95, ilp={"H": 1.49, "L": 1.24}
        ),
        "scenario2": Figure4Reference(
            scenario="scenario2", ftc=2.33, ilp={"H": 1.67, "L": 1.34}
        ),
    }
)

#: Acceptance band for reproduced ratios (see DESIGN.md).
RATIO_TOLERANCE = 0.02

# ----------------------------------------------------------------------
# Expected model outputs on Table 6 inputs (computed analytically from
# Table 2; asserted by tests/test_paper_regression.py).
# ----------------------------------------------------------------------
EXPECTED_DELTA = types.MappingProxyType(
    {
        ("scenario1", "ftc-refined"): 12_964_270,
        ("scenario1", "ilp-ptac", "H"): 6_606_495,
        ("scenario2", "ftc-refined"): 7_515_702,
        ("scenario2", "ilp-ptac", "H"): 3_829_026,
    }
)

#: The paper's qualitative headline: "contention cycles are below half of
#: those for fTC bounds".  The paper's own Figure 4 ratios give
#: 0.49/0.95 ≈ 0.52 (and 0.67/1.33 ≈ 0.50), so "half" is the authors'
#: rounding; we pin the reproduced ratio at ≤ 0.52.
ILP_VS_FTC_MAX_RATIO = 0.52
