"""DMA-style SRI masters: multi-outstanding, fixed-rate request agents.

The TC27x's SRI serves more masters than the three cores — DMA channels
and peripherals issue transactions too.  The paper scopes these out by
assuming all relevant contenders sit in the same SRI priority class; this
module provides the ingredient needed to *test* that scoping decision:

* TriCore CPUs are **single-outstanding** masters (one in-flight request),
  for which any work-conserving arbitration delays each request at most
  once per other master per round — the paper's alignment assumption holds
  under round-robin *and* fixed priority alike.
* A DMA engine with queue depth > 1 issuing at line rate breaks that
  property under fixed-priority arbitration: a burst can delay one CPU
  request several times over.  The round-robin model then under-predicts,
  and the :mod:`repro.core.priority` bound is required.

Both behaviours are demonstrated by the test-suite and the A5 benchmark.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError
from repro.sim.requests import SriRequest


@dataclasses.dataclass(frozen=True)
class DmaAgent:
    """A fixed-rate DMA master issuing identical SRI transactions.

    Attributes:
        master_id: SRI master id; must not collide with core ids.
        request: the transaction template (target, operation, flags).
        count: total number of transactions to issue.
        period: cycles between consecutive issue attempts; an attempt is
            deferred (not dropped) while ``queue_depth`` transactions are
            already outstanding.
        queue_depth: maximum in-flight transactions.  Depth 1 makes the
            agent behave like a core's memory interface; larger depths
            model real descriptor-driven DMA bursts.
        start_time: cycle of the first issue attempt.
    """

    master_id: int
    request: SriRequest
    count: int
    period: int = 1
    queue_depth: int = 4
    start_time: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SimulationError("DMA count must be non-negative")
        if self.period < 1:
            raise SimulationError("DMA period must be at least one cycle")
        if self.queue_depth < 1:
            raise SimulationError("DMA queue depth must be at least 1")
        if self.start_time < 0:
            raise SimulationError("DMA start time must be non-negative")

    @property
    def label(self) -> str:
        """Display name (defaults to ``dma<master_id>``)."""
        return self.name or f"dma{self.master_id}"

    def occupancy_cycles(self, service_time: int) -> int:
        """Total SRI occupancy the agent can generate (count x service)."""
        return self.count * service_time

    def uncontended_result(self, service_time: int) -> "DmaResult":
        """Closed-form :class:`DmaResult` of an *uncontended* run.

        Valid only when the agent is the sole master of its target (no
        queueing) **and** ``period >= service_time`` (each transaction
        completes before the next issue attempt, so the queue never
        backs up and no attempt is deferred).  Under those conditions
        every transaction starts at its tick and finishes ``service``
        cycles later, so the whole run collapses to arithmetic — the
        simulator uses this to skip per-tick events entirely.
        """
        if self.period < service_time:
            raise SimulationError(
                "closed-form DMA result requires period >= service time"
            )
        finish = self.start_time
        if self.count:
            finish += (self.count - 1) * self.period + service_time
        return DmaResult(
            master_id=self.master_id,
            served=self.count,
            finish_time=finish,
            total_wait_cycles=0,
        )


@dataclasses.dataclass(frozen=True)
class DmaResult:
    """Observed behaviour of one DMA agent over a run.

    Attributes:
        master_id: the agent's SRI master id.
        served: transactions completed.
        finish_time: completion time of the last transaction.
        total_wait_cycles: cumulative arbitration wait.
    """

    master_id: int
    served: int
    finish_time: int
    total_wait_cycles: int
