"""Core-local cache models: set-associative I$/D$ and the 1.6E's DRB.

The TC1.6P cores front the SRI with a 16 KiB instruction cache and an
8 KiB write-back data cache; the TC1.6E has an 8 KiB instruction cache and
a 32-byte data read buffer (DRB) instead of a data cache (Figure 1).  The
trace front-end (:mod:`repro.sim.trace_frontend`) drives these models with
address traces and turns the *misses* into SRI transactions — which is
also precisely how the debug counters of Table 4 are wired: P$_MISS and
D$_MISS_{CLEAN,DIRTY} count cache events, not SRI transfers, and the two
coincide exactly when (and only when) all SRI traffic is cacheable.

Replacement is LRU; the data cache is write-back/write-allocate, which is
what makes *dirty* evictions (and their bracketed 21-cycle LMU latency)
possible in Scenario 2.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError
from repro.platform.tc27x import CacheGeometry


@dataclasses.dataclass(frozen=True)
class CacheAccess:
    """Outcome of one cache access.

    Attributes:
        hit: whether the access hit.
        evicted_dirty: whether a dirty victim line was evicted (miss only).
        line: the line address (address // line_size) of the access.
    """

    hit: bool
    evicted_dirty: bool
    line: int


class SetAssociativeCache:
    """An LRU set-associative cache with optional write-back policy.

    Args:
        geometry: size / line size / associativity.
        write_back: if true, writes dirty lines and misses may evict dirty
            victims; if false (instruction caches), lines are never dirty.
        write_allocate: whether write misses allocate a line (the TC27x
            data cache does).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        *,
        write_back: bool = True,
        write_allocate: bool = True,
    ) -> None:
        self.geometry = geometry
        self.write_back = write_back
        self.write_allocate = write_allocate
        # Per set: list of [tag, dirty] in LRU order (front = most recent).
        self._sets: list[list[list]] = [[] for _ in range(geometry.sets)]
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._sets = [[] for _ in range(self.geometry.sets)]
        self.hits = 0
        self.misses = 0
        self.dirty_evictions = 0

    def _locate(self, address: int) -> tuple[int, int, int]:
        if address < 0:
            raise SimulationError("negative address")
        line = address // self.geometry.line_size
        index = line % self.geometry.sets
        tag = line // self.geometry.sets
        return line, index, tag

    def access(self, address: int, *, write: bool = False) -> CacheAccess:
        """Perform one access, updating LRU/dirty state.

        Returns a :class:`CacheAccess`; ``evicted_dirty`` can only be true
        on a miss in a write-back cache whose victim was dirtied earlier.
        """
        line, index, tag = self._locate(address)
        ways = self._sets[index]
        for position, entry in enumerate(ways):
            if entry[0] == tag:
                self.hits += 1
                ways.insert(0, ways.pop(position))
                if write and self.write_back:
                    ways[0][1] = True
                return CacheAccess(hit=True, evicted_dirty=False, line=line)

        # Miss.
        self.misses += 1
        evicted_dirty = False
        allocate = not write or self.write_allocate
        if allocate:
            if len(ways) >= self.geometry.ways:
                victim = ways.pop()
                if victim[1]:
                    evicted_dirty = True
                    self.dirty_evictions += 1
            ways.insert(0, [tag, bool(write and self.write_back)])
        return CacheAccess(hit=False, evicted_dirty=evicted_dirty, line=line)

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is currently cached."""
        _, index, tag = self._locate(address)
        return any(entry[0] == tag for entry in self._sets[index])

    @property
    def miss_rate(self) -> float:
        """Miss ratio over all accesses so far (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def instruction_cache(geometry: CacheGeometry) -> SetAssociativeCache:
    """An instruction cache: read-only, never dirty."""
    return SetAssociativeCache(geometry, write_back=False, write_allocate=True)


def data_cache(geometry: CacheGeometry) -> SetAssociativeCache:
    """The TC1.6P write-back, write-allocate data cache."""
    return SetAssociativeCache(geometry, write_back=True, write_allocate=True)


def data_read_buffer() -> SetAssociativeCache:
    """The TC1.6E's 32-byte data read buffer: one line, no write-back."""
    return SetAssociativeCache(
        CacheGeometry(size=32, line_size=32, ways=1),
        write_back=False,
        write_allocate=True,
    )
