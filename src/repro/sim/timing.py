"""Device timing model of the simulator — where Table 2 comes from.

Each SRI slave serves one transaction at a time; a transaction occupies the
slave for its *service time* and blocks the issuing core for the service
time minus the *pipeline overlap* the core can hide (prefetch streams on
the flashes, store buffering on the LMU).  The parameters below are chosen
so that the observable quantities match Table 2 of the paper **by
construction**, and the characterisation harness then re-measures them the
way the authors did:

========  ===========  ===========  ==============  ==============
target    service seq  service rnd  overlap (seq)   min stall
========  ===========  ===========  ==============  ==============
pf, code      12           16        6               12-6 = 6
pf, data      12           16        1               12-1 = 11
lmu, code     11           11        0               11
lmu, read     11           11        0               11
lmu, write    11           11        1               11-1 = 10
lmu, dirty    21           21        0               21 (bracketed)
dfl, data     43           43        1               43-1 = 42
========  ===========  ===========  ==============  ==============

Invariant (checked at construction): counted stall of any transaction in
isolation is at least the Table 2 ``cs^{t,o}`` of its class — otherwise
Eq. 4's access-count bounds would be unsound.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.platform.targets import Operation, Target
from repro.sim.requests import SriRequest


@dataclasses.dataclass(frozen=True)
class DeviceTiming:
    """Service/overlap parameters of one SRI slave.

    Attributes:
        service_sequential: occupancy of a prefetch-stream transaction.
        service_random: occupancy of an isolated/random transaction.
        service_dirty: occupancy of a dirty-eviction transaction
            (write-back plus fill); ``None`` when not distinguished.
        overlap_code_seq: pipeline overlap of sequential code fetches.
        overlap_data_seq: pipeline overlap of sequential data reads.
        overlap_write: overlap of (buffered) writes.
    """

    service_sequential: int
    service_random: int
    service_dirty: int | None = None
    overlap_code_seq: int = 0
    overlap_data_seq: int = 0
    overlap_write: int = 0

    def __post_init__(self) -> None:
        if self.service_sequential <= 0 or self.service_random <= 0:
            raise SimulationError("service times must be positive")
        if self.service_sequential > self.service_random:
            raise SimulationError(
                "sequential service cannot exceed random service"
            )
        for name in ("overlap_code_seq", "overlap_data_seq", "overlap_write"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")

    def service_time(self, request: SriRequest) -> int:
        """Cycles the transaction occupies the slave."""
        if request.dirty_eviction and self.service_dirty is not None:
            return self.service_dirty
        if request.sequential:
            return self.service_sequential
        return self.service_random

    def overlap(self, request: SriRequest) -> int:
        """Cycles of the service the issuing core hides (not stalled)."""
        if request.dirty_eviction:
            return 0
        if request.operation is Operation.CODE:
            return self.overlap_code_seq if request.sequential else 0
        if request.write:
            return self.overlap_write
        return self.overlap_data_seq if request.sequential else 0


@dataclasses.dataclass(frozen=True)
class SimTiming:
    """Complete timing configuration of the simulated memory system."""

    devices: dict[Target, DeviceTiming]

    def device(self, target: Target) -> DeviceTiming:
        try:
            return self.devices[target]
        except KeyError as exc:
            raise SimulationError(
                f"no timing configured for target {target.value!r}"
            ) from exc

    def service_time(self, request: SriRequest) -> int:
        """Occupancy of ``request`` on its target."""
        return self.device(request.target).service_time(request)

    def blocking_time(self, request: SriRequest, wait: int = 0) -> int:
        """Core-visible stall of ``request`` after waiting ``wait`` cycles.

        The core stalls for the queueing delay plus the un-hidden part of
        the service: ``wait + service - overlap`` (never negative).
        """
        device = self.device(request.target)
        return max(
            0, wait + device.service_time(request) - device.overlap(request)
        )

    def validate_against(self, profile: LatencyProfile) -> None:
        """Check the soundness invariants linking the simulator to Table 2.

        For every (target, operation) class:

        * isolated (non-sequential) service equals ``l_max`` and the dirty
          service (where defined) equals the bracketed dirty latency, so
          the worst occupancy a contender can impose matches the model's
          ``l^{t,o}`` coefficients;
        * sequential service equals ``l_min``;
        * the *minimum* counted stall across transaction flavours equals
          ``cs^{t,o}``, so Eq. 4's access bounds hold on simulated data.
        """
        from repro.platform.targets import is_valid_pair

        for target, device in self.devices.items():
            timing = profile.timing(target)
            if device.service_random != timing.l_max:
                raise SimulationError(
                    f"{target.value}: random service {device.service_random} "
                    f"!= l_max {timing.l_max}"
                )
            if device.service_sequential != timing.l_min:
                raise SimulationError(
                    f"{target.value}: sequential service "
                    f"{device.service_sequential} != l_min {timing.l_min}"
                )
            if (device.service_dirty is None) != (timing.l_max_dirty is None):
                raise SimulationError(
                    f"{target.value}: dirty service presence mismatch"
                )
            if (
                device.service_dirty is not None
                and device.service_dirty != timing.l_max_dirty
            ):
                raise SimulationError(
                    f"{target.value}: dirty service {device.service_dirty} "
                    f"!= dirty latency {timing.l_max_dirty}"
                )
            for operation in (Operation.CODE, Operation.DATA):
                if not is_valid_pair(target, operation):
                    continue
                expected = timing.cs(operation)
                observed = _min_isolated_stall(device, operation)
                if observed != expected:
                    raise SimulationError(
                        f"{target.value},{operation.value}: minimum counted "
                        f"stall {observed} != cs {expected}"
                    )


def _min_isolated_stall(device: DeviceTiming, operation: Operation) -> int:
    """Minimum stall any single transaction of a class can cost in
    isolation, over the sequential/random/read/write flavours."""
    if operation is Operation.CODE:
        return min(
            device.service_sequential - device.overlap_code_seq,
            device.service_random,
        )
    candidates = [
        device.service_sequential - device.overlap_data_seq,  # streamed read
        device.service_random,  # random read
        device.service_sequential - device.overlap_write,  # buffered write
    ]
    return min(c for c in candidates if c >= 0)


def tc27x_sim_timing() -> SimTiming:
    """The timing configuration matching Table 2 (module docstring table)."""
    pf = DeviceTiming(
        service_sequential=12,
        service_random=16,
        overlap_code_seq=6,
        overlap_data_seq=1,
        overlap_write=1,
    )
    timing = SimTiming(
        devices={
            Target.PF0: pf,
            Target.PF1: pf,
            Target.LMU: DeviceTiming(
                service_sequential=11,
                service_random=11,
                service_dirty=21,
                overlap_code_seq=0,
                overlap_data_seq=0,
                overlap_write=1,
            ),
            Target.DFL: DeviceTiming(
                service_sequential=43,
                service_random=43,
                overlap_data_seq=0,
                overlap_write=1,
            ),
        }
    )
    timing.validate_against(tc27x_latency_profile())
    return timing
