"""Address-trace front-end: caches + memory map → SRI transactions.

The direct workload generators (:mod:`repro.workloads`) emit SRI request
streams straight away, which is fast and gives precise control over the
counter footprint.  This module provides the complementary, more physical
path: feed a raw **address trace** (what an instrumented binary would
produce) through the core's instruction/data caches and the memory map,
and obtain the resulting :class:`~repro.sim.program.TaskProgram` — misses
and uncached accesses become SRI transactions, hits become compute cycles.

This is the path the microbenchmark-driven characterisation uses, and it
doubles as a consistency check: by construction, P$_MISS equals the SRI
code request count exactly when all code is cacheable, reproducing the
Scenario 1/2 counter semantics from first principles.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

from repro.errors import SimulationError
from repro.platform.memory_map import MemoryMap
from repro.platform.targets import Operation, Target
from repro.platform.tc27x import CoreDescriptor
from repro.sim.caches import (
    SetAssociativeCache,
    data_cache,
    data_read_buffer,
    instruction_cache,
)
from repro.sim.program import Step, TaskProgram
from repro.sim.requests import MissKind, SriRequest


@dataclasses.dataclass(frozen=True)
class TraceAccess:
    """One entry of an address trace.

    Attributes:
        address: byte address touched.
        operation: code fetch or data access.
        write: for data accesses, whether it is a store.
        gap: core-local computation cycles *before* this access.
    """

    address: int
    operation: Operation
    write: bool = False
    gap: int = 1

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise SimulationError("trace gaps must be non-negative")
        if self.write and self.operation is Operation.CODE:
            raise SimulationError("code fetches cannot write")


class TraceCompiler:
    """Compiles address traces of one core into task programs.

    Args:
        core: descriptor providing the cache geometries.
        memory_map: address resolution and cacheability.
    """

    def __init__(self, core: CoreDescriptor, memory_map: MemoryMap) -> None:
        self.core = core
        self.memory_map = memory_map
        self.icache: SetAssociativeCache = instruction_cache(core.icache)
        if core.has_data_cache:
            assert core.dcache is not None
            self.dcache: SetAssociativeCache = data_cache(core.dcache)
        else:
            self.dcache = data_read_buffer()
        # Last SRI line fetched per target, to classify prefetch streams.
        self._last_line: dict[tuple[Target, Operation], int] = {}

    def reset(self) -> None:
        """Clear cache contents and stream state between compilations."""
        self.icache.reset()
        self.dcache.reset()
        self._last_line.clear()

    # ------------------------------------------------------------------
    def _sequential(
        self, target: Target, operation: Operation, line: int
    ) -> bool:
        """A transaction is 'sequential' when it continues the previous
        line-stream on the same target — the prefetch-hit condition."""
        key = (target, operation)
        previous = self._last_line.get(key)
        self._last_line[key] = line
        return previous is not None and line == previous + 1

    def _compile_one(self, access: TraceAccess) -> SriRequest | None:
        region = self.memory_map.resolve(access.address)
        if access.operation is Operation.CODE and not self.memory_map.code_region_valid(
            region
        ):
            raise SimulationError(
                f"code fetch from non-code region {region.name!r}"
            )
        if region.is_local:
            return None  # scratchpad: no SRI traffic
        target = region.target
        assert target is not None

        if not region.cacheable:
            line = access.address // 32
            return SriRequest(
                target=target,
                operation=access.operation,
                miss_kind=MissKind.UNCACHED,
                sequential=self._sequential(target, access.operation, line),
                write=access.write,
            )

        cache = (
            self.icache
            if access.operation is Operation.CODE
            else self.dcache
        )
        result = cache.access(access.address, write=access.write)
        if result.hit:
            return None
        if access.operation is Operation.CODE:
            miss_kind = MissKind.ICACHE_MISS
        elif result.evicted_dirty:
            miss_kind = MissKind.DCACHE_MISS_DIRTY
        else:
            miss_kind = MissKind.DCACHE_MISS_CLEAN
        return SriRequest(
            target=target,
            operation=access.operation,
            miss_kind=miss_kind,
            sequential=self._sequential(target, access.operation, result.line),
            write=access.write,
            dirty_eviction=miss_kind is MissKind.DCACHE_MISS_DIRTY,
        )

    def compile(self, name: str, trace: Iterable[TraceAccess]) -> TaskProgram:
        """Compile a trace into a replayable program.

        The compilation happens eagerly (cache state is stateful), so the
        resulting program is a frozen step list — appropriate for the
        trace sizes used in characterisation and tests.
        """
        self.reset()
        steps: list[Step] = []
        pending_gap = 0
        for access in trace:
            pending_gap += access.gap
            request = self._compile_one(access)
            if request is None:
                # Cache hits / scratchpad accesses cost one core cycle.
                pending_gap += 1
                continue
            steps.append((pending_gap, request))
            pending_gap = 0
        if pending_gap:
            steps.append((pending_gap, None))
        frozen = tuple(steps)

        def factory() -> Iterator[Step]:
            return iter(frozen)

        return TaskProgram(name=name, stream_factory=factory)


def sweep_trace(
    base_address: int,
    *,
    count: int,
    stride: int,
    operation: Operation,
    write: bool = False,
    gap: int = 1,
) -> list[TraceAccess]:
    """A linear address sweep — the basic microbenchmark shape.

    With ``stride`` equal to the line size every access misses on a fresh
    line (sequential stream); with ``stride`` spanning multiple sets the
    sweep defeats prefetching (random-ish pattern).
    """
    if count < 0 or stride <= 0:
        raise SimulationError("count must be >= 0 and stride positive")
    return [
        TraceAccess(
            address=base_address + i * stride,
            operation=operation,
            write=write,
            gap=gap,
        )
        for i in range(count)
    ]
