"""The event-driven system simulator: cores, SRI crossbar, memory devices.

This is the testbed substitute (DESIGN.md substitution #1).  It executes
one :class:`~repro.sim.program.TaskProgram` per core against the shared
memory system and produces exactly the observables the paper's methodology
uses: per-core DSU counter readings, execution times, and (beyond real
hardware) ground-truth access profiles and SRI transaction statistics.

Timing semantics:

* each core is in-order with at most one outstanding SRI transaction —
  it computes for ``gap`` cycles, issues, and stalls until served;
* each SRI slave serves one transaction at a time; transactions to
  *different* slaves proceed in parallel (the crossbar property that
  motivates per-target modelling — Section 3.1);
* conflicting requests on one slave are arbitrated **round-robin**, the
  policy the paper assumes for same-priority masters (Section 2);
* the pipeline hides ``overlap`` cycles of a transaction's tail
  (prefetch streams, store buffers): the stall counters are charged
  ``wait + service − overlap`` and the hidden cycles are credited against
  the core's next computation gap, keeping event times monotone.

Soundness hook: with a single contender, a request's queueing delay never
exceeds the service time of the one in-flight conflicting transaction, so
per-request interference is bounded by ``l^{t,o}`` of the contender's
request — the exact alignment assumption of the models.  The validation
suite leans on this.

Two engines produce **byte-identical** results (the equivalence suite
pins this on pickled :class:`SimResult`\\ s):

* ``engine="compiled"`` (default) walks each program's
  :class:`~repro.sim.program.CompiledProgram` arrays with integer
  cursors, pre-resolves every per-request timing/counter lookup per
  distinct request, only heap-schedules transactions on *shared*
  devices (a core alone on a device advances through whole request runs
  closed-form, and an isolation run never touches the heap at all), and
  batches counter/statistics updates into per-request accumulators;
* ``engine="reference"`` is the retained step-generator walk — one
  generator resumption per step, one heap event per step/issue/grant/
  completion — kept as the semantics oracle for the equivalence tests.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterator, Mapping, Sequence

from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.counters.dsu import CounterBank, DebugCounter
from repro.counters.readings import TaskReadings
from repro.errors import SimulationError
from repro.platform.targets import Operation, Target
from repro.sim.dma import DmaAgent, DmaResult
from repro.sim.program import Step, TaskProgram
from repro.sim.requests import SriRequest
from repro.sim.timing import SimTiming, tc27x_sim_timing


@dataclasses.dataclass
class TransactionStats:
    """Aggregate SRI transaction statistics per (target, operation).

    The characterisation harness reads ``min_service``/``max_service`` to
    reproduce Table 2's latency rows (the authors used a debugger/cycle
    counter; we read the crossbar's own log — same information).
    """

    count: int = 0
    min_service: int | None = None
    max_service: int | None = None
    min_blocking: int | None = None
    max_blocking: int | None = None
    total_wait: int = 0

    def record(self, service: int, blocking: int, wait: int) -> None:
        self.count += 1
        self.min_service = (
            service if self.min_service is None else min(self.min_service, service)
        )
        self.max_service = (
            service if self.max_service is None else max(self.max_service, service)
        )
        self.min_blocking = (
            blocking
            if self.min_blocking is None
            else min(self.min_blocking, blocking)
        )
        self.max_blocking = (
            blocking
            if self.max_blocking is None
            else max(self.max_blocking, blocking)
        )
        self.total_wait += wait


@dataclasses.dataclass(frozen=True)
class CoreResult:
    """Everything observed about one core over one run.

    Attributes:
        core: core id the program ran on.
        readings: DSU counter readings including ``ccnt`` (finish time).
        profile: ground-truth per-target access counts.
        transactions: per-(target, operation) transaction statistics.
        total_wait_cycles: cumulative queueing delay due to contention —
            zero in isolation, the "observed interference" in co-runs.
    """

    core: int
    readings: TaskReadings
    profile: AccessProfile
    transactions: Mapping[tuple[Target, Operation], TransactionStats]
    total_wait_cycles: int


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Result of one simulation run (isolation or co-run)."""

    cores: Mapping[int, CoreResult]
    makespan: int
    dma: Mapping[int, DmaResult] = dataclasses.field(default_factory=dict)

    def core(self, index: int) -> CoreResult:
        try:
            return self.cores[index]
        except KeyError as exc:
            raise SimulationError(f"no program ran on core {index}") from exc

    def readings(self, index: int) -> TaskReadings:
        """Counter readings of the task on ``index`` (Table 6 rows)."""
        return self.core(index).readings

    def dma_result(self, master_id: int) -> DmaResult:
        """Observed behaviour of one DMA agent."""
        try:
            return self.dma[master_id]
        except KeyError as exc:
            raise SimulationError(
                f"no DMA agent ran as master {master_id}"
            ) from exc


class _CoreState:
    """Mutable execution state of one core."""

    __slots__ = (
        "core_id",
        "steps",
        "bank",
        "true_counts",
        "pending",
        "issue_time",
        "overlap_credit",
        "finish_time",
        "wait_cycles",
        "name",
    )

    def __init__(self, core_id: int, program: TaskProgram) -> None:
        self.core_id = core_id
        self.name = program.name
        self.steps: Iterator[Step] = program.steps()
        self.bank = CounterBank()
        self.true_counts: dict[tuple[Target, Operation], int] = {}
        self.pending: SriRequest | None = None
        self.issue_time = 0
        self.overlap_credit = 0
        self.finish_time: int | None = None
        self.wait_cycles = 0


#: Blocking-extreme sentinels of the per-request aggregation (plain ints
#: keep the hot-loop comparisons int-vs-int).
_BLOCKING_MAX_SENTINEL = 1 << 62


class _CompiledCoreState:
    """Mutable execution state of one core on the compiled-program path.

    Everything the per-transaction hot path needs is pre-resolved per
    *distinct* request (``*_by_rid`` lists) when the run starts, and
    every observable is accumulated in plain-int per-rid cells; the
    :class:`CounterBank`, ground-truth counts and per-key
    :class:`TransactionStats` are folded out once in :meth:`finalize` —
    in the same key order and with the same values as the reference
    engine's per-event updates (all the folds commute: sums, saturating
    sums, and min/max extremes).
    """

    __slots__ = (
        "core_id",
        "name",
        "requests",
        "gap_list",
        "rid_list",
        "n_requests",
        "final_gap",
        "cursor",
        "service_by_rid",
        "overlap_by_rid",
        "stall_by_rid",
        "miss_by_rid",
        "key_by_rid",
        "solo_by_rid",
        "device_by_rid",
        "acc",
        "agg_count",
        "agg_wait",
        "agg_bmin",
        "agg_bmax",
        "pending_rid",
        "issue_time",
        "overlap_credit",
        "finish_time",
        "wait_cycles",
        "bank",
        "true_counts",
    )

    def __init__(self, core_id: int, program: TaskProgram) -> None:
        compiled = program.compiled()
        self.core_id = core_id
        self.name = program.name
        self.requests = compiled.requests
        self.gap_list = compiled.gap_list
        self.rid_list = compiled.rid_list
        self.n_requests = compiled.n_requests
        self.final_gap = compiled.final_gap
        self.cursor = 0
        self.pending_rid = -1
        self.issue_time = 0
        self.overlap_credit = 0
        self.finish_time: int | None = None
        self.wait_cycles = 0
        self.bank: CounterBank | None = None
        self.true_counts: dict[tuple[Target, Operation], int] | None = None

    def prepare(self, timing: SimTiming, solo_targets: set[Target]) -> None:
        """Resolve per-rid timing/counter tables for this run."""
        requests = self.requests
        self.service_by_rid = [timing.service_time(r) for r in requests]
        self.overlap_by_rid = [
            timing.device(r.target).overlap(r) for r in requests
        ]
        self.stall_by_rid = [r.stall_counter for r in requests]
        self.miss_by_rid = [r.miss_kind.counter for r in requests]
        self.key_by_rid = [(r.target, r.operation) for r in requests]
        self.solo_by_rid = [r.target in solo_targets for r in requests]
        n = len(requests)
        self.acc = {counter: 0 for counter in DebugCounter}
        self.agg_count = [0] * n
        self.agg_wait = [0] * n
        self.agg_bmin = [_BLOCKING_MAX_SENTINEL] * n
        self.agg_bmax = [-1] * n

    def finalize(self) -> dict[tuple[Target, Operation], "TransactionStats"]:
        """Fold the per-rid accumulators into the reference observables.

        Key order: the deduped request table is in first-appearance
        order, so each (target, operation) key is first seen here at the
        same point the reference engine first completed it — the dicts
        iterate identically.
        """
        bank = CounterBank()
        for counter, amount in self.acc.items():
            if amount:
                bank.increment(counter, amount)
        self.bank = bank
        true_counts: dict[tuple[Target, Operation], int] = {}
        stats: dict[tuple[Target, Operation], TransactionStats] = {}
        for rid, key in enumerate(self.key_by_rid):
            count = self.agg_count[rid]
            if not count:
                continue
            true_counts[key] = true_counts.get(key, 0) + count
            entry = stats.get(key)
            if entry is None:
                entry = stats[key] = TransactionStats()
            entry.count += count
            service = self.service_by_rid[rid]
            entry.min_service = (
                service
                if entry.min_service is None
                else min(entry.min_service, service)
            )
            entry.max_service = (
                service
                if entry.max_service is None
                else max(entry.max_service, service)
            )
            bmin = self.agg_bmin[rid]
            bmax = self.agg_bmax[rid]
            entry.min_blocking = (
                bmin
                if entry.min_blocking is None
                else min(entry.min_blocking, bmin)
            )
            entry.max_blocking = (
                bmax
                if entry.max_blocking is None
                else max(entry.max_blocking, bmax)
            )
            entry.total_wait += self.agg_wait[rid]
        self.true_counts = true_counts
        self.wait_cycles = sum(self.agg_wait)
        return stats


class _DmaState:
    """Mutable execution state of one DMA agent.

    ``service`` and ``device`` are resolved once by the compiled engine
    (the agent issues one fixed transaction template, so its timing and
    target never change); the reference engine leaves them unset.
    """

    __slots__ = (
        "agent",
        "remaining",
        "outstanding",
        "deferred",
        "served",
        "finish_time",
        "wait_cycles",
        "service",
        "device",
    )

    def __init__(self, agent: DmaAgent) -> None:
        self.agent = agent
        self.remaining = agent.count
        self.outstanding = 0
        self.deferred = 0  # issue attempts postponed by a full queue
        self.served = 0
        self.finish_time = agent.start_time if agent.count == 0 else None
        self.wait_cycles = 0

    @property
    def core_id(self) -> int:  # uniform master-id accessor for the arbiter
        return self.agent.master_id


#: A queued transaction: (requester state, request, issue time).
_QueueEntry = tuple[object, SriRequest, int]


class _DeviceState:
    """Mutable state of one SRI slave: in-flight transaction and queue.

    ``key`` (heap payload index) and ``grant_pending`` (an arbitration
    event is already queued for this cycle) are used by the compiled
    engine only; the reference engine schedules one grant per enqueue.
    """

    __slots__ = ("target", "current", "queue", "last_served", "key", "grant_pending")

    def __init__(self, target: Target, key: int = -1) -> None:
        self.target = target
        self.current: _QueueEntry | None = None
        self.queue: list[_QueueEntry] = []
        self.last_served = -1
        self.key = key
        self.grant_pending = False


_STEP = 0
_ISSUE = 1
_COMPLETE = 2
_DMA_TICK = 3
# Grants sort after every other event kind at the same timestamp, so all
# same-cycle requests are enqueued before the slave arbitrates — matching
# hardware, where arbitration sees every request raised in the cycle.
_GRANT = 4

#: Supported arbitration policies of the SRI slave interfaces.
ARBITRATION_POLICIES = ("round-robin", "priority")

#: Supported execution engines (see the module docstring).
SIM_ENGINES = ("compiled", "reference")


class SystemSimulator:
    """Executes task programs on the simulated TC27x memory system.

    Args:
        timing: device timing configuration; defaults to the Table 2
            consistent :func:`~repro.sim.timing.tc27x_sim_timing`.
        arbitration: ``"round-robin"`` (the paper's same-priority-class
            assumption, default) or ``"priority"`` — fixed priority with
            round-robin among equals, the SRI's behaviour across priority
            classes.
        priorities: master id → priority class (lower value wins);
            unspecified masters default to class 0.
        engine: ``"compiled"`` (default, walks pre-flattened program
            arrays) or ``"reference"`` (the retained step-generator
            walk).  Both produce byte-identical results; the choice is
            purely a speed/oracle trade (see the module docstring).
    """

    def __init__(
        self,
        timing: SimTiming | None = None,
        *,
        arbitration: str = "round-robin",
        priorities: Mapping[int, int] | None = None,
        engine: str = "compiled",
    ) -> None:
        self.timing = timing or tc27x_sim_timing()
        if arbitration not in ARBITRATION_POLICIES:
            raise SimulationError(
                f"unknown arbitration policy {arbitration!r}; "
                f"expected one of {ARBITRATION_POLICIES}"
            )
        if engine not in SIM_ENGINES:
            raise SimulationError(
                f"unknown simulation engine {engine!r}; "
                f"expected one of {SIM_ENGINES}"
            )
        self.arbitration = arbitration
        self.priorities = dict(priorities or {})
        self.engine = engine

    def _priority(self, master_id: int) -> int:
        return self.priorities.get(master_id, 0)

    # ------------------------------------------------------------------
    def run(
        self,
        programs: Mapping[int, TaskProgram],
        dma_agents: Sequence[DmaAgent] = (),
    ) -> SimResult:
        """Run one program per core (plus optional DMA agents) to completion.

        Args:
            programs: mapping of core id to program.  A single entry is an
                isolation run; multiple entries co-run and contend on the
                SRI.
            dma_agents: additional SRI masters issuing fixed-rate traffic;
                their ids must not collide with core ids.

        Returns:
            A :class:`SimResult` with per-core (and per-agent) observables.
        """
        if self.engine == "reference":
            return self._run_reference(programs, dma_agents)
        return self._run_compiled(programs, dma_agents)

    # ------------------------------------------------------------------
    def _run_compiled(
        self,
        programs: Mapping[int, TaskProgram],
        dma_agents: Sequence[DmaAgent] = (),
    ) -> SimResult:
        """The compiled-program engine (see the module docstring).

        Equivalence to :meth:`_run_reference` rests on four facts, each
        pinned by the equivalence suite:

        * merging a run of gap-only steps into the next request's gap is
          timing-exact (``max(0, G - credit)`` elapsed, ``max(0,
          credit - G)`` credit left — the step-by-step recurrence's
          closed form);
        * a transaction on a device with a single master never waits
          (the issuing master is single-outstanding), so its completion
          is ``issue + service`` and it can be processed inline without
          touching the heap or the device state nobody else observes;
        * scheduling an arbitration event only when the device is idle
          drops exactly the grant events that were no-ops (a busy
          device's next grant happens inline at its completion, in both
          engines), and event *sequence numbers* only break heap ties —
          same-cycle issues still all enqueue before the grant fires;
        * every observable aggregation (counters, stats extremes, wait
          sums, ground-truth counts) commutes, so batching them per
          distinct request changes no final value, and the deduped
          request table's first-appearance order reproduces every
          observable dict's insertion order.
        """
        if not programs:
            raise SimulationError("no programs to run")
        timing = self.timing
        cores = {
            core_id: _CompiledCoreState(core_id, program)
            for core_id, program in programs.items()
        }
        dma: dict[int, _DmaState] = {}
        for agent in dma_agents:
            if agent.master_id in cores or agent.master_id in dma:
                raise SimulationError(
                    f"duplicate SRI master id {agent.master_id}"
                )
            dma[agent.master_id] = _DmaState(agent)

        # Master census: a device with a single master needs no
        # arbitration — its transactions are served the cycle they
        # arrive and can bypass the event loop entirely.
        masters_per_target = {target: 0 for target in Target}
        for state in cores.values():
            for target in {r.target for r in state.requests}:
                masters_per_target[target] += 1
        for dma_state in dma.values():
            masters_per_target[dma_state.agent.request.target] += 1
        solo_targets = {
            target
            for target, count in masters_per_target.items()
            if count == 1
        }

        targets = list(Target)
        device_list = [
            _DeviceState(target, key) for key, target in enumerate(targets)
        ]
        device_by_target = {
            device.target: device for device in device_list
        }
        for state in cores.values():
            state.prepare(timing, solo_targets)
            state.device_by_rid = [
                device_by_target[r.target] for r in state.requests
            ]
        for dma_state in dma.values():
            dma_state.service = timing.service_time(dma_state.agent.request)
            dma_state.device = device_by_target[
                dma_state.agent.request.target
            ]

        heap: list[tuple[int, int, int, int]] = []  # (time, kind, seq, id)
        seq = 0
        for core_id in sorted(cores):
            heapq.heappush(heap, (0, _STEP, seq, core_id))
            seq += 1
        for master_id, dma_state in sorted(dma.items()):
            agent = dma_state.agent
            if (
                agent.request.target in solo_targets
                and agent.period >= dma_state.service
            ):
                # Uncontended fixed-rate agent: the whole run is
                # arithmetic (no queueing, no deferrals).
                dma_state.served = agent.count
                dma_state.remaining = 0
                dma_state.finish_time = agent.uncontended_result(
                    dma_state.service
                ).finish_time
            elif dma_state.remaining:
                heapq.heappush(
                    heap, (agent.start_time, _DMA_TICK, seq, master_id)
                )
                seq += 1

        all_ids = list(cores) + list(dma)
        rr_modulus = max(all_ids) + 2  # cyclic distance for round-robin
        use_priority = self.arbitration == "priority"
        priority_of = {
            master_id: self._priority(master_id) for master_id in all_ids
        }

        def advance(state: _CompiledCoreState, now: int) -> None:
            """Walk the compiled arrays from the core's cursor.

            Consecutive solo-device transactions are executed inline
            (zero wait, completion at ``issue + service``); the walk
            only stops to heap-schedule a shared-device issue, or to
            finish the program.
            """
            nonlocal seq
            cursor = state.cursor
            n = state.n_requests
            gap_list = state.gap_list
            rid_list = state.rid_list
            solo = state.solo_by_rid
            services = state.service_by_rid
            overlaps = state.overlap_by_rid
            misses = state.miss_by_rid
            stalls = state.stall_by_rid
            acc = state.acc
            agg_count = state.agg_count
            agg_bmin = state.agg_bmin
            agg_bmax = state.agg_bmax
            credit = state.overlap_credit
            while True:
                if cursor >= n:
                    state.cursor = cursor
                    state.overlap_credit = 0
                    trailing = state.final_gap - credit
                    state.finish_time = (
                        now + trailing if trailing > 0 else now
                    )
                    return
                gap = gap_list[cursor]
                if credit:
                    gap -= credit
                    if gap < 0:
                        credit = -gap
                        gap = 0
                    else:
                        credit = 0
                when = now + gap
                rid = rid_list[cursor]
                cursor += 1
                if solo[rid]:
                    miss = misses[rid]
                    if miss is not None:
                        acc[miss] += 1
                    service = services[rid]
                    overlap = overlaps[rid]
                    blocking = service - overlap
                    if blocking < 0:
                        blocking = 0
                    elif blocking:
                        acc[stalls[rid]] += blocking
                    agg_count[rid] += 1
                    if blocking < agg_bmin[rid]:
                        agg_bmin[rid] = blocking
                    if blocking > agg_bmax[rid]:
                        agg_bmax[rid] = blocking
                    now = when + service
                    credit = overlap
                    continue
                state.cursor = cursor
                state.overlap_credit = credit
                state.pending_rid = rid
                state.issue_time = when
                heapq.heappush(heap, (when, _ISSUE, seq, state.core_id))
                seq += 1
                return

        def grant(device: _DeviceState, now: int) -> None:
            """Start serving the next queued request (same selection rule
            as the reference engine's arbitration — see its docstring)."""
            nonlocal seq
            if device.current is not None:
                return
            queue = device.queue
            if not queue:
                return
            chosen = 0
            if len(queue) > 1:
                last_served = device.last_served
                best_priority = best_distance = -1
                for index, entry in enumerate(queue):
                    master_id: int = entry[0].core_id  # type: ignore[attr-defined]
                    distance = (master_id - last_served - 1) % rr_modulus
                    if use_priority:
                        priority = priority_of[master_id]
                        if best_distance < 0 or (
                            (priority, distance)
                            < (best_priority, best_distance)
                        ):
                            best_priority = priority
                            best_distance = distance
                            chosen = index
                    elif best_distance < 0 or distance < best_distance:
                        best_distance = distance
                        chosen = index
            entry = queue.pop(chosen)
            device.current = entry
            device.last_served = entry[0].core_id  # type: ignore[attr-defined]
            heapq.heappush(
                heap, (now + entry[3], _COMPLETE, seq, device.key)
            )
            seq += 1

        def schedule_grant(device: _DeviceState, now: int) -> None:
            """Queue one arbitration event unless the device is busy (its
            completion grants inline) or one is already queued."""
            nonlocal seq
            if device.current is None and not device.grant_pending:
                device.grant_pending = True
                heapq.heappush(heap, (now, _GRANT, seq, device.key))
                seq += 1

        def dma_issue(state: _DmaState, now: int) -> None:
            """Put one DMA transaction on the wire."""
            state.outstanding += 1
            state.remaining -= 1
            device = state.device
            device.queue.append((state, -1, now, state.service))
            schedule_grant(device, now)

        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            if kind == _STEP:
                advance(cores[payload], now)
            elif kind == _GRANT:
                device = device_list[payload]
                device.grant_pending = False
                grant(device, now)
            elif kind == _ISSUE:
                state = cores[payload]
                rid = state.pending_rid
                miss = state.miss_by_rid[rid]
                if miss is not None:
                    state.acc[miss] += 1
                device = state.device_by_rid[rid]
                device.queue.append(
                    (state, rid, state.issue_time, state.service_by_rid[rid])
                )
                schedule_grant(device, now)
            elif kind == _DMA_TICK:
                agent_state = dma[payload]
                if agent_state.remaining > 0:
                    if agent_state.outstanding < agent_state.agent.queue_depth:
                        dma_issue(agent_state, now)
                    else:
                        agent_state.deferred += 1
                    if agent_state.remaining > 0:
                        heapq.heappush(
                            heap,
                            (
                                now + agent_state.agent.period,
                                _DMA_TICK,
                                seq,
                                payload,
                            ),
                        )
                        seq += 1
            else:  # _COMPLETE
                device = device_list[payload]
                entry = device.current
                assert entry is not None
                requester, rid, issue_time, service = entry
                device.current = None
                wait = now - service - issue_time
                if wait < 0:
                    raise SimulationError("causality violation in simulator")
                if rid < 0:  # DMA master
                    requester.outstanding -= 1
                    requester.served += 1
                    requester.wait_cycles += wait
                    if requester.deferred and requester.remaining:
                        requester.deferred -= 1
                        dma_issue(requester, now)
                    if (
                        requester.remaining == 0
                        and requester.outstanding == 0
                    ):
                        requester.finish_time = now
                else:
                    state = requester
                    overlap = state.overlap_by_rid[rid]
                    blocking = now - issue_time - overlap
                    if blocking < 0:
                        blocking = 0
                    elif blocking:
                        state.acc[state.stall_by_rid[rid]] += blocking
                    state.overlap_credit = overlap
                    state.agg_count[rid] += 1
                    state.agg_wait[rid] += wait
                    if blocking < state.agg_bmin[rid]:
                        state.agg_bmin[rid] = blocking
                    if blocking > state.agg_bmax[rid]:
                        state.agg_bmax[rid] = blocking
                    state.pending_rid = -1
                    advance(state, now)
                grant(device, now)

        stats = {
            core_id: state.finalize() for core_id, state in cores.items()
        }
        return self._collect(cores, stats, dma)

    # ------------------------------------------------------------------
    def _run_reference(
        self,
        programs: Mapping[int, TaskProgram],
        dma_agents: Sequence[DmaAgent] = (),
    ) -> SimResult:
        """The retained step-generator engine — the semantics oracle the
        compiled engine is pinned byte-identical against."""
        if not programs:
            raise SimulationError("no programs to run")
        cores = {
            core_id: _CoreState(core_id, program)
            for core_id, program in programs.items()
        }
        dma = {}
        for agent in dma_agents:
            if agent.master_id in cores or agent.master_id in dma:
                raise SimulationError(
                    f"duplicate SRI master id {agent.master_id}"
                )
            dma[agent.master_id] = _DmaState(agent)
        devices = {target: _DeviceState(target) for target in Target}
        stats: dict[int, dict[tuple[Target, Operation], TransactionStats]] = {
            core_id: {} for core_id in cores
        }

        heap: list[tuple[int, int, int, int]] = []  # (time, kind, seq, id)
        seq = 0
        for core_id in sorted(cores):
            heapq.heappush(heap, (0, _STEP, seq, core_id))
            seq += 1
        for master_id, state in sorted(dma.items()):
            if state.remaining:
                heapq.heappush(
                    heap, (state.agent.start_time, _DMA_TICK, seq, master_id)
                )
                seq += 1

        all_ids = list(cores) + list(dma)
        rr_modulus = max(all_ids) + 2  # cyclic distance for round-robin
        device_keys = {target: i for i, target in enumerate(Target)}
        key_devices = {i: target for target, i in device_keys.items()}
        # Arbitration constants, hoisted out of the per-grant hot path:
        # every master's priority class is fixed for the run, and the
        # policy check reduces to one bool instead of a string compare
        # (and a key-closure allocation) per grant.
        use_priority = self.arbitration == "priority"
        priority_of = {
            master_id: self._priority(master_id) for master_id in all_ids
        }

        def advance(state: _CoreState, now: int) -> None:
            """Fetch the core's next step and schedule its issue/idle end."""
            nonlocal seq
            try:
                gap, request = next(state.steps)
            except StopIteration:
                state.finish_time = now
                return
            if gap < 0:
                raise SimulationError(
                    f"{state.name!r}: negative gap in program"
                )
            # Overlap credit: computation hidden under the previous
            # transaction's tail shortens this gap.
            effective_gap = max(0, gap - state.overlap_credit)
            state.overlap_credit = max(0, state.overlap_credit - gap)
            when = now + effective_gap
            if request is None:
                heapq.heappush(heap, (when, _STEP, seq, state.core_id))
            else:
                state.pending = request
                state.issue_time = when
                heapq.heappush(heap, (when, _ISSUE, seq, state.core_id))
            seq += 1

        def grant(device: _DeviceState, now: int) -> None:
            """Start serving the next queued request.

            Selection: highest priority class first (under ``"priority"``
            arbitration), round-robin distance from the last served master
            within a class.  Ties keep the earliest-queued entry (strict
            ``<`` mirrors ``min()``'s first-minimum rule), so the chosen
            grants — and hence the traces — are identical to the former
            closure-based ``min(range(len(queue)), key=...)`` selection;
            the inline scan just stops allocating a closure and re-keying
            the arbitration policy on every grant.
            """
            nonlocal seq
            queue = device.queue
            if device.current is not None or not queue:
                return

            chosen = 0
            if len(queue) > 1:
                last_served = device.last_served
                best_priority = best_distance = -1
                for index, entry in enumerate(queue):
                    master_id: int = entry[0].core_id  # type: ignore[attr-defined]
                    distance = (master_id - last_served - 1) % rr_modulus
                    if use_priority:
                        priority = priority_of[master_id]
                        if best_distance < 0 or (
                            (priority, distance)
                            < (best_priority, best_distance)
                        ):
                            best_priority = priority
                            best_distance = distance
                            chosen = index
                    elif best_distance < 0 or distance < best_distance:
                        best_distance = distance
                        chosen = index

            entry = queue.pop(chosen)
            device.current = entry
            device.last_served = entry[0].core_id  # type: ignore[attr-defined]
            completion = now + self.timing.service_time(entry[1])
            heapq.heappush(
                heap,
                (completion, _COMPLETE, seq, device_keys[entry[1].target]),
            )
            seq += 1

        def schedule_grant(target: Target, now: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (now, _GRANT, seq, device_keys[target]))
            seq += 1

        def dma_issue(state: _DmaState, now: int) -> None:
            """Put one DMA transaction on the wire."""
            state.outstanding += 1
            state.remaining -= 1
            device = devices[state.agent.request.target]
            device.queue.append((state, state.agent.request, now))
            schedule_grant(state.agent.request.target, now)

        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            if kind == _STEP:
                advance(cores[payload], now)
            elif kind == _GRANT:
                grant(devices[key_devices[payload]], now)
            elif kind == _ISSUE:
                state = cores[payload]
                request = state.pending
                assert request is not None
                counter = request.miss_kind.counter
                if counter is not None:
                    state.bank.increment(counter)
                device = devices[request.target]
                device.queue.append((state, request, state.issue_time))
                schedule_grant(request.target, now)
            elif kind == _DMA_TICK:
                agent_state = dma[payload]
                if agent_state.remaining > 0:
                    if agent_state.outstanding < agent_state.agent.queue_depth:
                        dma_issue(agent_state, now)
                    else:
                        agent_state.deferred += 1
                    if agent_state.remaining > 0:
                        heapq.heappush(
                            heap,
                            (
                                now + agent_state.agent.period,
                                _DMA_TICK,
                                seq,
                                payload,
                            ),
                        )
                        seq += 1
            else:  # _COMPLETE
                device = devices[key_devices[payload]]
                assert device.current is not None
                requester, request, issue_time = device.current
                device.current = None
                service = self.timing.service_time(request)
                wait = now - service - issue_time
                if wait < 0:
                    raise SimulationError("causality violation in simulator")
                if isinstance(requester, _DmaState):
                    requester.outstanding -= 1
                    requester.served += 1
                    requester.wait_cycles += wait
                    if requester.deferred and requester.remaining:
                        requester.deferred -= 1
                        dma_issue(requester, now)
                    if (
                        requester.remaining == 0
                        and requester.outstanding == 0
                    ):
                        requester.finish_time = now
                else:
                    state = requester
                    overlap = self.timing.device(request.target).overlap(
                        request
                    )
                    blocking = max(0, now - issue_time - overlap)
                    state.bank.increment(request.stall_counter, blocking)
                    state.overlap_credit = overlap
                    state.wait_cycles += wait
                    key_ = (request.target, request.operation)
                    state.true_counts[key_] = (
                        state.true_counts.get(key_, 0) + 1
                    )
                    stats[state.core_id].setdefault(
                        key_, TransactionStats()
                    ).record(service, blocking, wait)
                    state.pending = None
                    advance(state, now)
                grant(device, now)

        return self._collect(cores, stats, dma)

    # ------------------------------------------------------------------
    def _collect(
        self,
        cores: dict[int, _CoreState],
        stats: dict[int, dict[tuple[Target, Operation], TransactionStats]],
        dma: dict[int, _DmaState] | None = None,
    ) -> SimResult:
        dma_results: dict[int, DmaResult] = {}
        for master_id, state in (dma or {}).items():
            if state.finish_time is None:
                raise SimulationError(
                    f"DMA agent {state.agent.label!r} never finished"
                )
            dma_results[master_id] = DmaResult(
                master_id=master_id,
                served=state.served,
                finish_time=state.finish_time,
                total_wait_cycles=state.wait_cycles,
            )
        results: dict[int, CoreResult] = {}
        makespan = max(
            (r.finish_time for r in dma_results.values()), default=0
        )
        for core_id, state in cores.items():
            if state.finish_time is None:
                raise SimulationError(
                    f"core {core_id} ({state.name!r}) never finished"
                )
            makespan = max(makespan, state.finish_time)
            snapshot = state.bank.snapshot()
            snapshot[DebugCounter.CCNT] = state.finish_time
            readings = TaskReadings.from_bank_snapshot(
                state.name,
                snapshot,
                ccnt=state.finish_time if state.finish_time > 0 else None,
            )
            profile = profile_from_pairs(
                state.name,
                (
                    (target, operation, count)
                    for (target, operation), count in state.true_counts.items()
                ),
            )
            results[core_id] = CoreResult(
                core=core_id,
                readings=readings,
                profile=profile,
                transactions=stats[core_id],
                total_wait_cycles=state.wait_cycles,
            )
        return SimResult(cores=results, makespan=makespan, dma=dma_results)


def run_isolation(
    program: TaskProgram,
    *,
    core: int = 1,
    timing: SimTiming | None = None,
    engine: str = "compiled",
) -> CoreResult:
    """Run one task alone (the paper's measurement protocol, step 1)."""
    sim = SystemSimulator(timing, engine=engine)
    return sim.run({core: program}).core(core)


def run_corun(
    programs: Mapping[int, TaskProgram],
    *,
    timing: SimTiming | None = None,
    engine: str = "compiled",
) -> SimResult:
    """Co-run tasks on different cores, contending on the SRI."""
    if len(programs) < 2:
        raise SimulationError("a co-run needs at least two programs")
    return SystemSimulator(timing, engine=engine).run(programs)
