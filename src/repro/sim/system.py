"""The event-driven system simulator: cores, SRI crossbar, memory devices.

This is the testbed substitute (DESIGN.md substitution #1).  It executes
one :class:`~repro.sim.program.TaskProgram` per core against the shared
memory system and produces exactly the observables the paper's methodology
uses: per-core DSU counter readings, execution times, and (beyond real
hardware) ground-truth access profiles and SRI transaction statistics.

Timing semantics:

* each core is in-order with at most one outstanding SRI transaction —
  it computes for ``gap`` cycles, issues, and stalls until served;
* each SRI slave serves one transaction at a time; transactions to
  *different* slaves proceed in parallel (the crossbar property that
  motivates per-target modelling — Section 3.1);
* conflicting requests on one slave are arbitrated **round-robin**, the
  policy the paper assumes for same-priority masters (Section 2);
* the pipeline hides ``overlap`` cycles of a transaction's tail
  (prefetch streams, store buffers): the stall counters are charged
  ``wait + service − overlap`` and the hidden cycles are credited against
  the core's next computation gap, keeping event times monotone.

Soundness hook: with a single contender, a request's queueing delay never
exceeds the service time of the one in-flight conflicting transaction, so
per-request interference is bounded by ``l^{t,o}`` of the contender's
request — the exact alignment assumption of the models.  The validation
suite leans on this.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterator, Mapping, Sequence

from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.counters.dsu import CounterBank, DebugCounter
from repro.counters.readings import TaskReadings
from repro.errors import SimulationError
from repro.platform.targets import Operation, Target
from repro.sim.dma import DmaAgent, DmaResult
from repro.sim.program import Step, TaskProgram
from repro.sim.requests import SriRequest
from repro.sim.timing import SimTiming, tc27x_sim_timing


@dataclasses.dataclass
class TransactionStats:
    """Aggregate SRI transaction statistics per (target, operation).

    The characterisation harness reads ``min_service``/``max_service`` to
    reproduce Table 2's latency rows (the authors used a debugger/cycle
    counter; we read the crossbar's own log — same information).
    """

    count: int = 0
    min_service: int | None = None
    max_service: int | None = None
    min_blocking: int | None = None
    max_blocking: int | None = None
    total_wait: int = 0

    def record(self, service: int, blocking: int, wait: int) -> None:
        self.count += 1
        self.min_service = (
            service if self.min_service is None else min(self.min_service, service)
        )
        self.max_service = (
            service if self.max_service is None else max(self.max_service, service)
        )
        self.min_blocking = (
            blocking
            if self.min_blocking is None
            else min(self.min_blocking, blocking)
        )
        self.max_blocking = (
            blocking
            if self.max_blocking is None
            else max(self.max_blocking, blocking)
        )
        self.total_wait += wait


@dataclasses.dataclass(frozen=True)
class CoreResult:
    """Everything observed about one core over one run.

    Attributes:
        core: core id the program ran on.
        readings: DSU counter readings including ``ccnt`` (finish time).
        profile: ground-truth per-target access counts.
        transactions: per-(target, operation) transaction statistics.
        total_wait_cycles: cumulative queueing delay due to contention —
            zero in isolation, the "observed interference" in co-runs.
    """

    core: int
    readings: TaskReadings
    profile: AccessProfile
    transactions: Mapping[tuple[Target, Operation], TransactionStats]
    total_wait_cycles: int


@dataclasses.dataclass(frozen=True)
class SimResult:
    """Result of one simulation run (isolation or co-run)."""

    cores: Mapping[int, CoreResult]
    makespan: int
    dma: Mapping[int, DmaResult] = dataclasses.field(default_factory=dict)

    def core(self, index: int) -> CoreResult:
        try:
            return self.cores[index]
        except KeyError as exc:
            raise SimulationError(f"no program ran on core {index}") from exc

    def readings(self, index: int) -> TaskReadings:
        """Counter readings of the task on ``index`` (Table 6 rows)."""
        return self.core(index).readings

    def dma_result(self, master_id: int) -> DmaResult:
        """Observed behaviour of one DMA agent."""
        try:
            return self.dma[master_id]
        except KeyError as exc:
            raise SimulationError(
                f"no DMA agent ran as master {master_id}"
            ) from exc


class _CoreState:
    """Mutable execution state of one core."""

    __slots__ = (
        "core_id",
        "steps",
        "bank",
        "true_counts",
        "pending",
        "issue_time",
        "overlap_credit",
        "finish_time",
        "wait_cycles",
        "name",
    )

    def __init__(self, core_id: int, program: TaskProgram) -> None:
        self.core_id = core_id
        self.name = program.name
        self.steps: Iterator[Step] = program.steps()
        self.bank = CounterBank()
        self.true_counts: dict[tuple[Target, Operation], int] = {}
        self.pending: SriRequest | None = None
        self.issue_time = 0
        self.overlap_credit = 0
        self.finish_time: int | None = None
        self.wait_cycles = 0


class _DmaState:
    """Mutable execution state of one DMA agent."""

    __slots__ = (
        "agent",
        "remaining",
        "outstanding",
        "deferred",
        "served",
        "finish_time",
        "wait_cycles",
    )

    def __init__(self, agent: DmaAgent) -> None:
        self.agent = agent
        self.remaining = agent.count
        self.outstanding = 0
        self.deferred = 0  # issue attempts postponed by a full queue
        self.served = 0
        self.finish_time = agent.start_time if agent.count == 0 else None
        self.wait_cycles = 0

    @property
    def core_id(self) -> int:  # uniform master-id accessor for the arbiter
        return self.agent.master_id


#: A queued transaction: (requester state, request, issue time).
_QueueEntry = tuple[object, SriRequest, int]


class _DeviceState:
    """Mutable state of one SRI slave: in-flight transaction and queue."""

    __slots__ = ("target", "current", "queue", "last_served")

    def __init__(self, target: Target) -> None:
        self.target = target
        self.current: _QueueEntry | None = None
        self.queue: list[_QueueEntry] = []
        self.last_served = -1


_STEP = 0
_ISSUE = 1
_COMPLETE = 2
_DMA_TICK = 3
# Grants sort after every other event kind at the same timestamp, so all
# same-cycle requests are enqueued before the slave arbitrates — matching
# hardware, where arbitration sees every request raised in the cycle.
_GRANT = 4

#: Supported arbitration policies of the SRI slave interfaces.
ARBITRATION_POLICIES = ("round-robin", "priority")


class SystemSimulator:
    """Executes task programs on the simulated TC27x memory system.

    Args:
        timing: device timing configuration; defaults to the Table 2
            consistent :func:`~repro.sim.timing.tc27x_sim_timing`.
        arbitration: ``"round-robin"`` (the paper's same-priority-class
            assumption, default) or ``"priority"`` — fixed priority with
            round-robin among equals, the SRI's behaviour across priority
            classes.
        priorities: master id → priority class (lower value wins);
            unspecified masters default to class 0.
    """

    def __init__(
        self,
        timing: SimTiming | None = None,
        *,
        arbitration: str = "round-robin",
        priorities: Mapping[int, int] | None = None,
    ) -> None:
        self.timing = timing or tc27x_sim_timing()
        if arbitration not in ARBITRATION_POLICIES:
            raise SimulationError(
                f"unknown arbitration policy {arbitration!r}; "
                f"expected one of {ARBITRATION_POLICIES}"
            )
        self.arbitration = arbitration
        self.priorities = dict(priorities or {})

    def _priority(self, master_id: int) -> int:
        return self.priorities.get(master_id, 0)

    # ------------------------------------------------------------------
    def run(
        self,
        programs: Mapping[int, TaskProgram],
        dma_agents: Sequence[DmaAgent] = (),
    ) -> SimResult:
        """Run one program per core (plus optional DMA agents) to completion.

        Args:
            programs: mapping of core id to program.  A single entry is an
                isolation run; multiple entries co-run and contend on the
                SRI.
            dma_agents: additional SRI masters issuing fixed-rate traffic;
                their ids must not collide with core ids.

        Returns:
            A :class:`SimResult` with per-core (and per-agent) observables.
        """
        if not programs:
            raise SimulationError("no programs to run")
        cores = {
            core_id: _CoreState(core_id, program)
            for core_id, program in programs.items()
        }
        dma = {}
        for agent in dma_agents:
            if agent.master_id in cores or agent.master_id in dma:
                raise SimulationError(
                    f"duplicate SRI master id {agent.master_id}"
                )
            dma[agent.master_id] = _DmaState(agent)
        devices = {target: _DeviceState(target) for target in Target}
        stats: dict[int, dict[tuple[Target, Operation], TransactionStats]] = {
            core_id: {} for core_id in cores
        }

        heap: list[tuple[int, int, int, int]] = []  # (time, kind, seq, id)
        seq = 0
        for core_id in sorted(cores):
            heapq.heappush(heap, (0, _STEP, seq, core_id))
            seq += 1
        for master_id, state in sorted(dma.items()):
            if state.remaining:
                heapq.heappush(
                    heap, (state.agent.start_time, _DMA_TICK, seq, master_id)
                )
                seq += 1

        all_ids = list(cores) + list(dma)
        rr_modulus = max(all_ids) + 2  # cyclic distance for round-robin
        device_keys = {target: i for i, target in enumerate(Target)}
        key_devices = {i: target for target, i in device_keys.items()}
        # Arbitration constants, hoisted out of the per-grant hot path:
        # every master's priority class is fixed for the run, and the
        # policy check reduces to one bool instead of a string compare
        # (and a key-closure allocation) per grant.
        use_priority = self.arbitration == "priority"
        priority_of = {
            master_id: self._priority(master_id) for master_id in all_ids
        }

        def advance(state: _CoreState, now: int) -> None:
            """Fetch the core's next step and schedule its issue/idle end."""
            nonlocal seq
            try:
                gap, request = next(state.steps)
            except StopIteration:
                state.finish_time = now
                return
            if gap < 0:
                raise SimulationError(
                    f"{state.name!r}: negative gap in program"
                )
            # Overlap credit: computation hidden under the previous
            # transaction's tail shortens this gap.
            effective_gap = max(0, gap - state.overlap_credit)
            state.overlap_credit = max(0, state.overlap_credit - gap)
            when = now + effective_gap
            if request is None:
                heapq.heappush(heap, (when, _STEP, seq, state.core_id))
            else:
                state.pending = request
                state.issue_time = when
                heapq.heappush(heap, (when, _ISSUE, seq, state.core_id))
            seq += 1

        def grant(device: _DeviceState, now: int) -> None:
            """Start serving the next queued request.

            Selection: highest priority class first (under ``"priority"``
            arbitration), round-robin distance from the last served master
            within a class.  Ties keep the earliest-queued entry (strict
            ``<`` mirrors ``min()``'s first-minimum rule), so the chosen
            grants — and hence the traces — are identical to the former
            closure-based ``min(range(len(queue)), key=...)`` selection;
            the inline scan just stops allocating a closure and re-keying
            the arbitration policy on every grant.
            """
            nonlocal seq
            queue = device.queue
            if device.current is not None or not queue:
                return

            chosen = 0
            if len(queue) > 1:
                last_served = device.last_served
                best_priority = best_distance = -1
                for index, entry in enumerate(queue):
                    master_id: int = entry[0].core_id  # type: ignore[attr-defined]
                    distance = (master_id - last_served - 1) % rr_modulus
                    if use_priority:
                        priority = priority_of[master_id]
                        if best_distance < 0 or (
                            (priority, distance)
                            < (best_priority, best_distance)
                        ):
                            best_priority = priority
                            best_distance = distance
                            chosen = index
                    elif best_distance < 0 or distance < best_distance:
                        best_distance = distance
                        chosen = index

            entry = queue.pop(chosen)
            device.current = entry
            device.last_served = entry[0].core_id  # type: ignore[attr-defined]
            completion = now + self.timing.service_time(entry[1])
            heapq.heappush(
                heap,
                (completion, _COMPLETE, seq, device_keys[entry[1].target]),
            )
            seq += 1

        def schedule_grant(target: Target, now: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (now, _GRANT, seq, device_keys[target]))
            seq += 1

        def dma_issue(state: _DmaState, now: int) -> None:
            """Put one DMA transaction on the wire."""
            state.outstanding += 1
            state.remaining -= 1
            device = devices[state.agent.request.target]
            device.queue.append((state, state.agent.request, now))
            schedule_grant(state.agent.request.target, now)

        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            if kind == _STEP:
                advance(cores[payload], now)
            elif kind == _GRANT:
                grant(devices[key_devices[payload]], now)
            elif kind == _ISSUE:
                state = cores[payload]
                request = state.pending
                assert request is not None
                counter = request.miss_kind.counter
                if counter is not None:
                    state.bank.increment(counter)
                device = devices[request.target]
                device.queue.append((state, request, state.issue_time))
                schedule_grant(request.target, now)
            elif kind == _DMA_TICK:
                agent_state = dma[payload]
                if agent_state.remaining > 0:
                    if agent_state.outstanding < agent_state.agent.queue_depth:
                        dma_issue(agent_state, now)
                    else:
                        agent_state.deferred += 1
                    if agent_state.remaining > 0:
                        heapq.heappush(
                            heap,
                            (
                                now + agent_state.agent.period,
                                _DMA_TICK,
                                seq,
                                payload,
                            ),
                        )
                        seq += 1
            else:  # _COMPLETE
                device = devices[key_devices[payload]]
                assert device.current is not None
                requester, request, issue_time = device.current
                device.current = None
                service = self.timing.service_time(request)
                wait = now - service - issue_time
                if wait < 0:
                    raise SimulationError("causality violation in simulator")
                if isinstance(requester, _DmaState):
                    requester.outstanding -= 1
                    requester.served += 1
                    requester.wait_cycles += wait
                    if requester.deferred and requester.remaining:
                        requester.deferred -= 1
                        dma_issue(requester, now)
                    if (
                        requester.remaining == 0
                        and requester.outstanding == 0
                    ):
                        requester.finish_time = now
                else:
                    state = requester
                    overlap = self.timing.device(request.target).overlap(
                        request
                    )
                    blocking = max(0, now - issue_time - overlap)
                    state.bank.increment(request.stall_counter, blocking)
                    state.overlap_credit = overlap
                    state.wait_cycles += wait
                    key_ = (request.target, request.operation)
                    state.true_counts[key_] = (
                        state.true_counts.get(key_, 0) + 1
                    )
                    stats[state.core_id].setdefault(
                        key_, TransactionStats()
                    ).record(service, blocking, wait)
                    state.pending = None
                    advance(state, now)
                grant(device, now)

        return self._collect(cores, stats, dma)

    # ------------------------------------------------------------------
    def _collect(
        self,
        cores: dict[int, _CoreState],
        stats: dict[int, dict[tuple[Target, Operation], TransactionStats]],
        dma: dict[int, _DmaState] | None = None,
    ) -> SimResult:
        dma_results: dict[int, DmaResult] = {}
        for master_id, state in (dma or {}).items():
            if state.finish_time is None:
                raise SimulationError(
                    f"DMA agent {state.agent.label!r} never finished"
                )
            dma_results[master_id] = DmaResult(
                master_id=master_id,
                served=state.served,
                finish_time=state.finish_time,
                total_wait_cycles=state.wait_cycles,
            )
        results: dict[int, CoreResult] = {}
        makespan = max(
            (r.finish_time for r in dma_results.values()), default=0
        )
        for core_id, state in cores.items():
            if state.finish_time is None:
                raise SimulationError(
                    f"core {core_id} ({state.name!r}) never finished"
                )
            makespan = max(makespan, state.finish_time)
            snapshot = state.bank.snapshot()
            snapshot[DebugCounter.CCNT] = state.finish_time
            readings = TaskReadings.from_bank_snapshot(
                state.name,
                snapshot,
                ccnt=state.finish_time if state.finish_time > 0 else None,
            )
            profile = profile_from_pairs(
                state.name,
                (
                    (target, operation, count)
                    for (target, operation), count in state.true_counts.items()
                ),
            )
            results[core_id] = CoreResult(
                core=core_id,
                readings=readings,
                profile=profile,
                transactions=stats[core_id],
                total_wait_cycles=state.wait_cycles,
            )
        return SimResult(cores=results, makespan=makespan, dma=dma_results)


def run_isolation(
    program: TaskProgram,
    *,
    core: int = 1,
    timing: SimTiming | None = None,
) -> CoreResult:
    """Run one task alone (the paper's measurement protocol, step 1)."""
    sim = SystemSimulator(timing)
    return sim.run({core: program}).core(core)


def run_corun(
    programs: Mapping[int, TaskProgram],
    *,
    timing: SimTiming | None = None,
) -> SimResult:
    """Co-run tasks on different cores, contending on the SRI."""
    if len(programs) < 2:
        raise SimulationError("a co-run needs at least two programs")
    return SystemSimulator(timing).run(programs)
