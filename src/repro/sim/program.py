"""Task programs: what a core executes, as the memory system sees it.

A :class:`TaskProgram` is a replayable stream of *steps*; each step is a
span of core-local computation (``gap`` cycles that generate no SRI
traffic — scratchpad hits, cache hits, arithmetic) optionally followed by
one SRI transaction.  Workload generators produce programs; the system
simulator executes them, in isolation or co-running.

Programs are replayable on purpose: the MBTA protocol runs the same task
once in isolation (to collect counters) and again against contenders (to
validate that model predictions upper-bound observed times), and both runs
must see identical streams.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Iterator

from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.errors import SimulationError
from repro.sim.requests import SriRequest

#: One step: (compute cycles, optional SRI transaction issued afterwards).
Step = tuple[int, SriRequest | None]


@dataclasses.dataclass(frozen=True)
class TaskProgram:
    """A replayable per-core access program.

    Attributes:
        name: task name, carried into counter readings and reports.
        stream_factory: zero-argument callable returning a fresh step
            iterator; called once per simulation run.
    """

    name: str
    stream_factory: Callable[[], Iterator[Step]]

    def steps(self) -> Iterator[Step]:
        """A fresh iterator over the program's steps."""
        return self.stream_factory()

    # ------------------------------------------------------------------
    # Static analyses (used for ground truth and test oracles)
    # ------------------------------------------------------------------
    def ground_truth_profile(self) -> AccessProfile:
        """Exact per-target access counts — the PTAC the ideal model needs.

        On real hardware this is unobservable (the whole premise of the
        paper); the simulator makes it available as the tightness yardstick.
        """
        return profile_from_pairs(
            self.name,
            (
                (request.target, request.operation, 1)
                for _, request in self.steps()
                if request is not None
            ),
        )

    def request_count(self) -> int:
        """Total number of SRI transactions in the program."""
        return sum(1 for _, request in self.steps() if request is not None)

    def compute_cycles(self) -> int:
        """Total core-local computation cycles in the program."""
        return sum(gap for gap, _ in self.steps())


def program_from_steps(name: str, steps: Iterable[Step]) -> TaskProgram:
    """Materialise a finite step list into a replayable program.

    Intended for tests and microbenchmarks; large workloads should supply
    a generator factory instead to avoid holding streams in memory.
    """
    frozen = tuple(steps)
    for gap, request in frozen:
        if gap < 0:
            raise SimulationError("step gaps must be non-negative")
        if request is not None and not isinstance(request, SriRequest):
            raise SimulationError(f"not an SriRequest: {request!r}")
    return TaskProgram(name=name, stream_factory=lambda: iter(frozen))


def concatenate(name: str, programs: Iterable[TaskProgram]) -> TaskProgram:
    """Run several programs back-to-back as one task (phase composition)."""
    parts = tuple(programs)

    def factory() -> Iterator[Step]:
        for part in parts:
            yield from part.steps()

    return TaskProgram(name=name, stream_factory=factory)


def repeat(name: str, program: TaskProgram, times: int) -> TaskProgram:
    """Loop a program ``times`` times (e.g. control-loop iterations)."""
    if times < 0:
        raise SimulationError("repeat count must be non-negative")

    def factory() -> Iterator[Step]:
        for _ in range(times):
            yield from program.steps()

    return TaskProgram(name=name, stream_factory=factory)
