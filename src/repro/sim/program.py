"""Task programs: what a core executes, as the memory system sees it.

A :class:`TaskProgram` is a replayable stream of *steps*; each step is a
span of core-local computation (``gap`` cycles that generate no SRI
traffic — scratchpad hits, cache hits, arithmetic) optionally followed by
one SRI transaction.  Workload generators produce programs; the system
simulator executes them, in isolation or co-running.

Programs are replayable on purpose: the MBTA protocol runs the same task
once in isolation (to collect counters) and again against contenders (to
validate that model predictions upper-bound observed times), and both runs
must see identical streams.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.errors import SimulationError
from repro.sim.requests import SriRequest

#: One step: (compute cycles, optional SRI transaction issued afterwards).
Step = tuple[int, SriRequest | None]


class CompiledProgram:
    """A program's step stream, flattened to arrays (one per run, cached).

    The step generators are convenient to *write* (workload builders
    compose them freely) but expensive to *execute*: every simulated
    transaction costs a generator resumption and a tuple unpack, and
    gap-only steps cost one heap event each.  Compiling flattens the
    stream once into flat arrays over the program's **requests**:

    * ``gaps[k]`` — computation cycles before request ``k``, with any
      run of gap-only steps merged into the following request's gap
      (``max(0, G - credit)`` consumes overlap credit exactly like the
      step-by-step walk, so the merge is timing-exact);
    * ``request_ids[k]`` — index into :attr:`requests`, the **deduped**
      transaction table in first-appearance order (workloads repeat a
      handful of distinct transactions thousands of times, so per-rid
      precomputation amortises all per-request timing/counter lookups);
    * ``final_gap`` — trailing computation after the last request.

    Attributes:
        name: the program's name.
        gaps: int64 array, pre-request computation cycles.
        request_ids: int64 array, parallel to ``gaps``.
        requests: deduped :class:`SriRequest` table (first-appearance
            order — the order every per-key observable dict follows).
        final_gap: trailing gap-only cycles.
        gap_list / rid_list: Python-int mirrors of the arrays (the event
          walker indexes them faster than numpy scalars, and they keep
          Python-int arithmetic end to end).
    """

    __slots__ = (
        "name",
        "gaps",
        "request_ids",
        "requests",
        "final_gap",
        "gap_list",
        "rid_list",
    )

    def __init__(
        self,
        name: str,
        gaps: np.ndarray,
        request_ids: np.ndarray,
        requests: tuple[SriRequest, ...],
        final_gap: int,
    ) -> None:
        self.name = name
        self.gaps = gaps
        self.request_ids = request_ids
        self.requests = requests
        self.final_gap = final_gap
        self.gap_list: list[int] = gaps.tolist()
        self.rid_list: list[int] = request_ids.tolist()

    @property
    def n_requests(self) -> int:
        return len(self.rid_list)

    def rid_counts(self) -> list[int]:
        """Occurrences of each distinct request, indexed by rid."""
        if not self.rid_list:
            return [0] * len(self.requests)
        return np.bincount(
            self.request_ids, minlength=len(self.requests)
        ).tolist()

    def compute_cycles(self) -> int:
        return int(self.gaps.sum()) + self.final_gap


#: Compiled streams, keyed weakly by program so workload caches don't
#: grow pickles (process-mode jobs ship TaskPrograms) or leak memory.
_COMPILE_CACHE: "weakref.WeakKeyDictionary[TaskProgram, CompiledProgram]" = (
    weakref.WeakKeyDictionary()
)


def compile_program(program: "TaskProgram") -> CompiledProgram:
    """Flatten a program's step stream into a :class:`CompiledProgram`.

    One full pass over ``program.steps()`` per program (memoised): gap
    runs merge into the next request's gap, requests dedupe into a table
    in first-appearance order.  Negative gaps are rejected here with the
    same error the step-by-step walk raised.
    """
    cached = _COMPILE_CACHE.get(program)
    if cached is not None:
        return cached
    gaps: list[int] = []
    rids: list[int] = []
    table: dict[SriRequest, int] = {}
    requests: list[SriRequest] = []
    pending_gap = 0
    for gap, request in program.steps():
        if gap < 0:
            raise SimulationError(
                f"{program.name!r}: negative gap in program"
            )
        pending_gap += gap
        if request is None:
            continue
        rid = table.get(request)
        if rid is None:
            rid = len(requests)
            table[request] = rid
            requests.append(request)
        gaps.append(pending_gap)
        rids.append(rid)
        pending_gap = 0
    compiled = CompiledProgram(
        name=program.name,
        gaps=np.asarray(gaps, dtype=np.int64),
        request_ids=np.asarray(rids, dtype=np.int64),
        requests=tuple(requests),
        final_gap=pending_gap,
    )
    _COMPILE_CACHE[program] = compiled
    return compiled


@dataclasses.dataclass(frozen=True)
class TaskProgram:
    """A replayable per-core access program.

    Attributes:
        name: task name, carried into counter readings and reports.
        stream_factory: zero-argument callable returning a fresh step
            iterator; called once per simulation run.
    """

    name: str
    stream_factory: Callable[[], Iterator[Step]]

    def steps(self) -> Iterator[Step]:
        """A fresh iterator over the program's steps."""
        return self.stream_factory()

    def compiled(self) -> CompiledProgram:
        """The flattened (and memoised) array form of the step stream."""
        return compile_program(self)

    # ------------------------------------------------------------------
    # Static analyses (used for ground truth and test oracles)
    # ------------------------------------------------------------------
    def ground_truth_profile(self) -> AccessProfile:
        """Exact per-target access counts — the PTAC the ideal model needs.

        On real hardware this is unobservable (the whole premise of the
        paper); the simulator makes it available as the tightness
        yardstick.  Computed off the compiled arrays: the deduped request
        table is in first-appearance order, so the profile's key order
        matches a step-by-step scan exactly.
        """
        compiled = self.compiled()
        counts = compiled.rid_counts()
        return profile_from_pairs(
            self.name,
            (
                (request.target, request.operation, counts[rid])
                for rid, request in enumerate(compiled.requests)
            ),
        )

    def request_count(self) -> int:
        """Total number of SRI transactions in the program."""
        return self.compiled().n_requests

    def compute_cycles(self) -> int:
        """Total core-local computation cycles in the program."""
        return self.compiled().compute_cycles()


def program_from_steps(name: str, steps: Iterable[Step]) -> TaskProgram:
    """Materialise a finite step list into a replayable program.

    Intended for tests and microbenchmarks; large workloads should supply
    a generator factory instead to avoid holding streams in memory.
    """
    frozen = tuple(steps)
    for gap, request in frozen:
        if gap < 0:
            raise SimulationError("step gaps must be non-negative")
        if request is not None and not isinstance(request, SriRequest):
            raise SimulationError(f"not an SriRequest: {request!r}")
    return TaskProgram(name=name, stream_factory=lambda: iter(frozen))


def concatenate(name: str, programs: Iterable[TaskProgram]) -> TaskProgram:
    """Run several programs back-to-back as one task (phase composition)."""
    parts = tuple(programs)

    def factory() -> Iterator[Step]:
        for part in parts:
            yield from part.steps()

    return TaskProgram(name=name, stream_factory=factory)


def repeat(name: str, program: TaskProgram, times: int) -> TaskProgram:
    """Loop a program ``times`` times (e.g. control-loop iterations)."""
    if times < 0:
        raise SimulationError("repeat count must be non-negative")

    def factory() -> Iterator[Step]:
        for _ in range(times):
            yield from program.steps()

    return TaskProgram(name=name, stream_factory=factory)
