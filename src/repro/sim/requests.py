"""SRI request descriptions — the currency of the simulator.

A task, from the memory system's point of view, is a stream of SRI
transactions separated by core-local computation.  :class:`SriRequest`
captures one transaction with everything the timing model needs: where it
goes, what kind of operation it is, whether it falls into a prefetch
stream, and which debug counter (if any) its originating cache event
increments.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.counters.dsu import DebugCounter
from repro.errors import SimulationError
from repro.platform.targets import Operation, Target, check_pair


class MissKind(enum.Enum):
    """The cache event that put a transaction on the SRI.

    Determines which miss counter the DSU increments (Table 4).
    Non-cacheable accesses reach the SRI directly and touch no miss
    counter — the very property that makes Scenario 1's data traffic
    invisible to everything but DMEM_STALL.
    """

    ICACHE_MISS = "icache-miss"
    DCACHE_MISS_CLEAN = "dcache-miss-clean"
    DCACHE_MISS_DIRTY = "dcache-miss-dirty"
    UNCACHED = "uncached"

    @property
    def counter(self) -> DebugCounter | None:
        """The debug counter this event increments, if any."""
        return {
            MissKind.ICACHE_MISS: DebugCounter.PCACHE_MISS,
            MissKind.DCACHE_MISS_CLEAN: DebugCounter.DCACHE_MISS_CLEAN,
            MissKind.DCACHE_MISS_DIRTY: DebugCounter.DCACHE_MISS_DIRTY,
            MissKind.UNCACHED: None,
        }[self]


@dataclasses.dataclass(frozen=True)
class SriRequest:
    """One SRI transaction issued by a core.

    Attributes:
        target: the SRI slave addressed.
        operation: code fetch or data access.
        miss_kind: originating cache event (drives the miss counters).
        sequential: whether the transaction falls in a prefetch/pipeline
            stream on its target (next-line code fetch, buffered store...);
            sequential transactions get the target's best-case service time
            and pipeline overlap, non-sequential ones the worst case.
            This is what separates Table 2's ``l_min``/``cs`` row from
            ``l_max``.
        write: whether the access writes (affects LMU overlap: buffered
            stores hide one cycle, giving the 10-cycle ``cs^{lmu,da}``).
        dirty_eviction: a data miss whose victim line was dirty; on the
            LMU this costs the bracketed 21-cycle latency (write-back plus
            line fill as one occupancy window).
    """

    target: Target
    operation: Operation
    miss_kind: MissKind = MissKind.UNCACHED
    sequential: bool = False
    write: bool = False
    dirty_eviction: bool = False

    def __post_init__(self) -> None:
        check_pair(self.target, self.operation)
        if self.operation is Operation.CODE:
            if self.write:
                raise SimulationError("code fetches cannot be writes")
            if self.dirty_eviction:
                raise SimulationError("code fetches cannot evict dirty lines")
            if self.miss_kind in (
                MissKind.DCACHE_MISS_CLEAN,
                MissKind.DCACHE_MISS_DIRTY,
            ):
                raise SimulationError(
                    "code fetches cannot originate from data-cache misses"
                )
        if self.dirty_eviction and self.miss_kind is not MissKind.DCACHE_MISS_DIRTY:
            raise SimulationError(
                "dirty evictions must carry miss_kind DCACHE_MISS_DIRTY"
            )
        if (
            self.miss_kind is MissKind.DCACHE_MISS_DIRTY
            and not self.dirty_eviction
        ):
            raise SimulationError(
                "DCACHE_MISS_DIRTY transactions must set dirty_eviction"
            )

    @property
    def stall_counter(self) -> DebugCounter:
        """The stall counter charged while the core waits (PS or DS)."""
        if self.operation is Operation.CODE:
            return DebugCounter.PMEM_STALL
        return DebugCounter.DMEM_STALL


def code_fetch(
    target: Target, *, sequential: bool = False, cached: bool = True
) -> SriRequest:
    """Convenience constructor for a code fetch transaction."""
    return SriRequest(
        target=target,
        operation=Operation.CODE,
        miss_kind=MissKind.ICACHE_MISS if cached else MissKind.UNCACHED,
        sequential=sequential,
    )


def data_access(
    target: Target,
    *,
    write: bool = False,
    sequential: bool = False,
    miss_kind: MissKind = MissKind.UNCACHED,
    dirty_eviction: bool = False,
) -> SriRequest:
    """Convenience constructor for a data transaction."""
    return SriRequest(
        target=target,
        operation=Operation.DATA,
        miss_kind=miss_kind,
        sequential=sequential,
        write=write,
        dirty_eviction=dirty_eviction,
    )
