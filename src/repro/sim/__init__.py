"""Cycle-level simulator of the TC27x memory system (the testbed substitute).

Executes per-core task programs against the SRI crossbar with per-target
round-robin arbitration and Table 2-consistent device timing, producing
the observables the paper's methodology needs: DSU counter readings,
execution times, and (beyond real hardware) ground-truth access profiles.
"""

from repro.sim.dma import DmaAgent, DmaResult
from repro.sim.caches import (
    CacheAccess,
    SetAssociativeCache,
    data_cache,
    data_read_buffer,
    instruction_cache,
)
from repro.sim.program import (
    Step,
    TaskProgram,
    concatenate,
    program_from_steps,
    repeat,
)
from repro.sim.requests import MissKind, SriRequest, code_fetch, data_access
from repro.sim.system import (
    ARBITRATION_POLICIES,
    CoreResult,
    SimResult,
    SystemSimulator,
    TransactionStats,
    run_corun,
    run_isolation,
)
from repro.sim.timing import DeviceTiming, SimTiming, tc27x_sim_timing
from repro.sim.trace_frontend import TraceAccess, TraceCompiler, sweep_trace

__all__ = [
    "ARBITRATION_POLICIES",
    "CacheAccess",
    "DmaAgent",
    "DmaResult",
    "CoreResult",
    "DeviceTiming",
    "MissKind",
    "SetAssociativeCache",
    "SimResult",
    "SimTiming",
    "SriRequest",
    "Step",
    "SystemSimulator",
    "TaskProgram",
    "TraceAccess",
    "TraceCompiler",
    "TransactionStats",
    "code_fetch",
    "concatenate",
    "data_access",
    "data_cache",
    "data_read_buffer",
    "instruction_cache",
    "program_from_steps",
    "repeat",
    "run_corun",
    "run_isolation",
    "sweep_trace",
    "tc27x_sim_timing",
]
