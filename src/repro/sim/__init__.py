"""Cycle-level simulator of the TC27x memory system (the testbed substitute).

Executes per-core task programs against the SRI crossbar with per-target
round-robin arbitration and Table 2-consistent device timing, producing
the observables the paper's methodology needs: DSU counter readings,
execution times, and (beyond real hardware) ground-truth access profiles.

Two engines share one event model (``SIM_ENGINES``):

* ``engine="compiled"`` (the default) executes a
  :class:`~repro.sim.program.CompiledProgram` — each task's step stream
  flattened once (:func:`~repro.sim.program.compile_program`, memoised
  per program) into numpy gap/request-id arrays over a deduplicated
  request table, with runs of gap-only steps merged into the following
  request's gap and uncontended transactions completed inline, off the
  event heap;
* ``engine="reference"`` replays the original per-step object stream.

The engines are **byte-identical** — same pickled :class:`SimResult`
down to counters, stats and artifacts — which the equivalence suite
(``tests/test_vectorized_kernels.py``) and the acceptance benchmark
(``benchmarks/bench_sim_scaling.py``) both assert; the compiled engine
is purely a throughput change.
"""

from repro.sim.dma import DmaAgent, DmaResult
from repro.sim.caches import (
    CacheAccess,
    SetAssociativeCache,
    data_cache,
    data_read_buffer,
    instruction_cache,
)
from repro.sim.program import (
    CompiledProgram,
    Step,
    TaskProgram,
    compile_program,
    concatenate,
    program_from_steps,
    repeat,
)
from repro.sim.requests import MissKind, SriRequest, code_fetch, data_access
from repro.sim.system import (
    ARBITRATION_POLICIES,
    SIM_ENGINES,
    CoreResult,
    SimResult,
    SystemSimulator,
    TransactionStats,
    run_corun,
    run_isolation,
)
from repro.sim.timing import DeviceTiming, SimTiming, tc27x_sim_timing
from repro.sim.trace_frontend import TraceAccess, TraceCompiler, sweep_trace

__all__ = [
    "ARBITRATION_POLICIES",
    "CacheAccess",
    "CompiledProgram",
    "DmaAgent",
    "DmaResult",
    "CoreResult",
    "DeviceTiming",
    "MissKind",
    "SIM_ENGINES",
    "SetAssociativeCache",
    "SimResult",
    "SimTiming",
    "SriRequest",
    "Step",
    "SystemSimulator",
    "TaskProgram",
    "TraceAccess",
    "TraceCompiler",
    "TransactionStats",
    "code_fetch",
    "compile_program",
    "concatenate",
    "data_access",
    "data_cache",
    "data_read_buffer",
    "instruction_cache",
    "program_from_steps",
    "repeat",
    "run_corun",
    "run_isolation",
    "sweep_trace",
    "tc27x_sim_timing",
]
