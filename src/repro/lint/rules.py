"""The builtin rules: this codebase's invariants, machine-checked.

Each rule encodes a convention earlier PRs established by review
discipline alone — timestamps through :mod:`repro.provenance`, sleeps
through :class:`~repro.service.retry.Backoff`, repr-exact exports,
hardened sqlite access, fenced wire envelopes.  The rule docstrings say
*why*; the messages say what to do instead.  Suppress a deliberate
exception where it lives: ``# repro: ignore[rule-id] reason``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintRule, SourceFile
from repro.lint.registry import register_rule


def dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _module_allowed(source: SourceFile, allowed: tuple[str, ...]) -> bool:
    return any(
        source.module == name or source.module.endswith("." + name)
        for name in allowed
    )


@register_rule
class NaiveTimeRule(LintRule):
    """Persisted or wire-visible timestamps must be provenance-stamped.

    A bare ``time.time()`` float or naive ``datetime.now()`` is
    meaningless next to a row written on another host (PR 9's
    provenance sweep); duration arithmetic on a wall clock breaks when
    NTP steps it.  Library code takes wall-clock stamps from
    :func:`repro.provenance.epoch_now` / ``utc_now_iso`` and measures
    durations with ``time.monotonic()``.
    """

    name = "naive-time"
    description = (
        "time.time()/datetime.now()/utcnow outside repro.provenance: "
        "stamps go through provenance, durations through time.monotonic()"
    )
    scope = "library"

    #: The one module allowed to read the wall clock directly.
    allowed_modules = ("repro.provenance",)

    banned = frozenset(
        {
            "time.time",
            "datetime.now",
            "datetime.utcnow",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
        }
    )

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _module_allowed(source, self.allowed_modules):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name in self.banned or (
                name is not None and name.endswith(".utcnow")
            ):
                yield Finding(
                    path=source.path,
                    line=node.lineno,
                    rule=self.name,
                    message=(
                        f"{name}() is a naive clock reading: use "
                        "repro.provenance (epoch_now/utc_now_iso) for "
                        "persisted stamps, time.monotonic() for durations"
                    ),
                )


@register_rule
class BareSleepLoopRule(LintRule):
    """Retry waits go through the shared backoff, not raw sleeps.

    PR 8 unified every networked loop under
    :class:`~repro.service.retry.RetryPolicy` — jittered, deadline-
    clipped, fleet-decorrelated.  A raw ``time.sleep`` reintroduces the
    fixed-interval hammering that policy exists to end; loops call
    :meth:`~repro.service.retry.Backoff.sleep` instead.
    """

    name = "bare-sleep-loop"
    description = (
        "time.sleep outside service/retry.py and chaos's latency fault: "
        "retrying code waits via RetryPolicy/Backoff.sleep"
    )
    scope = "all"

    #: retry.py owns the one real sleep; chaos.py's latency fault
    #: deliberately stalls a response.
    allowed_modules = ("repro.service.retry", "repro.service.chaos")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _module_allowed(source, self.allowed_modules):
            return
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and dotted(node.func) == "time.sleep"
            ):
                yield Finding(
                    path=source.path,
                    line=node.lineno,
                    rule=self.name,
                    message=(
                        "raw time.sleep: wait through "
                        "repro.service.retry Backoff.sleep() (or an "
                        "Event.wait) so delays stay jittered and "
                        "deadline-bounded"
                    ),
                )


@register_rule
class RoundedExportRule(LintRule):
    """Recorded floats are repr-exact; digit-truncating round() is banned.

    PR 9 removed the ``round(x, 6)`` export truncation: two recorded
    bounds that differ below the rounding digit would compare equal in
    a regression diff.  Two-argument ``round`` in library code is that
    regression's signature — integer rounding (one-arg ``round``,
    ``np.round``) is ordinary math and stays allowed.
    """

    name = "rounded-export"
    description = (
        "two-argument round() in library code: recorded/exported floats "
        "must stay repr-exact (see repro.analysis.export.exact_float)"
    )
    scope = "library"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "round"
                and len(node.args) >= 2
            ):
                yield Finding(
                    path=source.path,
                    line=node.lineno,
                    rule=self.name,
                    message=(
                        "round(x, ndigits) truncates precision: values "
                        "that flow into exports or the result store must "
                        "stay repr-exact (exact_float)"
                    ),
                )


@register_rule
class RawSqliteRule(LintRule):
    """sqlite is opened only through the two hardened store modules.

    ``service/store.py`` and ``store/resultstore.py`` open connections
    with the WAL + busy-timeout + ``quick_check`` quarantine discipline
    (PR 8); a raw ``sqlite3.connect`` elsewhere bypasses all three and
    reintroduces ``database is locked`` and crash-torn files.
    """

    name = "raw-sqlite"
    description = (
        "sqlite3.connect outside the two hardened store modules "
        "(service/store.py, store/resultstore.py)"
    )
    scope = "all"

    allowed_modules = ("repro.service.store", "repro.store.resultstore")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if _module_allowed(source, self.allowed_modules):
            return
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and dotted(node.func) == "sqlite3.connect"
            ):
                yield Finding(
                    path=source.path,
                    line=node.lineno,
                    rule=self.name,
                    message=(
                        "raw sqlite3.connect bypasses the WAL/busy-"
                        "timeout/quarantine discipline: go through "
                        "JobStore or ResultStore"
                    ),
                )


@register_rule
class BroadExceptRule(LintRule):
    """``except Exception`` must re-raise or be annotated with a reason.

    A broad handler that swallows silently also swallows programming
    errors — the chaos suite exists because "ignore and continue" hid
    real faults.  A handler that *re-raises* (wrapped or not) is fine;
    a deliberate best-effort boundary carries its reason in a
    ``# repro: ignore[broad-except] why`` annotation.
    """

    name = "broad-except"
    description = (
        "except Exception/BaseException (or bare except) without a "
        "re-raise or an annotated reason"
    )
    scope = "all"

    broad = frozenset({"Exception", "BaseException"})

    def _is_broad(self, node: ast.ExceptHandler) -> bool:
        kind = node.type
        if kind is None:
            return True
        if isinstance(kind, ast.Name):
            return kind.id in self.broad
        if isinstance(kind, ast.Tuple):
            return any(
                isinstance(el, ast.Name) and el.id in self.broad
                for el in kind.elts
            )
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if any(
                isinstance(inner, ast.Raise)
                for stmt in node.body
                for inner in ast.walk(stmt)
            ):
                continue
            yield Finding(
                path=source.path,
                line=node.lineno,
                rule=self.name,
                message=(
                    "broad except swallows programming errors: narrow "
                    "the exception types, re-raise, or annotate with "
                    "`# repro: ignore[broad-except] <reason>`"
                ),
            )


@register_rule
class RegistryLeakRule(LintRule):
    """Tests must not leak registrations into the process-wide registries.

    ``register_scenario``/``register_model``/``register_family`` mutate
    process-global state; a test that registers without a
    ``temporary_*`` scope (or the ``scenario_sandbox`` fixture) poisons
    every test that runs after it, in whatever order the runner picks.
    """

    name = "registry-leak"
    description = (
        "test mutates a default registry outside temporary_scenarios/"
        "temporary_families/temporary_models/scenario_sandbox"
    )
    scope = "tests"

    mutators = frozenset(
        {
            "register_scenario",
            "register_model",
            "register_family",
            "register_family_members",
        }
    )
    scopes = frozenset(
        {"temporary_scenarios", "temporary_families", "temporary_models"}
    )
    defaults = frozenset(
        {"default_registry", "default_model_registry",
         "default_family_registry"}
    )
    fixtures = frozenset({"scenario_sandbox"})

    def _mutation(self, node: ast.Call) -> str | None:
        """The mutating call's display name, or ``None``."""
        name = dotted(node.func)
        if name is not None and name.split(".")[-1] in self.mutators:
            return name
        # <default_*registry>(...).register(...) / .unregister(...)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("register", "unregister")
            and isinstance(node.func.value, ast.Call)
        ):
            inner = dotted(node.func.value.func)
            if inner is not None and inner.split(".")[-1] in self.defaults:
                return f"{inner}().{node.func.attr}"
        return None

    def _scoping_with(self, node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                name = dotted(expr.func)
                if name is not None and name.split(".")[-1] in self.scopes:
                    return True
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, scoped: bool) -> None:
            if isinstance(node, ast.With) and self._scoping_with(node):
                scoped = True
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and any(
                arg.arg in self.fixtures
                for arg in node.args.args + node.args.kwonlyargs
            ):
                scoped = True
            elif isinstance(node, ast.Call) and not scoped:
                name = self._mutation(node)
                if name is not None:
                    findings.append(
                        Finding(
                            path=source.path,
                            line=node.lineno,
                            rule=self.name,
                            message=(
                                f"{name} mutates a process-wide registry:"
                                " wrap in temporary_scenarios/"
                                "temporary_families/temporary_models or "
                                "use the scenario_sandbox fixture"
                            ),
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, scoped)

        visit(source.tree, False)
        yield from findings


@register_rule
class UnpicklableDefaultRule(LintRule):
    """Dataclass fields must not default to lambdas.

    Everything crossing a pool or wire boundary is pickled; a spec
    whose field *stores* a lambda default breaks process-mode fan-out
    at submit time.  ``default_factory=lambda: ...`` is fine (the
    factory's *result* is stored), ``default=lambda ...`` and
    class-level ``field = lambda ...`` are not.
    """

    name = "unpicklable-default"
    description = (
        "dataclass field defaulting to a lambda: the stored value "
        "cannot cross a pool or wire boundary"
    )
    scope = "library"

    def _is_dataclass(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted(target)
            if name is not None and name.split(".")[-1] == "dataclass":
                return True
        return False

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not (
                isinstance(node, ast.ClassDef) and self._is_dataclass(node)
            ):
                continue
            for stmt in node.body:
                value = None
                if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    value = stmt.value
                if value is None:
                    continue
                bad: ast.AST | None = None
                if isinstance(value, ast.Lambda):
                    bad = value
                elif isinstance(value, ast.Call) and (
                    (dotted(value.func) or "").split(".")[-1] == "field"
                ):
                    for keyword in value.keywords:
                        if keyword.arg == "default" and isinstance(
                            keyword.value, ast.Lambda
                        ):
                            bad = keyword.value
                if bad is not None:
                    yield Finding(
                        path=source.path,
                        line=bad.lineno,
                        rule=self.name,
                        message=(
                            f"field default in dataclass {node.name} is "
                            "a lambda and would be stored on instances: "
                            "use default_factory or a module-level "
                            "function"
                        ),
                    )


@register_rule
class WireVersionRule(LintRule):
    """Every wire envelope kind is handled on both sides.

    A ``*_KIND`` constant that is encoded but never decoded (or the
    reverse) means one side of the protocol silently ignores — or can
    never produce — that envelope; exactly how the cancel body and the
    completion ack went unchecked before this rule existed.  Evidence
    is a use of the constant in an ``encode_*`` call (encode side) and
    a ``decode_*`` / ``_envelope`` call (decode side), anywhere in the
    library.
    """

    name = "wire-version"
    description = (
        "a *_KIND envelope constant missing from the encode or the "
        "decode side of the wire protocol"
    )
    scope = "library"

    def __init__(self) -> None:
        #: kind name -> (path, line) of its defining assignment.
        self.defined: dict[str, tuple[str, int]] = {}
        self.encoded: set[str] = set()
        self.decoded: set[str] = set()

    @staticmethod
    def _is_kind_name(name: str) -> bool:
        return name.endswith("_KIND") and name.lstrip("_").isupper()

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and self._is_kind_name(target.id)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str)
                    ):
                        self.defined.setdefault(
                            target.id, (source.path, node.lineno)
                        )
            elif isinstance(node, ast.Call):
                func = dotted(node.func)
                if func is None:
                    continue
                tail = func.split(".")[-1]
                used = {
                    arg.id
                    for arg in node.args
                    if isinstance(arg, ast.Name)
                    and self._is_kind_name(arg.id)
                } | {
                    arg.attr
                    for arg in node.args
                    if isinstance(arg, ast.Attribute)
                    and self._is_kind_name(arg.attr)
                }
                if not used:
                    continue
                if tail.startswith("encode_"):
                    self.encoded |= used
                elif tail.startswith("decode_") or tail == "_envelope":
                    self.decoded |= used
        return iter(())

    def finish(self) -> Iterator[Finding]:
        for name, (path, line) in sorted(self.defined.items()):
            missing = []
            if name not in self.encoded:
                missing.append("encode")
            if name not in self.decoded:
                missing.append("decode")
            if missing:
                yield Finding(
                    path=path,
                    line=line,
                    rule=self.name,
                    message=(
                        f"envelope kind {name} has no "
                        f"{' or '.join(missing)} handling: one protocol "
                        "side ignores (or can never produce) it"
                    ),
                )
