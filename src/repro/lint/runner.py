"""The lint runner: walk paths, run the selected rules, report.

Exit-code contract (the same 0/1/2 shape as ``repro diff``):

* **0** — every checked file is clean;
* **1** — at least one finding;
* **2** — the run itself failed (unknown rule, unreadable path,
  syntax error in a checked file) — surfaced as :class:`LintError`.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.core import (
    Finding,
    LintError,
    RuleRegistry,
    SourceFile,
    run_rules,
)
from repro.lint.registry import default_rule_registry

#: Directory names never descended into.  ``lint_fixtures`` holds the
#: deliberate-violation fixtures the framework's own tests lint in
#: isolation — sweeping them would fail every HEAD run by design.
EXCLUDED_DIRS = frozenset({"__pycache__", "lint_fixtures", ".git"})


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Python files under ``paths``, deduplicated, deterministic order."""
    seen: set[Path] = set()
    ordered: list[Path] = []

    def admit(candidate: Path) -> None:
        resolved = candidate.resolve()
        if resolved not in seen:
            seen.add(resolved)
            ordered.append(candidate)

    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for found in sorted(path.rglob("*.py")):
                if not any(
                    part in EXCLUDED_DIRS or part.startswith(".")
                    for part in found.relative_to(path).parts
                ):
                    admit(found)
        elif path.is_file():
            admit(path)
        else:
            raise LintError(f"no such file or directory: {path}")
    return ordered


@dataclasses.dataclass(frozen=True)
class LintRun:
    """The outcome of one lint pass."""

    findings: tuple[Finding, ...]
    checked_files: int
    rules: tuple[str, ...]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    registry: RuleRegistry | None = None,
) -> LintRun:
    """Lint every Python file under ``paths`` with the selected rules."""
    registry = (
        registry if registry is not None else default_rule_registry()
    )
    rules = registry.select(select, ignore)
    files = collect_files(paths)
    sources = [SourceFile.parse(path) for path in files]
    findings = run_rules(rules, sources)
    return LintRun(
        findings=tuple(findings),
        checked_files=len(sources),
        rules=tuple(rule.name for rule in rules),
    )
