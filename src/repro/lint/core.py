"""The lint framework core: rules, findings, suppression, one file pass.

The moving parts mirror the rest of the library.  A rule is a small
class implementing :class:`LintRule` (name, description, scope, an AST
``check``), registered in a :class:`RuleRegistry` exactly like
contention models and scenarios are (``register_rule`` /
``default_rule_registry`` / ``temporary_rules``).  The engine parses
each file once into a :class:`SourceFile` — AST, line table, test-ness,
dotted module name, suppression comments — and hands it to every
in-scope rule; a cross-file rule accumulates state per run and reports
from :meth:`LintRule.finish` after the last file.

Suppression is per line and per rule: a finding on a line carrying
``# repro: ignore[rule-id]`` (optionally ``ignore[a,b] reason``) is
dropped.  There is deliberately no file- or project-wide suppression —
every accepted violation is annotated where it lives, with its reason
next to it.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path, PurePath
from typing import Iterable, Iterator

from repro.errors import ReproError


class LintError(ReproError):
    """A lint-framework failure (bad rule selection, unreadable path)."""


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


#: Suppression comment: ``# repro: ignore[rule-id]`` or
#: ``# repro: ignore[a,b] optional reason``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s-]+)\]")


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Per-line suppressed rule ids (1-based line numbers)."""
    table: dict[int, frozenset[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is not None:
            rules = frozenset(
                part.strip()
                for part in match.group(1).split(",")
                if part.strip()
            )
            if rules:
                table[number] = rules
    return table


def is_test_path(path: PurePath) -> bool:
    """Whether a file is test code (``tests/`` tree or ``test_*.py``)."""
    if any(part == "tests" for part in path.parts):
        return True
    return path.name.startswith("test_") or path.name == "conftest.py"


def module_name(path: PurePath) -> str:
    """The dotted module a file defines, best-effort.

    Resolved relative to the nearest ``src`` directory component when
    one is present (the repo layout), else from the bare filename —
    enough for rule allowlists, which match on suffixes.
    """
    parts = list(path.parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src") :]
    name = ".".join(parts)
    if name.endswith(".py"):
        name = name[: -len(".py")]
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


@dataclasses.dataclass(frozen=True)
class SourceFile:
    """One parsed file, shared by every rule in a run."""

    path: str
    text: str
    tree: ast.Module
    is_test: bool
    module: str
    suppressions: dict[int, frozenset[str]]

    @classmethod
    def parse(cls, path: str | Path, text: str | None = None) -> "SourceFile":
        where = Path(path)
        if text is None:
            text = where.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(where))
        except SyntaxError as exc:
            raise LintError(f"cannot parse {where}: {exc}") from exc
        return cls(
            path=str(where),
            text=text,
            tree=tree,
            is_test=is_test_path(where),
            module=module_name(where),
            suppressions=parse_suppressions(text),
        )

    def suppressed(self, rule: str, line: int) -> bool:
        return rule in self.suppressions.get(line, frozenset())


class LintRule:
    """One invariant checker.

    Subclasses set :attr:`name` (the id used in ``--select`` and
    suppression comments), :attr:`description` (one line, shown by
    ``repro lint --list`` and the README table) and :attr:`scope` —
    ``"library"`` (src only), ``"tests"`` (test files only) or ``"all"``
    — then implement :meth:`check`.  A rule instance lives for one run,
    so cross-file rules accumulate state in ``check`` and report it
    from :meth:`finish`.
    """

    name: str = ""
    description: str = ""
    scope: str = "all"

    def applies_to(self, source: SourceFile) -> bool:
        if self.scope == "library":
            return not source.is_test
        if self.scope == "tests":
            return source.is_test
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finish(self) -> Iterator[Finding]:
        """Project-level findings, after every file has been checked."""
        return iter(())


class RuleRegistry:
    """An ordered name → :class:`LintRule` *class* map.

    Stores classes, not instances: every :func:`run_rules` call
    instantiates fresh rules, so cross-file accumulator state can never
    leak between runs.  Same shape as the model/scenario registries.
    """

    def __init__(self, rules: Iterable[type[LintRule]] = ()) -> None:
        self._rules: dict[str, type[LintRule]] = {}
        for rule in rules:
            self.register(rule)

    def register(
        self, rule: type[LintRule], *, replace: bool = False
    ) -> type[LintRule]:
        if not (isinstance(rule, type) and issubclass(rule, LintRule)):
            raise LintError(
                f"expected a LintRule subclass, got {rule!r}"
            )
        if not rule.name or not rule.description:
            raise LintError(
                f"rule {rule.__qualname__} must set name and description"
            )
        if rule.scope not in ("library", "tests", "all"):
            raise LintError(
                f"rule {rule.name!r} scope must be library/tests/all, "
                f"got {rule.scope!r}"
            )
        if rule.name in self._rules and not replace:
            raise LintError(
                f"lint rule {rule.name!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        self._rules[rule.name] = rule
        return rule

    def unregister(self, name: str) -> None:
        if name not in self._rules:
            raise LintError(f"lint rule {name!r} is not registered")
        del self._rules[name]

    def get(self, name: str) -> type[LintRule]:
        try:
            return self._rules[name]
        except KeyError as exc:
            raise LintError(
                f"unknown lint rule {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def names(self) -> tuple[str, ...]:
        return tuple(self._rules)

    def specs(self) -> tuple[type[LintRule], ...]:
        return tuple(self._rules.values())

    def __contains__(self, name: object) -> bool:
        return name in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[type[LintRule]]:
        return iter(self._rules.values())

    def select(
        self,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> tuple[type[LintRule], ...]:
        """The rule classes a run should instantiate.

        Unknown names in either list raise — a typo silently selecting
        nothing would read as a clean run.
        """
        chosen = list(select) if select is not None else list(self.names())
        for name in list(chosen) + list(ignore or ()):
            if name not in self:
                raise LintError(
                    f"unknown lint rule {name!r}; "
                    f"registered: {', '.join(self.names())}"
                )
        dropped = set(ignore or ())
        return tuple(
            self._rules[name] for name in chosen if name not in dropped
        )


def run_rules(
    rules: Iterable[type[LintRule]],
    sources: Iterable[SourceFile],
) -> list[Finding]:
    """Run rule classes over parsed files; sorted, suppression-applied."""
    instances = [rule() for rule in rules]
    findings: list[Finding] = []

    def admit(rule: LintRule, batch: Iterable[Finding], source=None) -> None:
        for finding in batch:
            at = source
            if at is None or finding.path != at.path:
                at = parsed.get(finding.path)
            if at is not None and at.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)

    parsed: dict[str, SourceFile] = {}
    for source in sources:
        parsed[source.path] = source
        for rule in instances:
            if rule.applies_to(source):
                admit(rule, rule.check(source), source)
    for rule in instances:
        admit(rule, rule.finish())
    return sorted(findings)
