"""Reporters: findings as text lines or a stable JSON document.

The JSON schema is part of the CLI contract (CI parses it)::

    {
      "version": 1,
      "checked_files": 214,
      "rules": ["bare-sleep-loop", ...],
      "findings": [
        {"path": "...", "line": 12, "rule": "...", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.core import Finding

#: Schema version of the JSON report.
REPORT_VERSION = 1


def text_report(findings: Sequence[Finding], checked_files: int) -> str:
    """One ``path:line: [rule] message`` line per finding + a summary."""
    lines = [finding.format() for finding in findings]
    noun = "file" if checked_files == 1 else "files"
    if findings:
        count = len(findings)
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} "
            f"in {checked_files} {noun}"
        )
    else:
        lines.append(f"clean: {checked_files} {noun} checked")
    return "\n".join(lines)


def json_report(
    findings: Sequence[Finding],
    checked_files: int,
    rules: Sequence[str],
) -> str:
    """The machine-readable report (sorted, schema-versioned)."""
    document = {
        "version": REPORT_VERSION,
        "checked_files": checked_files,
        "rules": sorted(rules),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
