"""The rule registry: rules are registered data, like models and
scenarios.

Mirrors :mod:`repro.core.registry` exactly — a process-wide default
registry populated with the builtin rules, a ``register_rule``
decorator for new ones, and a ``temporary_rules`` scope so tests (and
downstream extensions) can add rules without leaking them.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.lint.core import LintRule, RuleRegistry

_DEFAULT: RuleRegistry | None = None


def default_rule_registry() -> RuleRegistry:
    """The process-wide registry, created with the builtin rules."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = RuleRegistry()
        import repro.lint.rules  # noqa: F401  registers the builtins
    return _DEFAULT


def register_rule(
    rule: type[LintRule], *, replace: bool = False
) -> type[LintRule]:
    """Register a rule class in the default registry (decorator-friendly)::

        @register_rule
        class MyRule(LintRule):
            name = "my-rule"
            ...
    """
    return default_rule_registry().register(rule, replace=replace)


def rule_names() -> tuple[str, ...]:
    """Names registered in the default registry."""
    return default_rule_registry().names()


@contextlib.contextmanager
def temporary_rules(
    *rules: type[LintRule], replace: bool = False
) -> Iterator[RuleRegistry]:
    """Scope rule registrations to a ``with`` block (tests, examples)."""
    registry = default_rule_registry()
    snapshot = dict(registry._rules)
    try:
        for rule in rules:
            registry.register(rule, replace=replace)
        yield registry
    finally:
        registry._rules.clear()
        registry._rules.update(snapshot)
