"""``repro.lint`` — the codebase's invariants, machine-checked.

Nine PRs of conventions — timestamps through :mod:`repro.provenance`,
networked waits through :class:`~repro.service.retry.RetryPolicy`,
repr-exact exports, hardened sqlite access, picklable boundary objects,
two-sided wire envelopes — lived in review discipline until this
package.  ``repro lint`` runs a small AST-based framework over ``src``
and ``tests`` and fails on any violation, so the invariants hold by
construction instead of by memory.

Architecture (each piece mirrors an existing library idiom):

* :class:`~repro.lint.core.LintRule` — one invariant: a name, a
  description, a scope (``library``/``tests``/``all``) and an AST
  ``check``; cross-file rules accumulate and report from ``finish()``;
* :class:`~repro.lint.core.RuleRegistry` + ``register_rule`` /
  ``default_rule_registry`` / ``temporary_rules`` — rules are
  registered data, exactly like contention models and scenarios;
* suppression — a deliberate violation is annotated where it lives:
  ``# repro: ignore[rule-id] reason`` on the offending line;
* reporters — human text or schema-versioned JSON, with the
  0 (clean) / 1 (findings) / 2 (error) exit contract ``repro diff``
  established.

Write a new rule by subclassing ``LintRule`` and decorating it with
``@register_rule``; see :mod:`repro.lint.rules` for the builtins and
the README's "Code quality" section for a walkthrough.
"""

from repro.lint.core import (
    Finding,
    LintError,
    LintRule,
    RuleRegistry,
    SourceFile,
    run_rules,
)
from repro.lint.registry import (
    default_rule_registry,
    register_rule,
    rule_names,
    temporary_rules,
)
from repro.lint.report import REPORT_VERSION, json_report, text_report
from repro.lint.runner import LintRun, collect_files, lint_paths

# The builtin rules register on import.
from repro.lint import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "LintError",
    "LintRule",
    "LintRun",
    "REPORT_VERSION",
    "RuleRegistry",
    "SourceFile",
    "collect_files",
    "default_rule_registry",
    "json_report",
    "lint_paths",
    "register_rule",
    "rule_names",
    "run_rules",
    "temporary_rules",
    "text_report",
]
