"""Run provenance: the one place timestamps and revisions are stamped.

Every persistent record this library writes — result-store rows, job
queue metadata, quarantine file names — must carry provenance that is
comparable *across hosts and processes*: a bare ``time.time()`` float is
fine for lease arithmetic but useless next to a row written on another
machine in another timezone, and ``time.strftime`` without an explicit
zone stamps local wall-clock time.  This module is the single helper
everything stamps through:

* :func:`utc_now_iso` / :func:`iso_from_epoch` — UTC ISO-8601 strings
  (``2026-08-07T12:34:56.789012+00:00``), lexicographically sortable and
  unambiguous wherever they are read back;
* :func:`epoch_now` — the current wall-clock instant as epoch seconds,
  for persisted numeric stamps that other hosts compare or convert;
* :func:`git_revision` — the working tree's commit hash, best-effort
  (``None`` outside a checkout), overridable with ``REPRO_GIT_REV`` for
  builds that ship without ``.git``;
* :func:`run_metadata` — the standard provenance dict a new result-store
  run is stamped with.

Timestamps produced here are *metadata*.  Deadlines, lease expiries and
other in-process duration arithmetic use ``time.monotonic()`` instead —
a wall clock can jump backwards under NTP, and a lease that expires on
such a jump re-queues every live unit at once.  The split is enforced by
the ``naive-time`` lint rule: library code outside this module must not
call ``time.time()`` / ``datetime.now()`` directly.
"""

from __future__ import annotations

import datetime
import os
import subprocess
import time

#: Environment override for the recorded git revision (CI images and
#: installed wheels have no ``.git`` to ask).
GIT_REV_ENV = "REPRO_GIT_REV"

_cached_git_rev: tuple[str | None] | None = None


def utc_now_iso() -> str:
    """The current instant as a UTC ISO-8601 string.

    Microsecond precision with an explicit ``+00:00`` offset, so strings
    from any host sort lexicographically in time order and round-trip
    through :func:`datetime.datetime.fromisoformat`.
    """
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


def epoch_now() -> float:
    """The current wall-clock instant as epoch seconds.

    The one sanctioned source of ``time.time()`` for values that get
    *persisted* (result-store rows, job-queue ``created`` stamps) or
    cross the wire: provenance must be comparable across hosts, which a
    monotonic reading is not.  Never use this for deadlines or lease
    arithmetic — those stay on ``time.monotonic()``.
    """
    return time.time()  # repro: ignore[naive-time] the sanctioned source


def iso_from_epoch(epoch: float) -> str:
    """Convert an epoch-seconds float to the canonical UTC ISO form."""
    stamp = datetime.datetime.fromtimestamp(epoch, datetime.timezone.utc)
    return stamp.isoformat()


def utc_file_stamp() -> str:
    """A filename-safe UTC timestamp (``YYYYmmdd-HHMMSSZ``).

    Used where the canonical ISO form cannot go (colons in file names);
    still UTC, still sortable.
    """
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.strftime("%Y%m%d-%H%M%SZ")


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """The current git commit hash, or ``None`` when unknowable.

    Resolution order: the ``REPRO_GIT_REV`` environment variable, then
    ``git rev-parse HEAD`` run next to this file (cached per process —
    provenance stamping must not fork one subprocess per recorded row).
    Pass ``cwd`` to resolve a different working tree (uncached).
    """
    global _cached_git_rev
    override = os.environ.get(GIT_REV_ENV)
    if override:
        return override
    if cwd is None and _cached_git_rev is not None:
        return _cached_git_rev[0]
    where = str(cwd) if cwd is not None else os.path.dirname(__file__)
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=10,
        )
        rev = probe.stdout.strip() if probe.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        rev = None
    if cwd is None:
        _cached_git_rev = (rev,)
    return rev


def run_metadata() -> dict[str, str | None]:
    """The standard provenance stamp of one recorded run."""
    from repro import __version__  # deferred: package-init cycle

    return {
        "library_version": __version__,
        "git_rev": git_revision(),
        "started_utc": utc_now_iso(),
    }
