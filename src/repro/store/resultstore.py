"""The incremental result store: sqlite rows over the pickle cache.

The disk :class:`~repro.engine.cache.ResultCache` remembers raw result
pickles but answers no questions across runs — "did any bound move since
yesterday?" requires loading every pickle and knowing what produced it.
The :class:`ResultStore` is the queryable layer: one sqlite database
(``results.sqlite`` beside the cache's version namespaces) recording one
row per completed engine job cell with full provenance — cache key,
scenario/model/load/dma-model/member/platform identity, bound, predicted
and observed slowdown, tightness, soundness verdict, library version,
git revision, UTC timestamp and run id.

Rows arrive three ways, all landing in the same tables:

* the engine's ``record_result`` hook — every execution mode
  (serial/thread/process/remote/service) funnels through
  :meth:`repro.engine.runner.ExperimentEngine.run`, which records each
  batch automatically when a store is attached;
* coordinator-side recording — fire-and-forget service submissions
  complete on the coordinator while no client engine is attached, so the
  coordinator records unit completions itself;
* :meth:`ResultStore.backfill` — existing disk-cache pickles from
  before the store existed are described into rows after the fact.

Durability mirrors :class:`repro.service.store.JobStore`: WAL journal,
bounded busy timeout, ``PRAGMA quick_check`` on open with
quarantine-and-rebuild of corrupt files, and additive ``ALTER TABLE``
migration so old databases open under newer libraries instead of being
discarded.  All timestamps are UTC ISO-8601 via :mod:`repro.provenance`.
"""

from __future__ import annotations

import os
import pickle
import secrets
import sqlite3
import threading
import warnings
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.errors import StoreError
from repro.provenance import run_metadata, utc_file_stamp, utc_now_iso
from repro.store.describe import CELL_FIELDS, describe_result

#: Database file name, created beside the cache's ``v<version>/``
#: namespaces so one ``--cache-dir`` owns both layers.
STORE_FILENAME = "results.sqlite"

#: Current schema version.  v1 predates the ``dma_model`` / ``member``
#: / ``platform`` identity columns and the run-level ``engine_mode``;
#: opening a v1 database migrates it in place (see :meth:`_migrate`).
SCHEMA_VERSION = 2

#: Same rationale as the job queue: writers hold the lock for
#: single-batch transactions only, so a bounded wait beats failing.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS schema_info (
    version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    started_utc     TEXT NOT NULL,
    library_version TEXT NOT NULL,
    git_rev         TEXT,
    engine_mode     TEXT NOT NULL DEFAULT '',
    label           TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS results (
    run_id       TEXT NOT NULL,
    cell         TEXT NOT NULL,
    kind         TEXT NOT NULL,
    scenario     TEXT,
    model        TEXT,
    load         TEXT,
    dma_model    TEXT,
    member       TEXT,
    platform     TEXT,
    bound        REAL,
    predicted    REAL,
    observed     REAL,
    tightness    REAL,
    sound        INTEGER,
    cache_key    TEXT,
    label        TEXT NOT NULL DEFAULT '',
    recorded_utc TEXT NOT NULL,
    PRIMARY KEY (run_id, cell)
);
CREATE INDEX IF NOT EXISTS results_by_cell ON results (cell);
"""

#: Columns a result row carries beyond the described cell fields.
ROW_FIELDS = CELL_FIELDS + ("cache_key", "label", "recorded_utc", "run_id")


class ResultStore:
    """Sqlite result store over a cache directory.

    Args:
        path: either the database file itself or a cache *directory*
            (``results.sqlite`` is placed inside).  ``":memory:"``
            builds a throwaway store for tests.

    Thread-safe within a process (internal lock) and safe across
    processes (WAL + busy timeout; every write is one short
    transaction).  A corrupt database is quarantined and rebuilt, with
    the preserved file named by :attr:`quarantined`.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._lock = threading.RLock()
        target = str(path)
        if target != ":memory:":
            as_path = Path(target)
            if as_path.is_dir() or not as_path.suffix:
                as_path.mkdir(parents=True, exist_ok=True)
                as_path = as_path / STORE_FILENAME
            else:
                as_path.parent.mkdir(parents=True, exist_ok=True)
            target = str(as_path)
        self._path = target
        self.quarantined: str | None = None
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError as exc:
            if self._path == ":memory:":
                raise
            self.quarantined = self._quarantine(exc)
            self._conn = self._open()

    @property
    def path(self) -> str:
        return self._path

    def _open(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._path, check_same_thread=False)
        try:
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            verdict = conn.execute("PRAGMA quick_check").fetchone()
            if verdict is None or verdict[0] != "ok":
                raise sqlite3.DatabaseError(
                    f"integrity check failed: {verdict!r}"
                )
            with conn:
                conn.executescript(_SCHEMA)
                self._migrate(conn)
        except BaseException:
            conn.close()
            raise
        return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring an older database up to :data:`SCHEMA_VERSION` in place.

        Migration is additive (``ALTER TABLE ... ADD COLUMN``) so a v1
        database written by an older library opens — rows intact,
        missing columns null — rather than being quarantined or
        rebuilt.  A database from a *newer* library is refused: silently
        dropping columns it relies on would corrupt its meaning.
        """
        row = conn.execute("SELECT version FROM schema_info").fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO schema_info (version) VALUES (?)",
                (SCHEMA_VERSION,),
            )
            return
        version = row[0]
        if version > SCHEMA_VERSION:
            raise StoreError(
                f"result store schema v{version} is newer than this "
                f"library understands (v{SCHEMA_VERSION}); refusing to "
                "downgrade it"
            )
        if version == SCHEMA_VERSION:
            return
        result_columns = {
            row[1] for row in conn.execute("PRAGMA table_info(results)")
        }
        for column, decl in (
            ("dma_model", "TEXT"),
            ("member", "TEXT"),
            ("platform", "TEXT"),
        ):
            if column not in result_columns:
                conn.execute(
                    f"ALTER TABLE results ADD COLUMN {column} {decl}"
                )
        run_columns = {
            row[1] for row in conn.execute("PRAGMA table_info(runs)")
        }
        if "engine_mode" not in run_columns:
            conn.execute(
                "ALTER TABLE runs ADD COLUMN engine_mode "
                "TEXT NOT NULL DEFAULT ''"
            )
        conn.execute("UPDATE schema_info SET version = ?", (SCHEMA_VERSION,))

    def _quarantine(self, cause: Exception) -> str:
        """Move the corrupt database (and WAL sidecars) out of the way."""
        stamp = utc_file_stamp()
        target = f"{self._path}.corrupt-{stamp}"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{self._path}.corrupt-{stamp}.{suffix}"
        os.replace(self._path, target)
        for sidecar in ("-wal", "-shm"):
            try:
                os.replace(self._path + sidecar, target + sidecar)
            except FileNotFoundError:
                pass
        warnings.warn(
            f"result store {self._path} failed its integrity check "
            f"({cause}); quarantined to {target} and rebuilt empty — "
            "recorded runs before the corruption are preserved there "
            "but no longer queryable",
            RuntimeWarning,
            stacklevel=3,
        )
        return target

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin_run(
        self,
        *,
        engine_mode: str = "",
        label: str = "",
        run_id: str | None = None,
    ) -> str:
        """Open one recorded run, stamped with full provenance.

        Returns the run id.  Pass ``run_id`` to adopt an external
        identity (the coordinator reuses its job ids so ``repro diff``
        selectors and ``repro status`` name the same thing); re-opening
        an existing id is a no-op, so retried submissions stay safe.
        """
        run_id = run_id or secrets.token_hex(6)
        meta = run_metadata()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR IGNORE INTO runs (run_id, started_utc, "
                "library_version, git_rev, engine_mode, label) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    meta["started_utc"],
                    meta["library_version"],
                    meta["git_rev"],
                    engine_mode,
                    label,
                ),
            )
        return run_id

    def record_result(
        self,
        run_id: str,
        label: str,
        value: Any,
        *,
        cache_key: str | None = None,
    ) -> int:
        """Record one completed job's cells; returns rows written."""
        return self.record_batch(
            run_id, [(label, value, cache_key)]
        )

    def record_batch(
        self,
        run_id: str,
        completed: Iterable[tuple[str, Any, str | None]],
    ) -> int:
        """Record many ``(label, value, cache_key)`` jobs in one commit.

        Cells are keyed ``(run_id, cell)`` with last-writer-wins
        replacement, so re-recording a cache-hit batch is idempotent.
        """
        stamp = utc_now_iso()
        rows: list[tuple] = []
        for label, value, cache_key in completed:
            for cell in describe_result(label, value):
                rows.append(
                    tuple(cell[field] for field in CELL_FIELDS)
                    + (cache_key, label, stamp, run_id)
                )
        if not rows:
            return 0
        columns = ", ".join(ROW_FIELDS)
        holes = ", ".join("?" for _ in ROW_FIELDS)
        with self._lock, self._conn:
            self._conn.executemany(
                f"INSERT OR REPLACE INTO results ({columns}) "
                f"VALUES ({holes})",
                rows,
            )
        return len(rows)

    # ------------------------------------------------------------------
    # Backfill
    # ------------------------------------------------------------------
    def backfill(self, cache_dir: str | os.PathLike) -> dict[str, int]:
        """Describe existing disk-cache pickles into store rows.

        Scans every ``v<version>/`` namespace under ``cache_dir`` and
        records one run per namespace (run id ``backfill-v<version>``,
        idempotent: re-backfilling replaces the same cells).  Labels are
        unknown for cached pickles, so cells are keyed by their
        described identity columns alone.  Returns
        ``{version: rows_recorded}``.
        """
        recorded: dict[str, int] = {}
        root = Path(cache_dir)
        for namespace in sorted(root.glob("v*")):
            if not namespace.is_dir():
                continue
            version = namespace.name[1:]
            completed: list[tuple[str, Any, str | None]] = []
            for entry in sorted(namespace.glob("*.pkl")):
                try:
                    with open(entry, "rb") as handle:
                        value = pickle.load(handle)
                except (OSError, pickle.UnpicklingError, EOFError,
                        AttributeError, ImportError):
                    continue  # torn or unloadable entry: skip, not fatal
                completed.append(("", value, entry.stem))
            if not completed:
                continue
            run_id = self.begin_run(
                engine_mode="backfill",
                label=f"backfill of cache namespace v{version}",
                run_id=f"backfill-v{version}",
            )
            count = self.record_batch(run_id, completed)
            recorded[version] = count
        return recorded

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def runs(self) -> list[dict[str, Any]]:
        """Every recorded run, newest first, with its cell count."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT r.run_id, r.started_utc, r.library_version, "
                "r.git_rev, r.engine_mode, r.label, COUNT(c.cell) "
                "FROM runs r LEFT JOIN results c ON c.run_id = r.run_id "
                "GROUP BY r.run_id "
                "ORDER BY r.started_utc DESC, r.run_id DESC"
            ).fetchall()
        return [
            {
                "run_id": run_id,
                "started_utc": started,
                "library_version": version,
                "git_rev": git_rev,
                "engine_mode": mode,
                "label": label,
                "cells": cells,
            }
            for run_id, started, version, git_rev, mode, label, cells in rows
        ]

    def rows(self, run_ids: str | Sequence[str]) -> list[dict[str, Any]]:
        """All cells of the given run(s), as dicts keyed by
        :data:`ROW_FIELDS`.  With several runs, the *latest* row per
        cell wins (runs merge in start order), so a selector like
        ``rev:abc123`` behaves as "the newest known value of every cell
        at that revision"."""
        if isinstance(run_ids, str):
            run_ids = [run_ids]
        if not run_ids:
            return []
        ordered = self._in_start_order(run_ids)
        merged: dict[str, dict[str, Any]] = {}
        columns = ", ".join(ROW_FIELDS)
        with self._lock:
            for run_id in ordered:
                fetched = self._conn.execute(
                    f"SELECT {columns} FROM results WHERE run_id = ? "
                    "ORDER BY cell",
                    (run_id,),
                ).fetchall()
                for values in fetched:
                    row = dict(zip(ROW_FIELDS, values))
                    if row["sound"] is not None:
                        row["sound"] = bool(row["sound"])
                    merged[row["cell"]] = row
        return [merged[cell] for cell in sorted(merged)]

    def _in_start_order(self, run_ids: Sequence[str]) -> list[str]:
        """The given runs sorted oldest-first by their start stamp."""
        with self._lock:
            stamps = dict(
                self._conn.execute(
                    "SELECT run_id, started_utc FROM runs WHERE run_id "
                    f"IN ({', '.join('?' for _ in run_ids)})",
                    list(run_ids),
                ).fetchall()
            )
        return sorted(run_ids, key=lambda rid: (stamps.get(rid, ""), rid))

    # ------------------------------------------------------------------
    # Selectors
    # ------------------------------------------------------------------
    def resolve(self, selector: str) -> list[str]:
        """Resolve one run selector to run ids (newest first).

        Accepted forms:

        * an exact run id (as printed by ``repro store``);
        * ``latest`` — the most recent run; ``latest~N`` — N runs back;
        * ``rev:<prefix>`` — every run whose git revision starts with
          the prefix;
        * ``version:<v>`` — every run recorded by library version `v`.

        Multi-run selectors merge through :meth:`rows` (latest cell
        wins).  Raises :class:`~repro.errors.StoreError` when nothing
        matches.
        """
        if not selector:
            raise StoreError("empty run selector")
        if selector.startswith("rev:"):
            prefix = selector[len("rev:"):]
            if not prefix:
                raise StoreError("empty revision in 'rev:' selector")
            matched = self._run_ids_where(
                "git_rev LIKE ?", (prefix + "%",)
            )
            if not matched:
                raise StoreError(
                    f"no recorded runs at a revision matching {prefix!r}"
                )
            return matched
        if selector.startswith("version:"):
            version = selector[len("version:"):]
            matched = self._run_ids_where(
                "library_version = ?", (version,)
            )
            if not matched:
                raise StoreError(
                    f"no recorded runs from library version {version!r}"
                )
            return matched
        if selector == "latest" or selector.startswith("latest~"):
            back = 0
            if selector.startswith("latest~"):
                try:
                    back = int(selector[len("latest~"):])
                except ValueError:
                    raise StoreError(
                        f"bad selector {selector!r}: expected latest~N"
                    ) from None
                if back < 0:
                    raise StoreError(
                        f"bad selector {selector!r}: N must be >= 0"
                    )
            known = self._run_ids_where("1", ())
            if back >= len(known):
                raise StoreError(
                    f"selector {selector!r} reaches past the "
                    f"{len(known)} recorded run(s)"
                )
            return [known[back]]
        if self._run_ids_where("run_id = ?", (selector,)):
            return [selector]
        raise StoreError(
            f"unknown run selector {selector!r}: not a recorded run id, "
            "latest[~N], rev:<prefix> or version:<v>"
        )

    def _run_ids_where(self, clause: str, params: tuple) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                f"SELECT run_id FROM runs WHERE {clause} "
                "ORDER BY started_utc DESC, run_id DESC",
                params,
            ).fetchall()
        return [row[0] for row in rows]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def vacuum(self) -> None:
        """Compact the database file (after deletes or a big backfill)."""
        with self._lock:
            self._conn.execute("VACUUM")

    def delete_runs(self, run_ids: Sequence[str]) -> int:
        """Drop the given runs and their cells; returns runs removed."""
        if not run_ids:
            return 0
        holes = ", ".join("?" for _ in run_ids)
        with self._lock, self._conn:
            self._conn.execute(
                f"DELETE FROM results WHERE run_id IN ({holes})",
                list(run_ids),
            )
            cursor = self._conn.execute(
                f"DELETE FROM runs WHERE run_id IN ({holes})",
                list(run_ids),
            )
            return cursor.rowcount
