"""Differential regression reports between two recorded runs.

``repro diff A B`` answers the question the whole store exists for:
*did any bound move?*  Cells are matched by their identity key (see
:mod:`repro.store.describe`) and classified:

* **changed** — bound, predicted, observed or tightness differs.
  Comparison is exact (``repr``-level float equality): the engine is
  deterministic and byte-identical across execution modes, so *any*
  numeric drift is a finding, never noise.
* **sound-flip** — the soundness verdict flipped.  Always also a
  regression, reported separately because an unsound flip is the worst
  kind of drift a reproduction can have.
* **missing** / **new** — a cell present on one side only (a job set
  shrank or grew between the runs).

The report is a first-class artifact (kind ``"diff"``) so the standard
table renderer and CSV/JSON exporters handle it unchanged, and
:attr:`DiffReport.regression` drives the CLI's exit code: any changed,
missing or sound-flipped cell is a regression for CI purposes; cells
only *added* are not (growing the matrix is progress, not drift).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from repro.engine.artifact import ExperimentArtifact, artifact

#: Value columns compared per cell, in report order.
VALUE_FIELDS = ("bound", "predicted", "observed", "tightness")

#: Column order of the ``diff`` artifact kind.
DIFF_COLUMNS = (
    "status",
    "cell",
    "scenario",
    "model",
    "field",
    "before",
    "after",
    "delta",
)


@dataclasses.dataclass(frozen=True)
class CellDiff:
    """One cell's difference between the two runs.

    ``status`` is one of ``changed``, ``sound-flip``, ``missing`` or
    ``new``; ``fields`` maps each differing value column to its
    ``(before, after)`` pair (empty for missing/new cells).
    """

    status: str
    cell: str
    scenario: str | None
    model: str | None
    fields: Mapping[str, tuple[Any, Any]]

    @property
    def regression(self) -> bool:
        return self.status in ("changed", "sound-flip", "missing")


@dataclasses.dataclass(frozen=True)
class DiffReport:
    """The full comparison of two run selections."""

    before: str
    after: str
    cells_before: int
    cells_after: int
    unchanged: int
    diffs: tuple[CellDiff, ...]

    @property
    def regression(self) -> bool:
        """Whether CI should fail on this comparison."""
        return any(diff.regression for diff in self.diffs)

    def counts(self) -> dict[str, int]:
        tally = {"changed": 0, "sound-flip": 0, "missing": 0, "new": 0}
        for diff in self.diffs:
            tally[diff.status] += 1
        return tally


def _values_differ(before: Any, after: Any) -> bool:
    """Exact inequality that treats the two NULL spellings as equal."""
    if before is None or after is None:
        return (before is None) != (after is None)
    # repr-exact: 0.1 + 0.2 != 0.3 here, deliberately.  NaN never
    # equals itself, so a NaN cell always reports as changed — a NaN
    # bound appearing is exactly the kind of drift to surface.
    return not (before == after)


def diff_rows(
    before_rows: Sequence[Mapping[str, Any]],
    after_rows: Sequence[Mapping[str, Any]],
    *,
    before: str = "before",
    after: str = "after",
) -> DiffReport:
    """Compare two row sets (as returned by :meth:`ResultStore.rows`)."""
    lhs = {row["cell"]: row for row in before_rows}
    rhs = {row["cell"]: row for row in after_rows}
    diffs: list[CellDiff] = []
    unchanged = 0
    for cell in sorted(set(lhs) | set(rhs)):
        old, new = lhs.get(cell), rhs.get(cell)
        if old is None or new is None:
            present = new if old is None else old
            diffs.append(
                CellDiff(
                    status="new" if old is None else "missing",
                    cell=cell,
                    scenario=present.get("scenario"),
                    model=present.get("model"),
                    fields={},
                )
            )
            continue
        changed = {
            field: (old.get(field), new.get(field))
            for field in VALUE_FIELDS
            if _values_differ(old.get(field), new.get(field))
        }
        flipped = old.get("sound") != new.get("sound")
        if flipped:
            changed["sound"] = (old.get("sound"), new.get("sound"))
        if changed:
            diffs.append(
                CellDiff(
                    status="sound-flip" if flipped else "changed",
                    cell=cell,
                    scenario=new.get("scenario"),
                    model=new.get("model"),
                    fields=changed,
                )
            )
        else:
            unchanged += 1
    return DiffReport(
        before=before,
        after=after,
        cells_before=len(lhs),
        cells_after=len(rhs),
        unchanged=unchanged,
        diffs=tuple(diffs),
    )


def diff_runs(store: Any, before: str, after: str) -> DiffReport:
    """Diff two run selectors against one :class:`ResultStore`."""
    before_ids = store.resolve(before)
    after_ids = store.resolve(after)
    return diff_rows(
        store.rows(before_ids),
        store.rows(after_ids),
        before=before,
        after=after,
    )


def _delta(pair: tuple[Any, Any]) -> Any:
    old, new = pair
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if not isinstance(old, bool) and not isinstance(new, bool):
            return new - old
    return None


def diff_artifact(report: DiffReport) -> ExperimentArtifact:
    """The report as a ``diff``-kind artifact (one row per differing
    field, plus one row per missing/new cell)."""
    records: list[dict[str, Any]] = []
    for diff in report.diffs:
        if not diff.fields:
            records.append(
                {
                    "status": diff.status,
                    "cell": diff.cell,
                    "scenario": diff.scenario,
                    "model": diff.model,
                    "field": None,
                    "before": None,
                    "after": None,
                    "delta": None,
                }
            )
            continue
        for field in (*VALUE_FIELDS, "sound"):
            if field not in diff.fields:
                continue
            old, new = diff.fields[field]
            records.append(
                {
                    "status": diff.status,
                    "cell": diff.cell,
                    "scenario": diff.scenario,
                    "model": diff.model,
                    "field": field,
                    "before": old,
                    "after": new,
                    "delta": _delta(diff.fields[field]),
                }
            )
    counts = report.counts()
    return artifact(
        "diff",
        f"Result diff: {report.before} -> {report.after}",
        DIFF_COLUMNS,
        records,
        before=report.before,
        after=report.after,
        cells_before=report.cells_before,
        cells_after=report.cells_after,
        unchanged=report.unchanged,
        regression=report.regression,
        **counts,
    )
