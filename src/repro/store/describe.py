"""Flatten heterogeneous job results into result-store cells.

Engine jobs return whatever their driver defined — ``Figure4Row``,
``ScenarioRunResult``, ``FamilyRunResult``, ``SoundnessCase``, lists of
``AblationRow``, raw measurement records — and the result store must
turn each of them into *cells*: flat rows carrying the identity columns
the differ compares on (kind / scenario / model / load / dma_model /
member) plus the numbers (bound / predicted / observed / tightness /
sound).

Extraction is duck-typed on attribute names rather than imported types,
for two reasons: the store package must stay import-light (the engine
runner loads it, and the analysis drivers import the runner — a type
import here would be a cycle), and backfilled pickles from older library
versions should keep describing as long as their field names survive.

Anything unrecognised still produces one generic cell keyed by the job's
label, so a run's cell set always covers its whole batch — "new/missing
cells" in a diff means new/missing *jobs*, never silently skipped ones.
"""

from __future__ import annotations

from typing import Any

#: The only platform target today; the platform registry planned in the
#: ROADMAP will thread real names through here.
DEFAULT_PLATFORM = "tc27x"

#: Identity + value keys of one described cell.  ``cell`` is the
#: diff key: unique within a run, stable across runs of the same batch.
CELL_FIELDS = (
    "cell",
    "kind",
    "scenario",
    "model",
    "load",
    "dma_model",
    "member",
    "platform",
    "bound",
    "predicted",
    "observed",
    "tightness",
    "sound",
)


def _has(value: Any, *names: str) -> bool:
    return all(hasattr(value, name) for name in names)


def _tightness(predicted: float | None, observed: float | None) -> float | None:
    """Prediction over observation (1.0 = perfectly tight)."""
    if predicted is None or not observed:
        return None
    return predicted / observed


def _kind(label: str, fallback: str) -> str:
    """Job-family tag: the label prefix before the first ``:``."""
    if label:
        head = label.split(":", 1)[0]
        if head:
            return head
    return fallback


def _cell(
    kind: str,
    scenario: str | None,
    model: str | None,
    load: str | None,
    dma_model: str | None,
    member: str | None,
) -> str:
    parts = [kind]
    for part in (scenario, member, model, load, dma_model):
        if part:
            parts.append(str(part))
    return "/".join(parts)


def _row(
    *,
    kind: str,
    scenario: str | None = None,
    model: str | None = None,
    load: str | None = None,
    dma_model: str | None = None,
    member: str | None = None,
    bound: float | None = None,
    predicted: float | None = None,
    observed: float | None = None,
    tightness: float | None = None,
    sound: bool | None = None,
) -> dict[str, Any]:
    return {
        "cell": _cell(kind, scenario, model, load, dma_model, member),
        "kind": kind,
        "scenario": scenario,
        "model": model,
        "load": load,
        "dma_model": dma_model,
        "member": member,
        "platform": DEFAULT_PLATFORM,
        "bound": float(bound) if bound is not None else None,
        "predicted": float(predicted) if predicted is not None else None,
        "observed": float(observed) if observed is not None else None,
        "tightness": tightness,
        "sound": None if sound is None else bool(sound),
    }


def _describe_figure4(value: Any, label: str) -> list[dict[str, Any]]:
    observed = value.observed_slowdown
    return [
        _row(
            kind=_kind(label, "figure4"),
            scenario=value.scenario,
            model=value.model,
            load=value.load,
            bound=value.delta_cycles,
            predicted=value.slowdown,
            observed=observed,
            tightness=_tightness(value.slowdown, observed),
            sound=value.sound,
        )
    ]


def _describe_scenario_run(value: Any, label: str) -> list[dict[str, Any]]:
    return [
        _row(
            kind=_kind(label, "scenario-run"),
            scenario=value.spec_name,
            model=value.model,
            dma_model=value.dma_model,
            bound=value.joint_delta + value.dma_delta,
            predicted=value.predicted_slowdown,
            observed=value.observed_slowdown,
            tightness=_tightness(
                value.predicted_slowdown, value.observed_slowdown
            ),
            sound=value.sound,
        )
    ]


def _describe_family_run(value: Any, label: str) -> list[dict[str, Any]]:
    run = value.run
    return [
        _row(
            kind=_kind(label, "family"),
            scenario=value.member.family,
            member=value.member.name,
            model=run.model,
            dma_model=run.dma_model,
            bound=run.joint_delta + run.dma_delta,
            predicted=run.predicted_slowdown,
            observed=run.observed_slowdown,
            tightness=_tightness(
                run.predicted_slowdown, run.observed_slowdown
            ),
            sound=run.sound,
        )
    ]


def _describe_soundness(value: Any, label: str) -> list[dict[str, Any]]:
    rows = []
    for model, predicted in sorted(value.predictions.items()):
        rows.append(
            _row(
                kind=_kind(label, "soundness"),
                scenario=value.name,
                model=model,
                bound=predicted,
                predicted=predicted / value.isolation_cycles,
                observed=value.observed_slowdown,
                tightness=value.tightness(model),
                sound=model not in value.violations,
            )
        )
    return rows


def _describe_ablation(value: Any, label: str) -> list[dict[str, Any]]:
    return [
        _row(
            kind=_kind(label, "ablation"),
            scenario=value.scenario,
            model=value.model,
            load=value.load,
            bound=value.delta_cycles,
            predicted=value.slowdown,
        )
    ]


def _describe_one(value: Any, label: str) -> list[dict[str, Any]] | None:
    """Describe one recognisable result object, or ``None``."""
    if _has(value, "scenario", "load", "model", "delta_cycles", "slowdown"):
        if _has(value, "observed_slowdown", "sound"):
            return _describe_figure4(value, label)
        return _describe_ablation(value, label)
    if _has(value, "spec_name", "joint_delta", "predicted_slowdown"):
        return _describe_scenario_run(value, label)
    if _has(value, "member", "run") and _has(value.member, "family", "name"):
        return _describe_family_run(value, label)
    if _has(value, "predictions", "violations", "isolation_cycles"):
        return _describe_soundness(value, label)
    return None


def describe_result(label: str, value: Any) -> list[dict[str, Any]]:
    """Flatten one job result into its result-store cells.

    Returns at least one row.  Lists/tuples of recognisable results
    expand one cell per element; anything unrecognised becomes a single
    generic cell keyed by the job label (bound columns null), so runs
    remain diffable job-for-job even for measurement-only stages.
    """
    rows = _describe_one(value, label)
    if rows is not None:
        return _disambiguate(rows)
    if isinstance(value, (list, tuple)) and value:
        expanded: list[dict[str, Any]] = []
        for element in value:
            described = _describe_one(element, label)
            if described is None:
                expanded = []
                break
            expanded.extend(described)
        if expanded:
            return _disambiguate(expanded)
    kind = _kind(label, type(value).__qualname__)
    row = _row(kind=kind)
    row["cell"] = label or kind
    return [row]


def _disambiguate(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Suffix duplicate cell keys so one job's rows stay distinct."""
    seen: dict[str, int] = {}
    for row in rows:
        key = row["cell"]
        count = seen.get(key, 0)
        seen[key] = count + 1
        if count:
            row["cell"] = f"{key}#{count}"
    return rows
