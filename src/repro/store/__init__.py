"""``repro.store`` — the incremental result store and its differ.

The queryable layer over the raw pickle cache: every completed engine
job lands as one-or-more provenance-stamped sqlite rows
(:class:`ResultStore`), and ``repro diff`` compares any two recorded
runs, revisions or library versions cell-by-cell (:func:`diff_runs`).
See :mod:`repro.store.resultstore` for the full story.
"""

from repro.store.describe import CELL_FIELDS, describe_result
from repro.store.diff import (
    CellDiff,
    DiffReport,
    diff_artifact,
    diff_rows,
    diff_runs,
)
from repro.store.resultstore import (
    ResultStore,
    ROW_FIELDS,
    SCHEMA_VERSION,
    STORE_FILENAME,
)

__all__ = [
    "CELL_FIELDS",
    "CellDiff",
    "DiffReport",
    "ResultStore",
    "ROW_FIELDS",
    "SCHEMA_VERSION",
    "STORE_FILENAME",
    "describe_result",
    "diff_artifact",
    "diff_rows",
    "diff_runs",
]
