"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by subsystem:
platform description, ILP solving, simulation and model construction.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PlatformError(ReproError):
    """Invalid platform description or query (targets, memory map, ...)."""


class InvalidAccessError(PlatformError):
    """An (target, operation) pair that the TC27x architecture forbids.

    The canonical example is a *code* access to the DFlash interface:
    Figure 2 / Table 3 of the paper show code can only be fetched from
    pf0, pf1 or the LMU.
    """


class DeploymentError(PlatformError):
    """A deployment configuration violates Table 3 placement constraints."""


class CounterError(ReproError):
    """Inconsistent or incomplete debug-counter readings."""


class ModelError(ReproError):
    """A contention model was given inputs it cannot work with."""


class IlpError(ReproError):
    """Base class for ILP-substrate failures."""


class IlpInfeasibleError(IlpError):
    """The ILP instance admits no feasible point."""


class IlpUnboundedError(IlpError):
    """The ILP objective can be improved without bound."""


class IlpNumericalError(IlpError):
    """The solver lost numerical precision (ill-conditioned instance)."""


class SimulationError(ReproError):
    """The simulator was configured or driven inconsistently."""


class WorkloadError(ReproError):
    """A workload specification is malformed (negative counts, ...)."""


class EngineError(ReproError):
    """The experiment engine was misused (unknown scenario, bad batch,
    unhashable cache key, invalid execution mode, ...)."""


class StoreError(ReproError):
    """The result store was misused (unknown run id, bad selector,
    diffing a run against itself, ...)."""


class JobCancelledError(EngineError):
    """A service job was cancelled before it completed.

    Raised by clients waiting on a cancelled job (``repro watch``,
    ``mode="service"`` execution): the coordinator will never report
    the job complete, so waiting further is pointless.  Results of
    units that finished before the cancel remain downloadable."""


class RemoteError(EngineError):
    """The remote execution backend failed at the protocol level.

    Raised for wire-format violations (undecodable envelopes, protocol
    version mismatches, truncated result batches) and for remote job
    failures whose original exception could not be reconstructed on the
    client.  Transport-level worker failures (connection refused, request
    timeout) are *not* surfaced as errors — the client retries them on
    surviving workers and, with none left, the engine falls back to
    in-process execution."""
