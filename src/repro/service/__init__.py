"""Analysis as a service: a durable job queue with dial-in workers.

Where ``mode="remote"`` is a *client-driven* fan-out (one CLI process
pushes batches at a static worker list and must stay alive for the
answer), this package inverts the arrangement into a long-running
service:

* the **coordinator** (:mod:`~repro.service.coordinator`) owns a
  sqlite-backed queue (:mod:`~repro.service.store`) — submitted jobs,
  their warm-group-sharded units, leases and results all survive a
  coordinator restart;
* **workers** (:mod:`~repro.service.pull`) dial *in*: they
  auto-register, lease units, execute them through the same path as the
  push backend (shared :class:`~repro.engine.cache.ResultCache` dedupe
  included) and heartbeat; a worker that vanishes has its leases
  re-queued under a bumped fence, so nothing is lost and nothing is
  double-counted;
* **clients** (:mod:`~repro.service.client`) submit and walk away: a
  named job set (:mod:`~repro.service.jobsets`) or any engine batch via
  ``mode="service"`` comes back byte-identical to serial execution.

Three-terminal quickstart::

    # terminal 1 — the coordinator (queue state in .repro-service/)
    repro serve --port 8751

    # terminal 2 (and 3, 4, ...) — workers, wherever there are cores
    repro worker --coordinator http://127.0.0.1:8751

    # terminal 3 — submit, poll, render
    repro submit figure4 --coordinator http://127.0.0.1:8751
    repro status  <job-id> --coordinator http://127.0.0.1:8751
    repro watch   <job-id> --coordinator http://127.0.0.1:8751
    repro jobs --workers   --coordinator http://127.0.0.1:8751

Any existing driver runs through the service unchanged by passing
``--coordinator URL`` instead of ``--workers URL,...`` (engine
``mode="service"``); multi-phase drivers submit one queue job per
engine batch.  Results are byte-identical to serial runs either way.

Robustness layer: every networked loop in the package waits under the
shared :mod:`~repro.service.retry` policy (exponential backoff, jitter,
total deadlines, retryable-fault classification); the store runs WAL
with quarantine-and-rebuild of corrupt databases; jobs are cancellable
(``repro jobs --cancel``) and workers that upload malformed completions
are quarantined.  The :mod:`~repro.service.chaos` proxy injects
scripted network and process faults (``repro chaos``), and the chaos
test suite is the standing proof that the exactly-once and
byte-identity guarantees survive them.
"""

from repro.service.chaos import (
    ChaosProxy,
    FaultPlan,
    FaultRule,
    parse_fault_spec,
    serve_chaos,
)
from repro.service.client import (
    ServiceExecutor,
    ServiceStats,
    cancel_job,
    coordinator_health,
    fetch_results,
    job_status,
    list_jobs,
    list_workers,
    submit_jobs,
    wait_for_job,
)
from repro.service.coordinator import (
    DEFAULT_COORDINATOR_PORT,
    CoordinatorServer,
    serve,
)
from repro.service.jobsets import (
    JobSet,
    get_job_set,
    job_set_names,
    parse_job_set_args,
)
from repro.service.pull import PullWorker, serve_pull
from repro.service.retry import (
    Backoff,
    RetryPolicy,
    retryable_exchange,
    retryable_fault,
)
from repro.service.store import JobRecord, JobStore, UnitSpec

__all__ = [
    "Backoff",
    "ChaosProxy",
    "CoordinatorServer",
    "DEFAULT_COORDINATOR_PORT",
    "FaultPlan",
    "FaultRule",
    "JobRecord",
    "JobSet",
    "JobStore",
    "PullWorker",
    "RetryPolicy",
    "ServiceExecutor",
    "ServiceStats",
    "UnitSpec",
    "cancel_job",
    "coordinator_health",
    "fetch_results",
    "get_job_set",
    "job_set_names",
    "job_status",
    "list_jobs",
    "list_workers",
    "parse_fault_spec",
    "parse_job_set_args",
    "retryable_exchange",
    "retryable_fault",
    "serve",
    "serve_chaos",
    "serve_pull",
    "submit_jobs",
    "wait_for_job",
]
