"""Named job sets: the batches ``repro submit`` can queue by name.

A *job set* packages one single-batch analysis driver for
fire-and-forget submission: its ``build`` step turns CLI arguments into
the exact engine job list the direct command runs, and its ``render``
step turns the collected results back into the identical artefact —
so ``repro submit figure4`` followed by ``repro watch <id>`` prints the
same bytes ``repro figure4`` does, just through a coordinator queue and
whatever workers happened to be registered.

The submitted arguments travel with the job (``meta["argv"]``), which
is what makes rendering reproducible later and elsewhere: any client
polling the coordinator can re-parse them and render or ``--export``
the artefact without knowing how the job was submitted.

Multi-phase drivers (e.g. simulation-mode Figure 4, where measurement
jobs feed model jobs) cannot be queued as one batch; run those through
``mode="service"`` instead — ``repro figure4 --mode sim --coordinator
URL`` — which submits each phase as its own job and blocks in between.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Any, Callable, Sequence

from repro.errors import EngineError


@dataclasses.dataclass(frozen=True)
class JobSet:
    """One named, submittable single-batch job family.

    Attributes:
        name: registry key (``repro submit <name> ...``).
        help: one-line description for ``repro submit --list``.
        configure: installs the set's CLI arguments on a parser.
        build: parsed namespace → engine job list (plain picklable jobs).
        render: (results in job order, parsed namespace) → artefact
            text, byte-identical to the direct CLI command.  Honours the
            set's ``--export`` flag when it defines one.
    """

    name: str
    help: str
    configure: Callable[[argparse.ArgumentParser], None]
    build: Callable[[argparse.Namespace], list]
    render: Callable[[Sequence[Any], argparse.Namespace], str]


def _figure4_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        action="append",
        metavar="NAME",
        help="registered model to plot (repeatable)",
    )
    parser.add_argument(
        "--export",
        metavar="PATH.{json,csv}",
        help="write rows instead of rendering",
    )


def _figure4_build(args: argparse.Namespace) -> list:
    from repro.analysis.experiments import figure4_paper_jobs

    models = tuple(args.model) if args.model else None
    kwargs = {"models": models} if models else {}
    return figure4_paper_jobs(**kwargs)


def _figure4_render(results: Sequence[Any], args: argparse.Namespace) -> str:
    from repro.analysis.report import render_figure4

    title = "Figure 4 (paper-counters mode)"
    if args.export:
        from repro.analysis.export import figure4_artifact, write_artifact

        write_artifact(figure4_artifact(results, title=title), args.export)
        return f"wrote {len(results)} rows to {args.export}"
    return render_figure4(results, title=title)


def _matrix_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", action="append", metavar="NAME")
    parser.add_argument("--spec", action="append", metavar="NAME")
    parser.add_argument(
        "--export",
        metavar="PATH.{json,csv}",
        help="write cells instead of rendering",
    )


def _matrix_build(args: argparse.Namespace) -> list:
    from repro.analysis.experiments import model_scenario_matrix_jobs

    return model_scenario_matrix_jobs(
        models=tuple(args.model) if args.model else None,
        specs=tuple(args.spec) if args.spec else None,
    )


def _matrix_render(results: Sequence[Any], args: argparse.Namespace) -> str:
    from repro.analysis.export import matrix_artifact, write_artifact
    from repro.analysis.report import render_artifact

    item = matrix_artifact(
        list(results),
        title=(
            "Model × scenario matrix "
            f"({len({r.model for r in results})} models × "
            f"{len({r.spec_name for r in results})} specs)"
        ),
    )
    if args.export:
        write_artifact(item, args.export)
        return f"wrote {len(results)} matrix cells to {args.export}"
    return render_artifact(item)


def _family_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("family", help="registered family name")
    parser.add_argument("--model", metavar="NAME")
    parser.add_argument("--member", action="append", metavar="NAME")
    parser.add_argument(
        "--export",
        metavar="PATH.{json,csv}",
        help="write rows instead of rendering",
    )


def _family_parts(args: argparse.Namespace):
    from repro.engine.families import (
        _member_subset,
        _resolve_models,
        expand_family,
        get_family,
    )

    family = get_family(args.family)
    model, dma_model = _resolve_models(family, args.model, None)
    members = _member_subset(
        expand_family(family), tuple(args.member) if args.member else None
    )
    return family, members, model, dma_model


def _family_build(args: argparse.Namespace) -> list:
    from repro.engine.families import _member_jobs

    family, members, model, dma_model = _family_parts(args)
    return _member_jobs(family, members, model, dma_model, None, None, None)


def _family_render(results: Sequence[Any], args: argparse.Namespace) -> str:
    from repro.analysis.export import family_artifact, write_artifact
    from repro.analysis.report import render_artifact
    from repro.engine.families import FamilyRunResult

    _family, members, _model, _dma = _family_parts(args)
    rows = [
        FamilyRunResult(member=member, run=run)
        for member, run in zip(members, results)
    ]
    title = f"Family run ({args.family}, {len(rows)} member runs)"
    item = family_artifact(rows, title=title)
    if args.export:
        write_artifact(item, args.export)
        return f"wrote {len(rows)} member runs to {args.export}"
    return render_artifact(item)


def _soundness_configure(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pairs", type=int, default=5)
    parser.add_argument("--requests", type=int, default=1_000)
    parser.add_argument("--scenario", type=int, choices=(1, 2), default=1)


def _soundness_scenario(args: argparse.Namespace):
    from repro.platform.deployment import scenario_1, scenario_2

    return scenario_1() if args.scenario == 1 else scenario_2()


def _soundness_build(args: argparse.Namespace) -> list:
    from repro.analysis.validation import random_soundness_jobs

    return random_soundness_jobs(
        _soundness_scenario(args),
        pairs=args.pairs,
        max_requests=args.requests,
    )


def _soundness_render(
    results: Sequence[Any], args: argparse.Namespace
) -> str:
    from repro.analysis.report import render_soundness
    from repro.analysis.validation import SoundnessSweep

    sweep = SoundnessSweep(cases=tuple(results))
    return render_soundness(sweep, _soundness_scenario(args).name)


_JOB_SETS: dict[str, JobSet] = {
    js.name: js
    for js in (
        JobSet(
            name="figure4",
            help="Figure 4 bars from the published Table 6 readings",
            configure=_figure4_configure,
            build=_figure4_build,
            render=_figure4_render,
        ),
        JobSet(
            name="matrix",
            help="every counter-based model × every registered spec",
            configure=_matrix_configure,
            build=_matrix_build,
            render=_matrix_render,
        ),
        JobSet(
            name="family",
            help="one scenario family's grid end to end",
            configure=_family_configure,
            build=_family_build,
            render=_family_render,
        ),
        JobSet(
            name="soundness",
            help="randomized soundness sweep (seeded pairs)",
            configure=_soundness_configure,
            build=_soundness_build,
            render=_soundness_render,
        ),
    )
}


def job_set_names() -> tuple[str, ...]:
    """Registered job-set names, submission-menu order."""
    return tuple(_JOB_SETS)


def get_job_set(name: str) -> JobSet:
    """Resolve a job set by name (:class:`EngineError` on unknown)."""
    try:
        return _JOB_SETS[name]
    except KeyError:
        raise EngineError(
            f"unknown job set {name!r}; available: "
            f"{', '.join(job_set_names())}"
        ) from None


def parse_job_set_args(name: str, argv: Sequence[str]) -> argparse.Namespace:
    """Parse one job set's argument vector (used at submit *and* render
    time — the argv round-trips through the coordinator as job meta)."""
    job_set = get_job_set(name)
    parser = argparse.ArgumentParser(prog=f"repro submit {name}")
    job_set.configure(parser)
    return parser.parse_args(list(argv))
