"""The service client: submit batches, poll progress, collect results.

Two consumers share this module.  The ``repro submit`` / ``status`` /
``watch`` / ``jobs`` commands use the plain functions — submit a named
job set, read back progress documents, download results.  The engine's
``mode="service"`` uses :class:`ServiceExecutor`, which makes any
existing analysis driver run through the coordinator unchanged: each
engine batch becomes one submitted job, the executor polls until the
queue drains it, and results scatter back into job order — so driver
output stays byte-identical to ``mode="serial"`` whichever registered
worker executed what.

Fault behaviour: a coordinator that cannot be reached at submission
time falls back to in-process execution (the engine counts it in
``stats.fallbacks``), and one that disappears *mid-poll* is retried for
an unreachable-grace window — long enough to ride out a coordinator
restart, after which the executor gives the batch back to the engine.
All waiting uses the shared :mod:`repro.service.retry` backoff, so idle
polls decay instead of hammering the coordinator at a fixed interval.
Job-level exceptions drain the whole batch first and re-raise the
lowest-indexed failing job's error, the same one serial mode surfaces.
A cancelled job raises :class:`~repro.errors.JobCancelledError` from
every waiter — there is nothing left to wait for.
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Sequence

from repro.engine.batch import Job
from repro.engine.remote.client import _cache_key
from repro.engine.remote.wire import (
    WireJob,
    WireResult,
    decode_document,
    decode_job_results,
    encode_document,
    encode_submit,
)
from repro.errors import EngineError, JobCancelledError, RemoteError
from repro.service.coordinator import (
    ACCEPTED_KIND,
    CANCEL_KIND,
    CANCELLED_KIND,
    HEALTH_PATH,
    JOBS_PATH,
    LIST_KIND,
    STATUS_KIND,
    SUBMIT_PATH,
    WORKER_LIST_KIND,
    WORKERS_PATH,
)
from repro.service.retry import (
    TRANSPORT_ERRORS,
    RetryPolicy,
    retryable_exchange,
)


def _post(url: str, path: str, body: bytes, *, timeout: float) -> bytes:
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read()


def _get(url: str, path: str, *, timeout: float) -> bytes:
    with urllib.request.urlopen(
        url.rstrip("/") + path, timeout=timeout
    ) as response:
        return response.read()


def coordinator_health(url: str, *, timeout: float = 5.0) -> dict:
    """Fetch the coordinator's ``/healthz`` document (raises on failure)."""
    return json.loads(_get(url, HEALTH_PATH, timeout=timeout).decode("utf-8"))


def submit_jobs(
    url: str,
    jobs: Sequence[Job],
    *,
    label: str = "",
    meta: dict | None = None,
    timeout: float = 60.0,
    retry: RetryPolicy | None = None,
) -> str:
    """Submit one batch to the coordinator; returns the job id.

    Cache keys are resolved client-side (the same content addresses
    every other mode uses), so the coordinator and the workers can
    dedupe against their shared caches without recomputing hashes.

    ``retry`` optionally retries transient submission faults under a
    policy deadline.  Resubmitting after an ambiguous failure is safe:
    jobs are pure and the coordinator's cache dedupes repeats, so a
    duplicate submission wastes work but never corrupts results.
    """
    items = [WireJob(item, _cache_key(item)) for item in jobs]
    body = encode_submit(items, label=label, meta=meta)

    def _attempt() -> bytes:
        return _post(url, SUBMIT_PATH, body, timeout=timeout)

    if retry is None:
        data = _attempt()
    else:
        data = retry.call(_attempt, description="job submission")
    answer = decode_document(data, ACCEPTED_KIND)
    job_id = answer.get("job_id")
    if not isinstance(job_id, str):
        raise RemoteError("submission answer carries no job_id")
    return job_id


def cancel_job(url: str, job_id: str, *, timeout: float = 30.0) -> dict:
    """Cancel one job (``POST /jobs/<id>/cancel``); returns its status
    fields.  Safe to repeat — cancellation is idempotent."""
    body = encode_document(CANCEL_KIND, {"job_id": job_id})
    try:
        data = _post(
            url, f"{JOBS_PATH}/{job_id}/cancel", body, timeout=timeout
        )
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            raise EngineError(f"unknown job id {job_id!r}") from exc
        raise
    return decode_document(data, CANCELLED_KIND)


def job_status(url: str, job_id: str, *, timeout: float = 30.0) -> dict:
    """One job's progress document (includes per-unit states)."""
    data = _get(url, f"{JOBS_PATH}/{job_id}", timeout=timeout)
    return decode_document(data, STATUS_KIND)


def list_jobs(url: str, *, timeout: float = 30.0) -> list[dict]:
    """Every job the coordinator knows, newest first."""
    data = _get(url, JOBS_PATH, timeout=timeout)
    return decode_document(data, LIST_KIND).get("jobs", [])


def list_workers(url: str, *, timeout: float = 30.0) -> list[dict]:
    """The worker registry with per-worker execution counters."""
    data = _get(url, WORKERS_PATH, timeout=timeout)
    return decode_document(data, WORKER_LIST_KIND).get("workers", [])


def fetch_results(
    url: str, job_id: str, *, timeout: float = 60.0
) -> tuple[bool, bool, list[tuple[list[int], list[WireResult]]]]:
    """Download a job's finished units:
    ``(complete, cancelled, [(indices, results)])``.

    ``indices`` are positions in the submitted batch; until ``complete``
    is true only the units finished so far are present.  A ``cancelled``
    job will never complete, but the units it finished first remain
    valid.
    """
    data = _get(url, f"{JOBS_PATH}/{job_id}/results", timeout=timeout)
    return decode_job_results(data)


def _poll_policy(poll: float) -> RetryPolicy:
    """Decaying poll intervals starting at the caller's ``poll``."""
    return RetryPolicy(
        initial=poll, multiplier=1.6, max_delay=max(poll, 1.0)
    )


def wait_for_job(
    url: str,
    job_id: str,
    *,
    poll: float = 0.5,
    timeout: float | None = None,
    progress: Callable[[dict], object] | None = None,
    unreachable_grace: float = 60.0,
) -> dict:
    """Poll one job until it completes; returns its final status document.

    Polling decays: consecutive idle polls back off from ``poll`` up to
    a 1 s ceiling, snapping back whenever the done-unit count moves.  An
    unreachable coordinator is retried for ``unreachable_grace`` seconds
    (the queue is durable — a restart picks the job straight back up)
    before the transport fault propagates.

    Args:
        poll: initial seconds between status requests.
        timeout: optional overall deadline (:class:`EngineError` past it).
        progress: optional callback invoked with each status document —
            the hook ``repro watch`` streams its progress lines from.
        unreachable_grace: how long the coordinator may stay unreachable
            before giving up.

    Raises:
        JobCancelledError: the job was cancelled and will never complete.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    backoff = _poll_policy(poll).backoff()
    last_contact = time.monotonic()
    last_done: int | None = None
    while True:
        try:
            status = job_status(url, job_id)
        except Exception as exc:
            if (
                not retryable_exchange(exc)
                or time.monotonic() - last_contact > unreachable_grace
            ):
                raise
            backoff.sleep(poll)
            continue
        last_contact = time.monotonic()
        if progress is not None:
            progress(status)
        if status.get("complete"):
            return status
        if status.get("cancelled"):
            raise JobCancelledError(
                f"job {job_id} was cancelled "
                f"({status.get('done')}/{status.get('total_units')} "
                "units had finished)"
            )
        if deadline is not None and time.monotonic() >= deadline:
            raise EngineError(
                f"job {job_id} not complete after {timeout:g}s "
                f"({status.get('done')}/{status.get('total_units')} units)"
            )
        done = status.get("done")
        if done != last_done:
            last_done = done
            backoff.reset()
        backoff.sleep(poll)


@dataclasses.dataclass
class ServiceStats:
    """Cumulative statistics of one :class:`ServiceExecutor`.

    Attributes:
        batches: engine batches submitted as coordinator jobs.
        executed: jobs completed through the service (cache answers
            included).
        remote_cached: the subset answered from a shared result cache
            (worker- or coordinator-side).
        abandoned: batches given back to the engine after the
            coordinator stayed unreachable past the grace window.
    """

    batches: int = 0
    executed: int = 0
    remote_cached: int = 0
    abandoned: int = 0

    #: Job ids submitted by this executor, in order.
    job_ids: list[str] = dataclasses.field(default_factory=list)


class ServiceExecutor:
    """Executes engine batches through the analysis-service coordinator.

    Args:
        coordinator_url: base URL of the ``repro serve`` process.
        poll: seconds between result polls.
        timeout: per-request HTTP timeout.
        unreachable_grace: how long the coordinator may stay unreachable
            mid-poll before the batch is abandoned back to the engine
            (generous enough to ride out a coordinator restart).
    """

    def __init__(
        self,
        coordinator_url: str,
        *,
        poll: float = 0.1,
        timeout: float = 60.0,
        unreachable_grace: float = 60.0,
    ) -> None:
        url = coordinator_url.strip().rstrip("/")
        if not url:
            raise EngineError(
                "service execution needs a coordinator URL; start one "
                "with `repro serve` and pass --coordinator"
            )
        self.coordinator_url = url
        self.poll = poll
        self.timeout = timeout
        self.unreachable_grace = unreachable_grace
        self.stats = ServiceStats()

    def execute(
        self,
        batch: Sequence[Job],
        pending: Sequence[int],
        results: list[Any],
    ) -> list[int]:
        """Run ``pending`` jobs via the coordinator, writing into
        ``results``.

        Returns the indices the service could not take (the engine runs
        those in-process): all of them when submission fails or the
        coordinator vanishes past the grace window, none otherwise.  A
        job-level exception propagates after the batch drains — always
        the lowest-indexed failing job's, the one serial mode surfaces.
        """
        items = [batch[index] for index in pending]
        try:
            job_id = submit_jobs(
                self.coordinator_url,
                items,
                label=items[0].describe() if items else "",
                timeout=self.timeout,
            )
        except TRANSPORT_ERRORS + (RemoteError,):
            return sorted(pending)
        self.stats.batches += 1
        self.stats.job_ids.append(job_id)

        backoff = _poll_policy(self.poll).backoff()
        last_contact = time.monotonic()
        last_done: int | None = None
        while True:
            try:
                complete, cancelled, units = fetch_results(
                    self.coordinator_url, job_id, timeout=self.timeout
                )
            except TRANSPORT_ERRORS + (RemoteError,):
                # Coordinator down or restarting.  The queue is durable,
                # so keep polling for the grace window before giving the
                # batch back (jobs are pure — a local re-run is safe).
                if time.monotonic() - last_contact > self.unreachable_grace:
                    self.stats.abandoned += 1
                    return sorted(pending)
                backoff.sleep(self.poll)
                continue
            last_contact = time.monotonic()
            if complete:
                break
            if cancelled:
                raise JobCancelledError(
                    f"service job {job_id} was cancelled while the "
                    "engine was waiting on it"
                )
            if len(units) != last_done:
                last_done = len(units)
                backoff.reset()
            backoff.sleep(self.poll)

        job_errors: list[tuple[int, BaseException]] = []
        for indices, outcomes in units:
            for local_index, outcome in zip(indices, outcomes):
                index = pending[local_index]
                if outcome.ok:
                    results[index] = outcome.value
                    self.stats.executed += 1
                    if outcome.cached:
                        self.stats.remote_cached += 1
                else:
                    job_errors.append((index, outcome.error))
        if job_errors:
            job_errors.sort(key=lambda pair: pair[0])
            raise job_errors[0][1]
        return []
