"""The service client: submit batches, poll progress, collect results.

Two consumers share this module.  The ``repro submit`` / ``status`` /
``watch`` / ``jobs`` commands use the plain functions — submit a named
job set, read back progress documents, download results.  The engine's
``mode="service"`` uses :class:`ServiceExecutor`, which makes any
existing analysis driver run through the coordinator unchanged: each
engine batch becomes one submitted job, the executor polls until the
queue drains it, and results scatter back into job order — so driver
output stays byte-identical to ``mode="serial"`` whichever registered
worker executed what.

Fault behaviour: a coordinator that cannot be reached at submission
time falls back to in-process execution (the engine counts it in
``stats.fallbacks``), and one that disappears *mid-poll* is retried for
an unreachable-grace window — long enough to ride out a coordinator
restart, after which the executor gives the batch back to the engine.
Job-level exceptions drain the whole batch first and re-raise the
lowest-indexed failing job's error, the same one serial mode surfaces.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import time
import urllib.request
from typing import Any, Sequence

from repro.engine.batch import Job
from repro.engine.remote.client import _cache_key
from repro.engine.remote.wire import (
    WireJob,
    WireResult,
    decode_document,
    decode_job_results,
    encode_submit,
)
from repro.errors import EngineError, RemoteError
from repro.service.coordinator import (
    ACCEPTED_KIND,
    HEALTH_PATH,
    JOBS_PATH,
    LIST_KIND,
    STATUS_KIND,
    SUBMIT_PATH,
    WORKER_LIST_KIND,
    WORKERS_PATH,
)

#: Transport faults the client treats as "coordinator unreachable".
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def _post(url: str, path: str, body: bytes, *, timeout: float) -> bytes:
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.read()


def _get(url: str, path: str, *, timeout: float) -> bytes:
    with urllib.request.urlopen(
        url.rstrip("/") + path, timeout=timeout
    ) as response:
        return response.read()


def coordinator_health(url: str, *, timeout: float = 5.0) -> dict:
    """Fetch the coordinator's ``/healthz`` document (raises on failure)."""
    return json.loads(_get(url, HEALTH_PATH, timeout=timeout).decode("utf-8"))


def submit_jobs(
    url: str,
    jobs: Sequence[Job],
    *,
    label: str = "",
    meta: dict | None = None,
    timeout: float = 60.0,
) -> str:
    """Submit one batch to the coordinator; returns the job id.

    Cache keys are resolved client-side (the same content addresses
    every other mode uses), so the coordinator and the workers can
    dedupe against their shared caches without recomputing hashes.
    """
    items = [WireJob(item, _cache_key(item)) for item in jobs]
    body = encode_submit(items, label=label, meta=meta)
    answer = decode_document(
        _post(url, SUBMIT_PATH, body, timeout=timeout), ACCEPTED_KIND
    )
    job_id = answer.get("job_id")
    if not isinstance(job_id, str):
        raise RemoteError("submission answer carries no job_id")
    return job_id


def job_status(url: str, job_id: str, *, timeout: float = 30.0) -> dict:
    """One job's progress document (includes per-unit states)."""
    data = _get(url, f"{JOBS_PATH}/{job_id}", timeout=timeout)
    return decode_document(data, STATUS_KIND)


def list_jobs(url: str, *, timeout: float = 30.0) -> list[dict]:
    """Every job the coordinator knows, newest first."""
    data = _get(url, JOBS_PATH, timeout=timeout)
    return decode_document(data, LIST_KIND).get("jobs", [])


def list_workers(url: str, *, timeout: float = 30.0) -> list[dict]:
    """The worker registry with per-worker execution counters."""
    data = _get(url, WORKERS_PATH, timeout=timeout)
    return decode_document(data, WORKER_LIST_KIND).get("workers", [])


def fetch_results(
    url: str, job_id: str, *, timeout: float = 60.0
) -> tuple[bool, list[tuple[list[int], list[WireResult]]]]:
    """Download a job's finished units: ``(complete, [(indices, results)])``.

    ``indices`` are positions in the submitted batch; until ``complete``
    is true only the units finished so far are present.
    """
    data = _get(url, f"{JOBS_PATH}/{job_id}/results", timeout=timeout)
    return decode_job_results(data)


def wait_for_job(
    url: str,
    job_id: str,
    *,
    poll: float = 0.5,
    timeout: float | None = None,
    progress=None,
) -> dict:
    """Poll one job until it completes; returns its final status document.

    Args:
        poll: seconds between status requests.
        timeout: optional overall deadline (:class:`EngineError` past it).
        progress: optional callback invoked with each status document —
            the hook ``repro watch`` streams its progress lines from.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        status = job_status(url, job_id)
        if progress is not None:
            progress(status)
        if status.get("complete"):
            return status
        if deadline is not None and time.monotonic() >= deadline:
            raise EngineError(
                f"job {job_id} not complete after {timeout:g}s "
                f"({status.get('done')}/{status.get('total_units')} units)"
            )
        time.sleep(poll)


@dataclasses.dataclass
class ServiceStats:
    """Cumulative statistics of one :class:`ServiceExecutor`.

    Attributes:
        batches: engine batches submitted as coordinator jobs.
        executed: jobs completed through the service (cache answers
            included).
        remote_cached: the subset answered from a shared result cache
            (worker- or coordinator-side).
        abandoned: batches given back to the engine after the
            coordinator stayed unreachable past the grace window.
    """

    batches: int = 0
    executed: int = 0
    remote_cached: int = 0
    abandoned: int = 0

    #: Job ids submitted by this executor, in order.
    job_ids: list = dataclasses.field(default_factory=list)


class ServiceExecutor:
    """Executes engine batches through the analysis-service coordinator.

    Args:
        coordinator_url: base URL of the ``repro serve`` process.
        poll: seconds between result polls.
        timeout: per-request HTTP timeout.
        unreachable_grace: how long the coordinator may stay unreachable
            mid-poll before the batch is abandoned back to the engine
            (generous enough to ride out a coordinator restart).
    """

    def __init__(
        self,
        coordinator_url: str,
        *,
        poll: float = 0.1,
        timeout: float = 60.0,
        unreachable_grace: float = 60.0,
    ) -> None:
        url = coordinator_url.strip().rstrip("/")
        if not url:
            raise EngineError(
                "service execution needs a coordinator URL; start one "
                "with `repro serve` and pass --coordinator"
            )
        self.coordinator_url = url
        self.poll = poll
        self.timeout = timeout
        self.unreachable_grace = unreachable_grace
        self.stats = ServiceStats()

    def execute(
        self,
        batch: Sequence[Job],
        pending: Sequence[int],
        results: list[Any],
    ) -> list[int]:
        """Run ``pending`` jobs via the coordinator, writing into
        ``results``.

        Returns the indices the service could not take (the engine runs
        those in-process): all of them when submission fails or the
        coordinator vanishes past the grace window, none otherwise.  A
        job-level exception propagates after the batch drains — always
        the lowest-indexed failing job's, the one serial mode surfaces.
        """
        items = [batch[index] for index in pending]
        try:
            job_id = submit_jobs(
                self.coordinator_url,
                items,
                label=items[0].describe() if items else "",
                timeout=self.timeout,
            )
        except TRANSPORT_ERRORS + (RemoteError,):
            return sorted(pending)
        self.stats.batches += 1
        self.stats.job_ids.append(job_id)

        last_contact = time.monotonic()
        while True:
            try:
                complete, units = fetch_results(
                    self.coordinator_url, job_id, timeout=self.timeout
                )
            except TRANSPORT_ERRORS + (RemoteError,):
                # Coordinator down or restarting.  The queue is durable,
                # so keep polling for the grace window before giving the
                # batch back (jobs are pure — a local re-run is safe).
                if time.monotonic() - last_contact > self.unreachable_grace:
                    self.stats.abandoned += 1
                    return sorted(pending)
                time.sleep(self.poll)
                continue
            last_contact = time.monotonic()
            if complete:
                break
            time.sleep(self.poll)

        job_errors: list[tuple[int, BaseException]] = []
        for indices, outcomes in units:
            for local_index, outcome in zip(indices, outcomes):
                index = pending[local_index]
                if outcome.ok:
                    results[index] = outcome.value
                    self.stats.executed += 1
                    if outcome.cached:
                        self.stats.remote_cached += 1
                else:
                    job_errors.append((index, outcome.error))
        if job_errors:
            job_errors.sort(key=lambda pair: pair[0])
            raise job_errors[0][1]
        return []
