"""The coordinator: a durable queue front with worker auto-registration.

One :class:`CoordinatorServer` (the ``repro serve`` process) owns a
:class:`~repro.service.store.JobStore` and speaks the version-2 service
envelopes (:mod:`repro.engine.remote.wire`) over plain HTTP:

* **clients** POST ``/submit`` (a batch of engine jobs), get a job id
  back immediately, and poll ``/jobs/<id>`` / ``/jobs/<id>/results``
  until the queue drains — the ``repro submit`` / ``status`` / ``watch``
  commands and the engine's ``mode="service"`` executor;
* **workers** dial *in*: POST ``/register`` once, then loop POST
  ``/lease`` → execute → POST ``/complete``, renewing their leases with
  POST ``/heartbeat`` — no static worker list anywhere.  A worker whose
  heartbeats stop has its leases expire and re-queued (fence bumped), the
  service analogue of the push backend's dead-worker reassignment.

Scheduling preserves the engine's warm-group discipline in a dynamic
pool: the first worker to lease a unit of a warm group becomes the
group's sticky *owner*, and every later unit of that group is held for
the owner while it lives — so a sweep's structurally identical ILPs keep
landing on one warm solver even though workers come and go.  Ungrouped
units go to whoever asks first.

The coordinator's optional :class:`~repro.engine.cache.ResultCache`
dedupes at the queue: a submitted unit whose every job already has a
cached result is born ``done`` without ever reaching a worker, and every
completed value is stored back, so repeated submissions answer from
disk.  All state transitions land in sqlite before they are
acknowledged — kill the coordinator mid-job, restart it on the same
state directory, and queued, leased and done units all resume exactly
where they were.
"""

from __future__ import annotations

import dataclasses
import json
import os
import secrets
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.engine.batch import warm_units
from repro.engine.cache import ResultCache, is_miss
from repro.engine.remote.wire import (
    PROTOCOL_VERSION,
    WireResult,
    decode_document,
    decode_result_entries,
    decode_submit,
    decode_unit_result,
    encode_document,
    encode_job_entries,
    encode_job_results,
    encode_lease,
    encode_result_entries,
    validate_result_entries,
)
from repro.errors import RemoteError
from repro.service.store import JobStore, UnitSpec
from repro.store import ResultStore

#: Default TCP port of ``repro serve`` (port 0 binds an ephemeral one).
DEFAULT_COORDINATOR_PORT = 8751

#: URL paths of the coordinator endpoints.
HEALTH_PATH = "/healthz"
SUBMIT_PATH = "/submit"
JOBS_PATH = "/jobs"
WORKERS_PATH = "/workers"
REGISTER_PATH = "/register"
LEASE_PATH = "/lease"
COMPLETE_PATH = "/complete"
HEARTBEAT_PATH = "/heartbeat"

#: Envelope kinds of the plain-JSON service documents (the job/result
#: carrying ones live in :mod:`repro.engine.remote.wire`).
REGISTER_KIND = "worker-register"
REGISTERED_KIND = "worker-registered"
LEASE_REQUEST_KIND = "lease-request"
HEARTBEAT_KIND = "heartbeat"
HEARTBEAT_ACK_KIND = "heartbeat-ack"
ACCEPTED_KIND = "job-accepted"
UNIT_ACCEPTED_KIND = "unit-accepted"
STATUS_KIND = "job-status"
LIST_KIND = "job-list"
WORKER_LIST_KIND = "worker-list"
CANCEL_KIND = "job-cancel"
CANCELLED_KIND = "job-cancelled"


@dataclasses.dataclass
class WorkerInfo:
    """The coordinator's view of one registered worker.

    ``registered`` / ``last_seen`` are ``time.monotonic()`` readings —
    liveness arithmetic must not move when the wall clock steps.  They
    are in-memory only and never persisted or put on the wire (the
    worker list reports *ages*, which are clock-free durations).
    """

    worker_id: str
    name: str
    registered: float
    last_seen: float
    stats: dict = dataclasses.field(default_factory=dict)
    completed_units: int = 0
    invalid_completions: int = 0


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes requests to the server object; all state lives there."""

    server: "CoordinatorServer"

    def log_message(self, format: str, *args: object) -> None:
        """Quiet per-request logging (``repro watch`` narrates progress)."""

    def _send(self, code: int, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, handler, body: bytes | None = None) -> None:
        try:
            response = handler(body) if body is not None else handler()
        except RemoteError as exc:
            self._send(400, json.dumps({"error": str(exc)}).encode("utf-8"))
        except KeyError as exc:
            self._send(404, json.dumps({"error": str(exc)}).encode("utf-8"))
        except Exception as exc:  # repro: ignore[broad-except] the 500 boundary: a handler bug must answer the client, not kill the serving thread
            message = f"{type(exc).__name__}: {exc}"
            self._send(500, json.dumps({"error": message}).encode("utf-8"))
        else:
            self._send(200, response)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server = self.server
        if self.path == HEALTH_PATH:
            self._dispatch(server.handle_health)
        elif self.path == JOBS_PATH:
            self._dispatch(server.handle_job_list)
        elif self.path == WORKERS_PATH:
            self._dispatch(server.handle_worker_list)
        elif self.path.startswith(JOBS_PATH + "/"):
            tail = self.path[len(JOBS_PATH) + 1 :]
            if tail.endswith("/results"):
                job_id = tail[: -len("/results")]
                self._dispatch(lambda: server.handle_results(job_id))
            else:
                self._dispatch(lambda: server.handle_status(tail))
        else:
            self._send(404, b'{"error":"not found"}')

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        server = self.server
        routes = {
            SUBMIT_PATH: server.handle_submit,
            REGISTER_PATH: server.handle_register,
            LEASE_PATH: server.handle_lease,
            COMPLETE_PATH: server.handle_complete,
            HEARTBEAT_PATH: server.handle_heartbeat,
        }
        handler = routes.get(self.path)
        if handler is None:
            if self.path.startswith(JOBS_PATH + "/") and self.path.endswith(
                "/cancel"
            ):
                job_id = self.path[len(JOBS_PATH) + 1 : -len("/cancel")]
                self._dispatch(
                    lambda body: server.handle_cancel(job_id, body), body
                )
                return
            self._send(404, b'{"error":"not found"}')
            return
        self._dispatch(handler, body)


class CoordinatorServer(ThreadingHTTPServer):
    """The analysis-service coordinator over HTTP.

    Args:
        host: bind address (loopback by default; the wire format is
            unauthenticated pickle — same trust model as the workers).
        port: TCP port; ``0`` binds an ephemeral one (read :attr:`url`).
        store: the durable job queue.  Pass a file-backed store and the
            queue survives coordinator restarts.
        cache: optional shared :class:`ResultCache` for queue-level
            dedupe (cache-complete units never reach a worker).
        results: optional :class:`~repro.store.ResultStore`.  Unit
            completions (and cache-deduped born-done units) are recorded
            under the job id as the run id, so fire-and-forget ``repro
            submit`` runs — where no client engine is attached when the
            work finishes — land in the same store ``repro diff``
            queries, addressable by the id ``repro status`` shows.
        lease_seconds: how long a leased unit stays assigned without a
            heartbeat before it is re-queued to another worker.
        worker_ttl: how long a silent worker counts as live (sticky
            warm-group owners past this age are replaced).
        quarantine_limit: how many malformed completions a worker may
            upload before it is evicted — its registration dropped, its
            warm groups released and its live leases re-queued to the
            rest of the fleet.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        store: JobStore,
        cache: ResultCache | None = None,
        results: ResultStore | None = None,
        lease_seconds: float = 60.0,
        worker_ttl: float = 30.0,
        quarantine_limit: int = 3,
    ) -> None:
        super().__init__((host, port), _CoordinatorHandler)
        self.store = store
        self.cache = cache
        self.results = results
        self.lease_seconds = lease_seconds
        self.worker_ttl = worker_ttl
        self.quarantine_limit = quarantine_limit
        self.workers: dict[str, WorkerInfo] = {}
        #: worker id -> reason, for workers evicted after repeatedly
        #: uploading malformed completions.  A quarantined id is dead;
        #: the process behind it may re-register under a fresh id.
        self.quarantined_workers: dict[str, str] = {}
        #: warm group -> sticky owning worker id (in-memory: affinity is
        #: an optimisation, correctness never depends on it surviving).
        self.group_owners: dict[str, str] = {}
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """The base URL clients and workers address this coordinator under."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def handle_error(self, request, client_address) -> None:
        """Quiet client disconnects (watch/poll loops abandon sockets)."""
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)

    # ------------------------------------------------------------------
    # Client side: submission and progress
    # ------------------------------------------------------------------
    def handle_submit(self, body: bytes) -> bytes:
        """Enqueue one batch; answers with the fresh job id."""
        items, label, meta = decode_submit(body)
        if not items:
            raise RemoteError("cannot submit an empty batch")
        batch = [item.job for item in items]
        units: list[UnitSpec] = []
        born_done: list[tuple[str, Any, str | None]] = []
        for unit in warm_units(batch, range(len(batch))):
            unit_items = [items[i] for i in unit]
            result = None
            if self.cache is not None:
                values = []
                for item in unit_items:
                    key = item.cache_key if item.job.cacheable else None
                    value = (
                        self.cache.lookup(key) if key is not None else None
                    )
                    if key is None or is_miss(value):
                        values = None
                        break
                    values.append(value)
                if values is not None:
                    # Every job in the unit is already answered: the
                    # unit is born done and never reaches a worker.
                    result = encode_result_entries(
                        [
                            WireResult(ok=True, value=value, cached=True)
                            for value in values
                        ]
                    )
                    born_done.extend(
                        (item.job.describe(), value, item.cache_key)
                        for item, value in zip(unit_items, values)
                    )
            units.append(
                UnitSpec(
                    entries=encode_job_entries(unit_items),
                    indices=list(unit),
                    warm_group=batch[unit[0]].warm_group,
                    result=result,
                )
            )
        job_id = self.store.submit(
            units, label=label, meta=meta, total_jobs=len(batch)
        )
        # The run record is opened at submission (even with nothing born
        # done yet), so the job id is a valid `repro diff` selector the
        # moment `repro submit` prints it.
        self._record_rows(job_id, label, born_done)
        return encode_document(ACCEPTED_KIND, {"job_id": job_id})

    def handle_status(self, job_id: str) -> bytes:
        """One job's progress (unit states included)."""
        self.store.reclaim_expired()
        record = self.store.job(job_id)
        if record is None:
            raise KeyError(f"unknown job id {job_id!r}")
        units = [
            {
                "unit": view.unit_index,
                "state": view.state,
                "warm_group": view.warm_group,
                "worker": view.lease_owner,
                "jobs": view.jobs,
            }
            for view in self.store.units(job_id)
        ]
        return encode_document(
            STATUS_KIND, {**self._job_fields(record), "units": units}
        )

    def handle_job_list(self) -> bytes:
        self.store.reclaim_expired()
        jobs = [self._job_fields(record) for record in self.store.jobs()]
        return encode_document(LIST_KIND, {"jobs": jobs})

    @staticmethod
    def _job_fields(record) -> dict:
        return {
            "job_id": record.job_id,
            "created": record.created,
            "label": record.label,
            "meta": record.meta,
            "total_units": record.total_units,
            "total_jobs": record.total_jobs,
            "queued": record.queued,
            "leased": record.leased,
            "done": record.done,
            "complete": record.complete,
            "cancelled": record.cancelled,
            "cancelled_units": record.cancelled_units,
        }

    def handle_results(self, job_id: str) -> bytes:
        """A job's collected results (done units only; check ``complete``)."""
        record, units = self.store.results(job_id)
        return encode_job_results(
            job_id,
            complete=record.complete,
            cancelled=record.cancelled,
            units=units,
        )

    def handle_cancel(self, job_id: str, body: bytes) -> bytes:
        """Cancel one job (``POST /jobs/<id>/cancel``).

        Queued and leased units are fenced out immediately; workers
        holding a unit of the job learn on their next heartbeat and
        abandon it.  Idempotent.  The body is a ``CANCEL_KIND`` envelope
        — decoded (version-checked) even though the URL already names
        the job, so a client speaking a different protocol version is
        told so instead of silently cancelling.
        """
        decode_document(body, CANCEL_KIND)
        known = self.store.cancel(job_id)
        if not known:
            raise KeyError(f"unknown job id {job_id!r}")
        record = self.store.job(job_id)
        return encode_document(
            CANCELLED_KIND,
            self._job_fields(record) if record is not None else {},
        )

    def handle_worker_list(self) -> bytes:
        """The registry with per-worker execution counters
        (``repro jobs --workers``)."""
        now = time.monotonic()
        with self._lock:
            rows = [
                {
                    "worker_id": info.worker_id,
                    "name": info.name,
                    "live": self._is_live(info, now),
                    "age": round(now - info.last_seen, 3),  # repro: ignore[rounded-export] display-only liveness age, not a recorded result
                    "completed_units": info.completed_units,
                    "invalid_completions": info.invalid_completions,
                    "stats": dict(info.stats),
                }
                for info in self.workers.values()
            ]
            quarantined = [
                {"worker_id": worker_id, "quarantined": reason}
                for worker_id, reason in self.quarantined_workers.items()
            ]
        return encode_document(
            WORKER_LIST_KIND,
            {"workers": rows, "quarantined": quarantined},
        )

    def handle_health(self) -> bytes:
        now = time.monotonic()
        with self._lock:
            live = sum(
                1 for info in self.workers.values()
                if self._is_live(info, now)
            )
        document = {
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "pid": os.getpid(),
            "workers": live,
            **self.store.counts(),
        }
        return json.dumps(document).encode("utf-8")

    # ------------------------------------------------------------------
    # Worker side: registration, leasing, completion, heartbeat
    # ------------------------------------------------------------------
    def handle_register(self, body: bytes) -> bytes:
        """Admit one worker; answers with its fresh coordinator-issued id."""
        document = decode_document(body, REGISTER_KIND)
        name = document.get("name") or ""
        if not isinstance(name, str):
            raise RemoteError("worker name must be a string")
        now = time.monotonic()
        worker_id = "w-" + secrets.token_hex(4)
        with self._lock:
            self.workers[worker_id] = WorkerInfo(
                worker_id=worker_id,
                name=name or worker_id,
                registered=now,
                last_seen=now,
            )
        return encode_document(
            REGISTERED_KIND,
            {"worker_id": worker_id, "lease_seconds": self.lease_seconds},
        )

    def handle_lease(self, body: bytes) -> bytes:
        """Grant the requesting worker one queued unit (or none)."""
        document = decode_document(body, LEASE_REQUEST_KIND)
        worker_id = document.get("worker_id")
        if not isinstance(worker_id, str):
            raise RemoteError("lease request carries no worker_id")
        now = time.monotonic()
        with self._lock:
            info = self.workers.get(worker_id)
            if info is None:
                # Unknown id — typically a worker that outlived a
                # coordinator restart.  Tell it to re-register; any unit
                # it still executes completes by fence, not by id.
                return encode_lease({"unregistered": True})
            info.last_seen = now
            self.store.reclaim_expired(now)
            choice = self._pick_unit(worker_id, now)
            if choice is None:
                return encode_lease(None)
            job_id, unit_index = choice
            leased = self.store.lease(
                job_id, unit_index, worker_id, now + self.lease_seconds
            )
            if leased is None:  # raced away between pick and lease
                return encode_lease(None)
            fence, entries, _indices = leased
        return encode_lease(
            {
                "job_id": job_id,
                "unit": unit_index,
                "fence": fence,
                "lease_seconds": self.lease_seconds,
                "jobs": entries,
            }
        )

    def _pick_unit(
        self, worker_id: str, now: float
    ) -> tuple[str, int] | None:
        """Choose the next unit for ``worker_id``, warm-group sticky.

        Preference order: a unit of a group this worker already owns →
        a unit of an unowned (or dead-owned) group, claiming ownership →
        an ungrouped unit.  Units of groups owned by *another live*
        worker are held back for their owner.  Caller holds the lock.
        """
        claim: tuple[str, int, str] | None = None
        ungrouped: tuple[str, int] | None = None
        for job_id, unit_index, group in self.store.queued_units():
            if group is None:
                if ungrouped is None:
                    ungrouped = (job_id, unit_index)
                continue
            owner = self.group_owners.get(group)
            if owner == worker_id:
                return job_id, unit_index
            info = self.workers.get(owner) if owner else None
            if info is None or not self._is_live(info, now):
                if claim is None:
                    claim = (job_id, unit_index, group)
        if claim is not None:
            self.group_owners[claim[2]] = worker_id
            return claim[0], claim[1]
        return ungrouped

    def handle_complete(self, body: bytes) -> bytes:
        """Record one executed unit, fenced and shape-validated.

        A completion whose result entries fail :func:`validate_result_entries`
        (wrong count, undecodable payloads — a corrupting worker or a
        mangling network) is rejected *without* touching the unit, and
        counts against the uploading worker's quarantine budget."""
        document = decode_unit_result(body)
        job_id = document["job_id"]
        unit_index = document["unit"]
        worker_id = document["worker_id"]
        defect = validate_result_entries(
            document["results"],
            self.store.unit_job_count(job_id, unit_index),
        )
        if defect is not None:
            self._record_invalid_completion(worker_id, defect)
            raise RemoteError(
                f"rejected completion of {job_id}/{unit_index}: {defect}"
            )
        accepted = self.store.complete(
            job_id, unit_index, document["fence"], document["results"]
        )
        now = time.monotonic()
        with self._lock:
            info = self.workers.get(worker_id)
            if info is not None:
                info.last_seen = now
                if accepted:
                    info.completed_units += 1
        if accepted and (
            self.cache is not None or self.results is not None
        ):
            self._store_results(job_id, unit_index, document["results"])
        return encode_document(UNIT_ACCEPTED_KIND, {"accepted": accepted})

    def _record_invalid_completion(self, worker_id: str, defect: str) -> None:
        """Count one malformed upload; evict the worker past the limit.

        Eviction drops the registration (the worker's next lease attempt
        answers ``unregistered``), releases its sticky warm groups and
        re-queues its live leases so the rest of the fleet picks the
        work up immediately instead of waiting out the lease expiry.
        """
        with self._lock:
            info = self.workers.get(worker_id)
            if info is None:
                return
            info.invalid_completions += 1
            if info.invalid_completions < self.quarantine_limit:
                return
            del self.workers[worker_id]
            self.quarantined_workers[worker_id] = (
                f"evicted after {info.invalid_completions} invalid "
                f"completions (last: {defect})"
            )
            for group, owner in list(self.group_owners.items()):
                if owner == worker_id:
                    del self.group_owners[group]
        self.store.release_worker(worker_id)

    def _store_results(
        self, job_id: str, unit_index: int, result_entries: list[dict]
    ) -> None:
        """Feed completed values into the coordinator cache (dedupe)
        and the result store (regression diffs)."""
        entries = self.store.unit_entries(job_id, unit_index)
        try:
            results = decode_result_entries(
                result_entries, expected=len(entries)
            )
        except RemoteError:
            return
        completed: list[tuple[str, Any, str | None]] = []
        for entry, result in zip(entries, results):
            key = entry.get("cache_key")
            key = key if isinstance(key, str) else None
            if not result.ok:
                continue
            if self.cache is not None and not result.cached and key:
                self.cache.store(key, result.value)
            completed.append((entry.get("label") or "", result.value, key))
        if completed:
            self._record_rows(job_id, "", completed)

    def _record_rows(
        self,
        job_id: str,
        label: str,
        completed: list[tuple[str, Any, str | None]],
    ) -> None:
        """Record completed values into the result store, best-effort.

        The store is an observability layer: a full disk or locked
        database must not fail the submission or completion it rides on.
        """
        if self.results is None:
            return
        try:
            self.results.begin_run(
                engine_mode="service", label=label, run_id=job_id
            )
            if completed:
                self.results.record_batch(job_id, completed)
        except Exception as exc:  # repro: ignore[broad-except] recording is best-effort; a full disk must not fail the completion it rides on
            warnings.warn(
                f"result-store recording for job {job_id} failed ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )

    def handle_heartbeat(self, body: bytes) -> bytes:
        """Renew a worker's leases; absorb its execution counters."""
        document = decode_document(body, HEARTBEAT_KIND)
        worker_id = document.get("worker_id")
        if not isinstance(worker_id, str):
            raise RemoteError("heartbeat carries no worker_id")
        stats = document.get("stats")
        now = time.monotonic()
        with self._lock:
            info = self.workers.get(worker_id)
            known = info is not None
            if info is not None:
                info.last_seen = now
                if isinstance(stats, dict):
                    info.stats = stats
        cancelled: list[str] = []
        if known:
            self.store.renew_leases(worker_id, now + self.lease_seconds)
            cancelled = self.store.cancelled_jobs_for(worker_id)
        return encode_document(
            HEARTBEAT_ACK_KIND, {"known": known, "cancelled": cancelled}
        )

    def _is_live(self, info: WorkerInfo, now: float) -> bool:
        return now - info.last_seen <= self.worker_ttl

    # ------------------------------------------------------------------
    def start(self) -> "CoordinatorServer":
        """Serve in a daemon thread (in-process coordinators for tests)."""
        thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-coordinator:{self.url}",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (the store stays open)."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_COORDINATOR_PORT,
    *,
    state_dir: str | os.PathLike = ".repro-service",
    cache_dir: str | os.PathLike | None = None,
    lease_seconds: float = 60.0,
    worker_ttl: float = 30.0,
) -> None:
    """Run the coordinator in the foreground (the ``repro serve`` command).

    The queue database lives at ``<state_dir>/queue.sqlite`` — point a
    restarted coordinator at the same directory and every submitted job
    resumes.  Prints the listening URL (the line scripts parse to
    discover ephemeral ports), then serves until interrupted.
    """
    os.makedirs(state_dir, exist_ok=True)
    store = JobStore(os.path.join(state_dir, "queue.sqlite"))
    cache = ResultCache(directory=cache_dir) if cache_dir else None
    results = ResultStore(cache_dir) if cache_dir else None
    server = CoordinatorServer(
        host,
        port,
        store=store,
        cache=cache,
        results=results,
        lease_seconds=lease_seconds,
        worker_ttl=worker_ttl,
    )
    print(f"repro coordinator listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        store.close()
