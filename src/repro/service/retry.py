"""The shared retry policy: backoff, jitter, deadlines, classification.

Before this module every networked component owned its own sleep loop —
fixed ``time.sleep(poll)`` in the service client, a hand-rolled doubling
delay in the pull worker, another one in ``wait_for_workers`` — and each
classified failures slightly differently.  :class:`RetryPolicy` unifies
all of them:

* **exponential backoff with jitter** — delays start at ``initial`` and
  multiply up to ``max_delay``; a ``jitter`` fraction decorrelates a
  fleet of retriers so they stop hammering a recovering coordinator in
  lock-step;
* **one total deadline** — a policy with ``deadline`` set hands out
  delays only until the budget is spent (and never sleeps past it), so
  callers get a single overall bound instead of per-attempt timeouts
  compounding unpredictably;
* **retryable-error classification** — :func:`retryable_fault` is the
  shared answer to "is this failure worth retrying?": transport faults
  (connection refused/reset, timeouts, truncated reads) and HTTP 5xx
  are transient, HTTP 4xx is a real answer from a live server and is
  not.  Protocol-level :class:`~repro.errors.RemoteError` is *optionally*
  transient (:func:`retryable_exchange`): a corrupted or truncated
  response usually means the network mangled the exchange, which is
  exactly what the chaos proxy injects.

Two consumption styles.  :meth:`RetryPolicy.call` wraps one idempotent
callable and retries it to the deadline.  :meth:`RetryPolicy.backoff`
returns a stateful :class:`Backoff` for loops that interleave retrying
with other work (poll loops, lease loops); ``reset()`` snaps the delay
back to ``initial`` when progress is observed, so idle polls decay but
active work stays responsive.
"""

from __future__ import annotations

import dataclasses
import http.client
import random
import time
import urllib.error
from typing import Callable, Iterator

from repro.errors import RemoteError

#: Exception types raised by the stdlib HTTP stack for transport-level
#: faults (connection refused/reset, timeouts, truncated reads).
#: ``urllib.error.URLError``/``HTTPError`` are ``OSError`` subclasses.
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)

#: HTTP status codes below 500 that still indicate a transient
#: condition worth retrying (request timeout, too many requests).
_TRANSIENT_4XX = frozenset({408, 429})


def retryable_fault(exc: BaseException) -> bool:
    """Whether ``exc`` is a transient transport fault.

    HTTP errors are split by status: 5xx (and 408/429) come from an
    overloaded or restarting server and are retryable; other 4xx are a
    live server's deliberate answer (bad request, unknown job) and
    retrying them verbatim can never succeed.
    """
    if isinstance(exc, urllib.error.HTTPError):
        return exc.code >= 500 or exc.code in _TRANSIENT_4XX
    return isinstance(exc, TRANSPORT_ERRORS)


def retryable_exchange(exc: BaseException) -> bool:
    """Like :func:`retryable_fault`, but treats protocol-level
    :class:`RemoteError` as transient too.

    Use for *reads* (polling status, downloading results, leasing):
    an undecodable or truncated response usually means the bytes were
    mangled in flight, and re-asking is safe.  Do **not** use for
    non-idempotent writes where a mangled *response* may hide a request
    that actually landed.
    """
    return retryable_fault(exc) or isinstance(exc, RemoteError)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff + jitter + total deadline + classification.

    Attributes:
        initial: first delay in seconds.
        multiplier: growth factor between consecutive delays.
        max_delay: cap on any single delay.
        deadline: optional total budget in seconds; ``None`` retries
            forever.  The budget starts when a :class:`Backoff` is
            created (or :meth:`call` invoked), and the final sleep is
            clipped so it never overshoots.
        jitter: fractional jitter; each delay is scaled by a uniform
            factor in ``[1 - jitter, 1 + jitter]``.
        retryable: the error classifier consulted by :meth:`call`.
    """

    initial: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: float | None = None
    jitter: float = 0.1
    retryable: Callable[[BaseException], bool] = retryable_fault

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ValueError("retry initial delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("retry multiplier must be >= 1")
        if self.max_delay < self.initial:
            raise ValueError("retry max_delay must be >= initial")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("retry deadline must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("retry jitter must be in [0, 1)")

    def with_deadline(self, deadline: float | None) -> "RetryPolicy":
        """This policy with a different total budget."""
        return dataclasses.replace(self, deadline=deadline)

    def backoff(
        self,
        *,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep_fn: Callable[[float], object] = time.sleep,
    ) -> "Backoff":
        """A fresh stateful delay sequence under this policy."""
        return Backoff(self, rng=rng, clock=clock, sleep_fn=sleep_fn)

    def call(
        self,
        fn: Callable[[], object],
        *,
        description: str = "request",
        sleep: Callable[[float], object] = time.sleep,
        on_retry: Callable[[BaseException, float], None] | None = None,
    ):
        """Invoke ``fn`` until it succeeds, the error stops being
        retryable, or the deadline runs out.

        ``fn`` must be safe to re-invoke (idempotent, or the caller has
        decided a duplicate is harmless).  Past the deadline the last
        failure is re-raised wrapped in a :class:`RemoteError` naming
        the budget, so callers see *why* retrying stopped.
        """
        backoff = self.backoff()
        while True:
            try:
                return fn()
            except Exception as exc:
                if not self.retryable(exc):
                    raise
                delay = backoff.next_delay()
                if delay is None:
                    raise RemoteError(
                        f"{description} still failing after "
                        f"{self.deadline:g}s of retries: {exc}"
                    ) from exc
                if on_retry is not None:
                    on_retry(exc, delay)
                sleep(delay)

    def delays(self) -> Iterator[float]:
        """The deterministic (jitter-free) delay sequence, for tests
        and documentation; infinite unless exhausted by the caller."""
        delay = self.initial
        while True:
            yield delay
            delay = min(delay * self.multiplier, self.max_delay)


class Backoff:
    """One in-progress retry sequence under a :class:`RetryPolicy`.

    ``next_delay()`` returns the next sleep (jittered, deadline-clipped)
    or ``None`` once the policy's deadline has passed.  ``reset()``
    snaps the delay back to ``initial`` — call it when the loop makes
    progress, so only *consecutive* idle rounds decay.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        *,
        rng: random.Random | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep_fn: Callable[[float], object] = time.sleep,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._sleep = sleep_fn
        self._rng = rng if rng is not None else random.Random()
        self._delay = policy.initial
        self._deadline = (
            None
            if policy.deadline is None
            else clock() + policy.deadline
        )

    @property
    def deadline(self) -> float | None:
        """Absolute deadline on the backoff's clock (``None`` = never)."""
        return self._deadline

    def remaining(self) -> float | None:
        """Seconds left in the budget (``None`` = unbounded)."""
        if self._deadline is None:
            return None
        return max(self._deadline - self._clock(), 0.0)

    def expired(self) -> bool:
        return (
            self._deadline is not None
            and self._clock() >= self._deadline
        )

    def reset(self) -> None:
        """Snap back to the initial delay (progress was observed)."""
        self._delay = self.policy.initial

    def next_delay(self) -> float | None:
        """The next sleep in seconds, or ``None`` past the deadline."""
        now = self._clock()
        if self._deadline is not None and now >= self._deadline:
            return None
        delay = self._delay
        self._delay = min(
            delay * self.policy.multiplier, self.policy.max_delay
        )
        if self.policy.jitter:
            delay *= 1.0 + self._rng.uniform(
                -self.policy.jitter, self.policy.jitter
            )
        if self._deadline is not None:
            delay = min(delay, self._deadline - now)
        return max(delay, 0.0)

    def sleep(self, fallback: float | None = None) -> bool:
        """Sleep for the next backoff delay; the one sanctioned way for
        a retry loop to wait.

        Returns ``True`` after sleeping, ``False`` when the deadline has
        passed and ``fallback`` is ``None`` — the loop should stop and
        surface its last error.  With ``fallback`` set, a spent (or
        unbounded-poll) deadline sleeps ``fallback`` seconds instead of
        giving up, which is what poll loops with their own exit
        condition want.  The actual sleeping goes through the
        constructor's injectable ``sleep_fn`` so tests can capture the
        schedule without waiting it out.
        """
        delay = self.next_delay()
        if delay is None:
            if fallback is None:
                return False
            delay = fallback
        self._sleep(delay)
        return True


#: Default policy for request retries (submit, register, complete):
#: quick first retry, 2 s cap, no deadline (callers add one).
REQUEST_POLICY = RetryPolicy()

#: Default policy for idle poll loops (job status, lease attempts):
#: starts fast so short jobs return promptly, decays to a 1 s cap so a
#: long-running job is not hammered with status requests.
POLL_POLICY = RetryPolicy(initial=0.05, multiplier=1.6, max_delay=1.0)
