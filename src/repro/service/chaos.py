"""Fault injection for the service stack: the chaos proxy.

:class:`ChaosProxy` is a stdlib HTTP intermediary that sits between
clients/workers and the coordinator (`client → proxy → coordinator`)
and injects scripted faults into the traffic passing through it.  It is
how this repository *proves* its robustness claims: the chaos test
suite routes real submissions and real workers through a proxy with a
deterministic :class:`FaultPlan` and asserts the exactly-once and
byte-identity guarantees hold anyway.

Fault kinds (:data:`FAULT_KINDS`):

``refuse``
    Sever the connection without answering — the client sees a
    connection reset, indistinguishable from a dead coordinator.
``error``
    Answer a configurable 5xx (default 503) without forwarding — the
    overloaded/restarting-coordinator burst.
``latency``
    Sleep before forwarding — a network or GC spike.  The request
    still succeeds, so this fault finds timeout bugs, not retry bugs.
``truncate``
    Forward, then send the full ``Content-Length`` but only a prefix
    of the body — the client's read dies mid-response
    (``IncompleteRead``), the classic torn TCP stream.
``corrupt``
    Forward, then garble the response body (length preserved) — the
    client decodes garbage, which must surface as a protocol error,
    never as silently wrong results.
``kill``
    Invoke the proxy's *kill callback* (typically ``pkill`` of the
    coordinator process, or an in-process ``server.stop()``), then
    sever — the mid-request coordinator crash.  The durable queue must
    carry the job across the restart.
``drop``
    Swallow the request (read it fully, answer nothing) — a lossy
    network.  Used by the faulty-network benchmark variant.

Scripting: a :class:`FaultPlan` is an ordered list of
:class:`FaultRule`\\ s, each matching a method/path, optionally skipping
the first ``after`` matches, firing a bounded number of ``times`` with
a ``probability`` drawn from a *seeded* RNG — so a plan replays the
same fault sequence on every run.  Plans round-trip through JSON
(``repro chaos --plan plan.json``) or terse CLI specs
(``--fault 'latency:path=/lease,times=3,latency=0.5'``), and the proxy
records every injection in :attr:`FaultPlan.injections` so tests can
assert the faults actually happened.
"""

from __future__ import annotations

import dataclasses
import json
import random
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Sequence

from repro.errors import EngineError

#: The fault kinds a :class:`FaultRule` may inject.
FAULT_KINDS = frozenset(
    {"refuse", "error", "latency", "truncate", "corrupt", "kill", "drop"}
)

#: Response-body fault kinds that require forwarding first.
_BODY_FAULTS = frozenset({"truncate", "corrupt"})


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One scripted fault: what to inject, where, when, how often.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        path: substring the request path must contain (empty = any).
        method: HTTP method the request must use (empty = any).
        after: skip this many matching requests before becoming
            eligible (lets a plan let registration through and then
            break the lease loop).
        times: fire at most this many times; ``None`` fires forever.
        probability: chance of firing once eligible, drawn from the
            plan's seeded RNG (1.0 = always).
        latency: seconds slept by a ``latency`` fault.
        status: response code sent by an ``error`` fault.
        truncate_to: body bytes kept by a ``truncate`` fault.
    """

    kind: str
    path: str = ""
    method: str = ""
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    latency: float = 0.25
    status: int = 503
    truncate_to: int = 20

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise EngineError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(sorted(FAULT_KINDS))}"
            )
        if self.after < 0:
            raise EngineError("fault 'after' must be >= 0")
        if self.times is not None and self.times < 1:
            raise EngineError("fault 'times' must be >= 1 (or omitted)")
        if not 0.0 < self.probability <= 1.0:
            raise EngineError("fault probability must be in (0, 1]")
        if self.latency < 0:
            raise EngineError("fault latency must be >= 0")
        if not 500 <= self.status <= 599:
            raise EngineError("fault status must be a 5xx code")
        if self.truncate_to < 0:
            raise EngineError("fault truncate_to must be >= 0")

    def matches(self, method: str, path: str) -> bool:
        """Whether a request is in this rule's scope (counters aside)."""
        if self.method and self.method.upper() != method.upper():
            return False
        return self.path in path

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict) or "kind" not in data:
            raise EngineError("fault rule must be an object with 'kind'")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise EngineError(
                f"unknown fault rule keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


class FaultPlan:
    """An ordered, seeded, replayable fault script.

    Rules are consulted in order for every request passing through the
    proxy; the first eligible rule that fires wins.  All counters and
    the RNG live behind one lock, so a threaded proxy still produces
    the deterministic sequence the seed implies (up to request arrival
    order — plans meant to be order-independent use ``probability=1``
    rules with disjoint paths).

    Attributes:
        injections: one record per injected fault (``seq``, ``kind``,
            ``method``, ``path``, ``rule`` index), in injection order —
            the audit log tests assert against.
    """

    def __init__(
        self, rules: Sequence[FaultRule] = (), *, seed: int = 0
    ) -> None:
        self.rules = list(rules)
        self.seed = seed
        self.injections: list[dict] = []
        self._rng = random.Random(seed)
        self._seen = [0] * len(self.rules)
        self._fired = [0] * len(self.rules)
        self._requests = 0
        self._lock = threading.Lock()

    def decide(self, method: str, path: str) -> FaultRule | None:
        """The fault to inject into this request, if any (thread-safe)."""
        with self._lock:
            self._requests += 1
            for index, rule in enumerate(self.rules):
                if not rule.matches(method, path):
                    continue
                self._seen[index] += 1
                if self._seen[index] <= rule.after:
                    continue
                if (
                    rule.times is not None
                    and self._fired[index] >= rule.times
                ):
                    continue
                if (
                    rule.probability < 1.0
                    and self._rng.random() >= rule.probability
                ):
                    continue
                self._fired[index] += 1
                self.injections.append(
                    {
                        "seq": len(self.injections),
                        "kind": rule.kind,
                        "method": method,
                        "path": path,
                        "rule": index,
                    }
                )
                return rule
            return None

    @property
    def requests(self) -> int:
        """Total requests inspected (injected or passed through)."""
        with self._lock:
            return self._requests

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_json() for rule in self.rules],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise EngineError("fault plan must be a JSON object")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise EngineError("fault plan 'rules' must be a list")
        seed = data.get("seed", 0)
        if not isinstance(seed, int):
            raise EngineError("fault plan 'seed' must be an integer")
        return cls(
            [FaultRule.from_json(rule) for rule in rules], seed=seed
        )

    @classmethod
    def from_specs(
        cls, specs: Sequence[str], *, seed: int = 0
    ) -> "FaultPlan":
        """Build a plan from terse CLI specs (see :func:`parse_fault_spec`)."""
        return cls([parse_fault_spec(spec) for spec in specs], seed=seed)


def parse_fault_spec(spec: str) -> FaultRule:
    """Parse one ``kind[:key=value,...]`` CLI fault spec.

    Examples: ``latency:path=/lease,latency=0.5,times=3``,
    ``error:status=502,probability=0.2,times=``, ``kill:after=5``.
    An empty ``times=`` means unbounded.
    """
    kind, _, tail = spec.strip().partition(":")
    fields: dict = {"kind": kind.strip()}
    if tail:
        for part in tail.split(","):
            key, sep, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key:
                raise EngineError(
                    f"malformed fault spec part {part!r} in {spec!r} "
                    "(expected key=value)"
                )
            if key in ("path", "method"):
                fields[key] = value
            elif key in ("after", "status", "truncate_to"):
                fields[key] = int(value)
            elif key == "times":
                fields[key] = int(value) if value else None
            elif key in ("probability", "latency"):
                fields[key] = float(value)
            else:
                raise EngineError(
                    f"unknown fault spec key {key!r} in {spec!r}"
                )
    return FaultRule(**fields)


class _ChaosHandler(BaseHTTPRequestHandler):
    """Forwards one request to the upstream, unless a fault fires."""

    server: "ChaosProxy"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:
        """Quiet — the plan's injection log is the record that matters."""

    def _sever(self) -> None:
        """Drop the TCP connection without an HTTP response."""
        try:
            self.connection.close()
        except OSError:
            pass

    def _respond(
        self, status: int, body: bytes, *, body_bytes: int | None = None
    ) -> None:
        """Answer with ``status``; ``body_bytes`` truncates the actual
        write while still advertising the full Content-Length."""
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if body_bytes is None:
                self.wfile.write(body)
            else:
                self.wfile.write(body[:body_bytes])
                self.wfile.flush()
                self._sever()
        except OSError:
            pass

    def _forward(self, body: bytes | None) -> tuple[int, bytes]:
        """Relay the request upstream; returns ``(status, body)``."""
        request = urllib.request.Request(
            self.server.upstream + self.path,
            data=body,
            headers={"Content-Type": "application/json"},
            method=self.command,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.server.timeout
            ) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def _handle(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        rule = self.server.plan.decide(self.command, self.path)
        if rule is not None:
            if rule.kind in ("refuse", "drop"):
                self._sever()
                return
            if rule.kind == "error":
                self._respond(
                    rule.status, b'{"error":"chaos: injected fault"}'
                )
                return
            if rule.kind == "kill":
                self.server.invoke_kill()
                self._sever()
                return
            if rule.kind == "latency":
                time.sleep(rule.latency)
        try:
            status, payload = self._forward(body)
        except Exception as exc:  # repro: ignore[broad-except] the 502 boundary: any upstream fault becomes a bad-gateway answer
            message = json.dumps({"error": f"chaos upstream: {exc}"})
            self._respond(502, message.encode("utf-8"))
            return
        if rule is not None and rule.kind == "truncate":
            self._respond(
                status, payload, body_bytes=min(rule.truncate_to, len(payload))
            )
            return
        if rule is not None and rule.kind == "corrupt":
            payload = bytes(byte ^ 0x5A for byte in payload)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle()

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle()


class ChaosProxy(ThreadingHTTPServer):
    """A fault-injecting HTTP proxy in front of one upstream URL.

    Args:
        upstream: base URL of the coordinator (or worker) to shield.
        host: bind address.
        port: TCP port; ``0`` binds an ephemeral one (read :attr:`url`).
        plan: the scripted faults; an empty plan forwards everything.
        kill: optional callback run by a ``kill`` fault — in tests an
            in-process coordinator ``stop``, on the command line a
            ``pkill`` of the serve process.
        timeout: upstream per-request timeout.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        upstream: str,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        plan: FaultPlan | None = None,
        kill: Callable[[], None] | None = None,
        timeout: float = 60.0,
    ) -> None:
        super().__init__((host, port), _ChaosHandler)
        self.upstream = upstream.strip().rstrip("/")
        self.plan = plan if plan is not None else FaultPlan()
        self.kill = kill
        self.timeout = timeout
        self.kills = 0
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """The base URL clients address instead of the upstream."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def invoke_kill(self) -> None:
        """Run the kill callback (``kill`` faults); never raises."""
        self.kills += 1
        if self.kill is None:
            return
        try:
            self.kill()
        except Exception:  # repro: ignore[broad-except] documented never-raises: a failing kill callback must not fault the proxy
            pass

    def handle_error(self, request, client_address) -> None:
        """Quiet the connection resets chaos deliberately causes."""
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError, OSError)):
            return
        super().handle_error(request, client_address)

    # ------------------------------------------------------------------
    def start(self) -> "ChaosProxy":
        """Serve in a daemon thread (in-process proxies for tests)."""
        thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-chaos:{self.url}",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve_chaos(
    upstream: str,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    plan: FaultPlan | None = None,
    kill_command: str | None = None,
) -> None:
    """Run the chaos proxy in the foreground (the ``repro chaos``
    command).

    Prints the listening URL (the line scripts parse to discover
    ephemeral ports), then proxies until interrupted.  ``kill_command``
    is a shell command run by ``kill`` faults — typically a ``pkill``
    of the coordinator process, letting a restart-loop wrapper
    demonstrate durable-queue recovery.
    """
    kill: Callable[[], None] | None = None
    if kill_command:
        import subprocess

        def kill() -> None:
            subprocess.run(kill_command, shell=True, check=False)

    proxy = ChaosProxy(upstream, host, port, plan=plan, kill=kill)
    print(
        f"repro chaos proxy listening on {proxy.url} "
        f"(upstream {proxy.upstream})",
        flush=True,
    )
    try:
        proxy.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        proxy.server_close()
