"""The durable job queue: sqlite-backed jobs, units and leases.

One :class:`JobStore` is the coordinator's only persistent state.  A
*job* is one submitted batch; it is split into *units* (the engine's
warm-group partition, see :func:`repro.engine.batch.warm_units`) and
each unit moves through three states::

    queued ──lease──▶ leased ──complete──▶ done
       ▲                 │
       └──lease expiry───┘   (fence += 1 on every lease)

Durability and fencing:

* every state transition commits to sqlite before it is acknowledged,
  so a coordinator that crashes and restarts recovers exactly the
  queued, leased and done units it had — completed work is never redone
  and queued work is never lost;
* each unit carries a *fence*, bumped on every lease.  A completion is
  accepted only while the unit is leased under a matching fence, so a
  worker whose lease expired (and whose unit was handed to someone
  else) cannot overwrite the new lease's result — at most one
  completion is ever recorded per lease, and re-runs of pure jobs stay
  harmless;
* live leases *survive* a coordinator restart (owner, fence and expiry
  are all persisted): a worker that keeps executing through the outage
  completes against the same fence, so the unit is not re-run.

Clock discipline: lease expiries are ``time.monotonic()`` readings —
wall clocks can step backwards under NTP, and a backwards jump on
``time.time()`` arithmetic would expire every live lease at once.
Monotonic readings are only comparable within one boot, so
:meth:`JobStore.reclaim_expired` treats an expiry implausibly far in
the future (:data:`LEASE_HORIZON_SECONDS`) as stale and reclaims it.
Persisted *provenance* stamps (``created``, ``cancelled_at``) instead
come from :func:`repro.provenance.epoch_now` — they are read across
hosts and must be real wall-clock time.

Payloads are stored as the wire format's job/result *entry* lists
(JSON text, pickles base64-armoured inside — see
:mod:`repro.engine.remote.wire`), so the store never unpickles anything
and leases can be served byte-identically to what was submitted.

Crash safety: file-backed stores run under ``journal_mode=WAL`` with a
``busy_timeout``, so the coordinator's threaded handlers never see
``database is locked`` under concurrent lease/complete traffic and a
killed process leaves a consistent database behind.  Opening runs a
``PRAGMA quick_check`` first; a corrupt database (torn by a disk fault
or an unclean shutdown mid-checkpoint) is *quarantined* — renamed to
``<path>.corrupt-<timestamp>`` next to its WAL sidecars — and a fresh
queue is rebuilt in its place, so the coordinator comes back serving
instead of crash-looping on an unhandled ``sqlite3`` exception.  The
quarantined file is kept for forensics (:attr:`JobStore.quarantined`).
"""

from __future__ import annotations

import dataclasses
import json
import os
import secrets
import sqlite3
import threading
import time
import warnings
from typing import Any, Sequence

from repro.errors import EngineError
from repro.provenance import epoch_now, iso_from_epoch, utc_file_stamp

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    created      REAL NOT NULL,
    created_utc  TEXT NOT NULL DEFAULT '',
    label        TEXT NOT NULL DEFAULT '',
    meta         TEXT NOT NULL DEFAULT '{}',
    total_units  INTEGER NOT NULL,
    total_jobs   INTEGER NOT NULL,
    cancelled_at REAL
);
CREATE TABLE IF NOT EXISTS units (
    job_id       TEXT NOT NULL,
    unit_index   INTEGER NOT NULL,
    state        TEXT NOT NULL,
    warm_group   TEXT,
    entries      TEXT NOT NULL,
    indices      TEXT NOT NULL,
    fence        INTEGER NOT NULL DEFAULT 0,
    lease_owner  TEXT,
    lease_expiry REAL,
    result       TEXT,
    PRIMARY KEY (job_id, unit_index)
);
CREATE INDEX IF NOT EXISTS units_by_state ON units (state);
"""

#: Unit lifecycle states.  A unit reaches ``cancelled`` only through
#: :meth:`JobStore.cancel`; the state is terminal, and because
#: completion requires ``state = leased`` under a matching fence, every
#: in-flight completion of a cancelled unit is rejected automatically.
QUEUED, LEASED, DONE, CANCELLED = "queued", "leased", "done", "cancelled"

#: How long the store waits on a locked database before failing
#: (milliseconds).  Generous: writers hold the lock for single-row
#: transactions only.
BUSY_TIMEOUT_MS = 10_000

#: Sanity horizon on lease expiries, in seconds.  Lease arithmetic runs
#: on ``time.monotonic()`` (a wall clock stepping backwards under NTP
#: must not expire every live lease at once), but monotonic readings
#: restart from near zero on reboot: an expiry persisted before a
#: reboot can sit arbitrarily far in the new clock's future.  Any lease
#: expiring more than this far ahead cannot have been issued by the
#: current boot's clock, so :meth:`JobStore.reclaim_expired` treats it
#: as already expired instead of stranding the unit forever.
LEASE_HORIZON_SECONDS = 7 * 24 * 3600.0


@dataclasses.dataclass(frozen=True)
class UnitSpec:
    """One unit of a submission, as handed to :meth:`JobStore.submit`.

    Attributes:
        entries: the unit's wire job entries (JSON-ready dicts).
        indices: positions of the unit's jobs in the submitted batch.
        warm_group: shared warm group of the unit's jobs, if any.
        result: pre-computed result entries (coordinator-cache hits
            dedupe at submission: the unit is born ``done``).
    """

    entries: Sequence[dict]
    indices: Sequence[int]
    warm_group: str | None = None
    result: Sequence[dict] | None = None


@dataclasses.dataclass(frozen=True)
class JobRecord:
    """One job's persistent summary plus live unit counts."""

    job_id: str
    created: float
    label: str
    meta: dict
    total_units: int
    total_jobs: int
    queued: int
    leased: int
    done: int
    cancelled_units: int = 0
    cancelled_at: float | None = None
    created_utc: str = ""

    @property
    def complete(self) -> bool:
        return self.done == self.total_units

    @property
    def cancelled(self) -> bool:
        return self.cancelled_at is not None

    @property
    def finished(self) -> bool:
        """No further state transitions will happen (done or cancelled)."""
        return self.complete or self.cancelled


@dataclasses.dataclass(frozen=True)
class UnitView:
    """One unit's queue-visible state (payload omitted)."""

    job_id: str
    unit_index: int
    state: str
    warm_group: str | None
    fence: int
    lease_owner: str | None
    lease_expiry: float | None
    jobs: int


class JobStore:
    """Sqlite-backed queue of jobs, units and leases.

    Thread-safe: the coordinator's threaded HTTP handlers share one
    instance through an internal lock (sqlite serialises writers anyway;
    the lock keeps read-modify-write sequences atomic).

    Args:
        path: database file, created if missing.  ``":memory:"`` builds
            a throwaway store (unit tests); real coordinators pass a
            file so the queue survives restarts.

    A corrupt database file is quarantined and rebuilt rather than
    raised (see the module docstring); :attr:`quarantined` names the
    preserved file when that happened, ``None`` otherwise.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._lock = threading.RLock()
        self._path = str(path)
        self.quarantined: str | None = None
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError as exc:
            if self._path == ":memory:":
                raise
            self.quarantined = self._quarantine(exc)
            self._conn = self._open()

    def _open(self) -> sqlite3.Connection:
        """Connect, apply durability PRAGMAs, verify, migrate."""
        conn = sqlite3.connect(self._path, check_same_thread=False)
        try:
            # WAL lets the threaded HTTP handlers read while a writer
            # commits, and busy_timeout turns residual lock contention
            # into a bounded wait instead of "database is locked".
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            verdict = conn.execute("PRAGMA quick_check").fetchone()
            if verdict is None or verdict[0] != "ok":
                raise sqlite3.DatabaseError(
                    f"integrity check failed: {verdict!r}"
                )
            with conn:
                conn.executescript(_SCHEMA)
                self._migrate(conn)
        except BaseException:
            conn.close()
            raise
        return conn

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring an older database up to the current schema."""
        columns = {
            row[1] for row in conn.execute("PRAGMA table_info(jobs)")
        }
        if "cancelled_at" not in columns:
            conn.execute("ALTER TABLE jobs ADD COLUMN cancelled_at REAL")
        if "created_utc" not in columns:
            conn.execute(
                "ALTER TABLE jobs ADD COLUMN created_utc "
                "TEXT NOT NULL DEFAULT ''"
            )

    def _quarantine(self, cause: Exception) -> str:
        """Move the corrupt database (and WAL sidecars) out of the way."""
        # UTC, not local wall-clock: quarantine stamps from different
        # hosts must sort consistently (see repro.provenance).
        stamp = utc_file_stamp()
        target = f"{self._path}.corrupt-{stamp}"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{self._path}.corrupt-{stamp}.{suffix}"
        os.replace(self._path, target)
        for sidecar in ("-wal", "-shm"):
            try:
                os.replace(
                    self._path + sidecar, target + sidecar
                )
            except FileNotFoundError:
                pass
        warnings.warn(
            f"job queue database {self._path} failed its integrity "
            f"check ({cause}); quarantined to {target} and rebuilt "
            "empty — submitted jobs before the corruption are lost, "
            "but the coordinator is serving again",
            RuntimeWarning,
            stacklevel=3,
        )
        return target

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        units: Sequence[UnitSpec],
        *,
        label: str = "",
        meta: dict | None = None,
        total_jobs: int | None = None,
    ) -> str:
        """Record one submitted batch; returns its fresh job id."""
        if not units:
            raise EngineError("cannot submit a job with no units")
        job_id = secrets.token_hex(6)
        jobs = (
            total_jobs
            if total_jobs is not None
            else sum(len(unit.indices) for unit in units)
        )
        # One clock reading for both spellings: `created` stays a float
        # (ordering), `created_utc` is the portable cross-host
        # provenance form.  Both are persisted, so both come from the
        # provenance wall clock — never the monotonic lease clock.
        now = epoch_now()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO jobs (job_id, created, created_utc, label, "
                "meta, total_units, total_jobs) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    job_id,
                    now,
                    iso_from_epoch(now),
                    label,
                    json.dumps(meta or {}),
                    len(units),
                    jobs,
                ),
            )
            for index, unit in enumerate(units):
                done = unit.result is not None
                self._conn.execute(
                    "INSERT INTO units (job_id, unit_index, state, "
                    "warm_group, entries, indices, result) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        index,
                        DONE if done else QUEUED,
                        unit.warm_group,
                        json.dumps(list(unit.entries)),
                        json.dumps(list(unit.indices)),
                        json.dumps(list(unit.result)) if done else None,
                    ),
                )
        return job_id

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def reclaim_expired(self, now: float | None = None) -> list[tuple[str, int]]:
        """Re-queue every lease past its expiry (fence bumped).

        Returns the reclaimed ``(job_id, unit_index)`` pairs — the
        heartbeat-loss reassignment the remote backend's dead-worker
        semantics map onto.  ``now`` and the stored expiries are
        ``time.monotonic()`` readings; expiries past
        :data:`LEASE_HORIZON_SECONDS` are stale stamps from a previous
        boot's clock and are reclaimed too.
        """
        now = time.monotonic() if now is None else now
        with self._lock, self._conn:
            rows = self._conn.execute(
                "SELECT job_id, unit_index FROM units "
                "WHERE state = ? AND (lease_expiry < ? OR lease_expiry > ?)",
                (LEASED, now, now + LEASE_HORIZON_SECONDS),
            ).fetchall()
            for job_id, unit_index in rows:
                self._conn.execute(
                    "UPDATE units SET state = ?, fence = fence + 1, "
                    "lease_owner = NULL, lease_expiry = NULL "
                    "WHERE job_id = ? AND unit_index = ?",
                    (QUEUED, job_id, unit_index),
                )
        return [(job_id, unit_index) for job_id, unit_index in rows]

    def queued_units(self) -> list[tuple[str, int, str | None]]:
        """Queued ``(job_id, unit_index, warm_group)`` in FIFO order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, unit_index, warm_group FROM units "
                "WHERE state = ? ORDER BY rowid",
                (QUEUED,),
            ).fetchall()
        return [tuple(row) for row in rows]

    def lease(
        self,
        job_id: str,
        unit_index: int,
        worker_id: str,
        expiry: float,
    ) -> tuple[int, list[dict], list[int]] | None:
        """Lease one queued unit to ``worker_id``.

        Returns ``(fence, entries, indices)``, or ``None`` when the unit
        was no longer queued (raced away).  The fence is bumped *by* the
        lease, so each lease instance is uniquely fenced.
        """
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE units SET state = ?, fence = fence + 1, "
                "lease_owner = ?, lease_expiry = ? "
                "WHERE job_id = ? AND unit_index = ? AND state = ?",
                (LEASED, worker_id, expiry, job_id, unit_index, QUEUED),
            )
            if cursor.rowcount != 1:
                return None
            fence, entries, indices = self._conn.execute(
                "SELECT fence, entries, indices FROM units "
                "WHERE job_id = ? AND unit_index = ?",
                (job_id, unit_index),
            ).fetchone()
        return fence, json.loads(entries), json.loads(indices)

    def renew_leases(self, worker_id: str, expiry: float) -> int:
        """Extend every live lease held by ``worker_id`` (heartbeat)."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE units SET lease_expiry = ? "
                "WHERE state = ? AND lease_owner = ?",
                (expiry, LEASED, worker_id),
            )
            return cursor.rowcount

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def complete(
        self,
        job_id: str,
        unit_index: int,
        fence: int,
        result_entries: Sequence[dict],
    ) -> bool:
        """Record one unit's results, fenced.

        Accepted only while the unit is leased under the presented
        fence; a stale completion (the lease expired and was re-issued)
        returns ``False`` and records nothing.  The owner id is *not*
        part of the check: the fence already identifies the lease
        instance, and a worker that re-registered under a new id after a
        coordinator restart must still be able to land its in-flight
        unit.
        """
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE units SET state = ?, result = ?, "
                "lease_owner = NULL, lease_expiry = NULL "
                "WHERE job_id = ? AND unit_index = ? "
                "AND state = ? AND fence = ?",
                (
                    DONE,
                    json.dumps(list(result_entries)),
                    job_id,
                    unit_index,
                    LEASED,
                    fence,
                ),
            )
            return cursor.rowcount == 1

    # ------------------------------------------------------------------
    # Cancellation and forced lease release
    # ------------------------------------------------------------------
    def cancel(self, job_id: str, now: float | None = None) -> bool:
        """Cancel one job; returns whether the job exists.

        Queued and leased units move to the terminal ``cancelled``
        state with their fence bumped, so any in-flight completion is
        rejected (completion requires ``state = leased`` under the
        presented fence).  The lease owner is *kept* on cancelled
        units: heartbeats use it to tell a worker mid-unit that the
        rest of its unit is no longer wanted.  Done units keep their
        results.  Idempotent — cancelling twice records the first
        timestamp.
        """
        now = epoch_now() if now is None else now
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET cancelled_at = ? "
                "WHERE job_id = ? AND cancelled_at IS NULL",
                (now, job_id),
            )
            known = (
                cursor.rowcount == 1
                or self._conn.execute(
                    "SELECT 1 FROM jobs WHERE job_id = ?", (job_id,)
                ).fetchone()
                is not None
            )
            if known:
                self._conn.execute(
                    "UPDATE units SET state = ?, fence = fence + 1, "
                    "lease_expiry = NULL "
                    "WHERE job_id = ? AND state IN (?, ?)",
                    (CANCELLED, job_id, QUEUED, LEASED),
                )
            return known

    def cancelled_jobs_for(self, worker_id: str) -> list[str]:
        """Cancelled job ids whose units ``worker_id`` last held —
        the heartbeat payload telling a worker to stop mid-unit."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT job_id FROM units "
                "WHERE state = ? AND lease_owner = ?",
                (CANCELLED, worker_id),
            ).fetchall()
        return [row[0] for row in rows]

    def release_worker(self, worker_id: str) -> list[tuple[str, int]]:
        """Re-queue every live lease held by ``worker_id`` (fence
        bumped) — the immediate reassignment behind worker quarantine,
        where waiting for lease expiry would leave a misbehaving
        worker's units dangling."""
        with self._lock, self._conn:
            rows = self._conn.execute(
                "SELECT job_id, unit_index FROM units "
                "WHERE state = ? AND lease_owner = ?",
                (LEASED, worker_id),
            ).fetchall()
            for job_id, unit_index in rows:
                self._conn.execute(
                    "UPDATE units SET state = ?, fence = fence + 1, "
                    "lease_owner = NULL, lease_expiry = NULL "
                    "WHERE job_id = ? AND unit_index = ?",
                    (QUEUED, job_id, unit_index),
                )
        return [(job_id, unit_index) for job_id, unit_index in rows]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT job_id, created, label, meta, total_units, "
                "total_jobs, cancelled_at, created_utc "
                "FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
            if row is None:
                return None
            counts = dict(
                self._conn.execute(
                    "SELECT state, COUNT(*) FROM units WHERE job_id = ? "
                    "GROUP BY state",
                    (job_id,),
                ).fetchall()
            )
        return self._record(row, counts)

    def jobs(self) -> list[JobRecord]:
        """Every job, newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, created, label, meta, total_units, "
                "total_jobs, cancelled_at, created_utc FROM jobs "
                "ORDER BY created DESC, job_id"
            ).fetchall()
            counts: dict[str, dict[str, int]] = {}
            for job_id, state, count in self._conn.execute(
                "SELECT job_id, state, COUNT(*) FROM units "
                "GROUP BY job_id, state"
            ):
                counts.setdefault(job_id, {})[state] = count
        return [self._record(row, counts.get(row[0], {})) for row in rows]

    @staticmethod
    def _record(row: Sequence[Any], counts: dict[str, int]) -> JobRecord:
        (
            job_id,
            created,
            label,
            meta,
            total_units,
            total_jobs,
            cancelled_at,
            created_utc,
        ) = row
        return JobRecord(
            job_id=job_id,
            created=created,
            label=label,
            meta=json.loads(meta),
            total_units=total_units,
            total_jobs=total_jobs,
            queued=counts.get(QUEUED, 0),
            leased=counts.get(LEASED, 0),
            done=counts.get(DONE, 0),
            cancelled_units=counts.get(CANCELLED, 0),
            cancelled_at=cancelled_at,
            created_utc=created_utc,
        )

    def units(self, job_id: str) -> list[UnitView]:
        """Per-unit progress of one job (payloads omitted)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id, unit_index, state, warm_group, fence, "
                "lease_owner, lease_expiry, indices FROM units "
                "WHERE job_id = ? ORDER BY unit_index",
                (job_id,),
            ).fetchall()
        return [
            UnitView(*row[:7], jobs=len(json.loads(row[7]))) for row in rows
        ]

    def unit_job_count(self, job_id: str, unit_index: int) -> int | None:
        """How many batch jobs one unit carries (``None`` if unknown) —
        the expected result-entry count a completion must match."""
        with self._lock:
            row = self._conn.execute(
                "SELECT indices FROM units "
                "WHERE job_id = ? AND unit_index = ?",
                (job_id, unit_index),
            ).fetchone()
        if row is None:
            return None
        return len(json.loads(row[0]))

    def unit_entries(self, job_id: str, unit_index: int) -> list[dict]:
        """The stored job entries of one unit (cache passthrough)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT entries FROM units "
                "WHERE job_id = ? AND unit_index = ?",
                (job_id, unit_index),
            ).fetchone()
        if row is None:
            raise EngineError(f"unknown unit {job_id}/{unit_index}")
        return json.loads(row[0])

    def results(
        self, job_id: str
    ) -> tuple[JobRecord, list[dict]]:
        """``(record, done units)`` with each unit's indices + entries."""
        record = self.job(job_id)
        if record is None:
            raise EngineError(f"unknown job id {job_id!r}")
        with self._lock:
            rows = self._conn.execute(
                "SELECT unit_index, indices, result FROM units "
                "WHERE job_id = ? AND state = ? ORDER BY unit_index",
                (job_id, DONE),
            ).fetchall()
        units = [
            {
                "unit": unit_index,
                "indices": json.loads(indices),
                "results": json.loads(result),
            }
            for unit_index, indices, result in rows
        ]
        return record, units

    def counts(self) -> dict[str, int]:
        """Fleet-level unit counts (the coordinator's health document)."""
        with self._lock:
            jobs = self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()
            states = dict(
                self._conn.execute(
                    "SELECT state, COUNT(*) FROM units GROUP BY state"
                ).fetchall()
            )
        return {
            "jobs": jobs[0],
            "queued": states.get(QUEUED, 0),
            "leased": states.get(LEASED, 0),
            "done": states.get(DONE, 0),
            "cancelled": states.get(CANCELLED, 0),
        }
