"""The pull worker: dial in, lease units, execute, report back.

:class:`PullWorker` is the service-side flavour of ``repro worker`` —
started with ``repro worker --coordinator URL`` instead of a listen
port.  Where the push :class:`~repro.engine.remote.worker.WorkerServer`
waits for a client to POST batches at it, the pull worker *initiates*
everything:

1. **register** — POST ``/register``, receiving a coordinator-issued
   worker id (no pre-shared worker list anywhere);
2. **lease loop** — POST ``/lease`` for the next unit; an empty queue
   backs off briefly and asks again, a grant executes each job through
   the exact same :func:`~repro.engine.remote.worker.execute_wire_job`
   path the push server uses (shared :class:`ResultCache` consult, warm
   thread-local batch solver, identical statistics);
3. **complete** — POST ``/complete`` with the unit's results and its
   lease fence; the coordinator refuses a stale fence, which is what
   makes a re-leased unit safe;
4. **heartbeat** — a background thread renews the worker's leases and
   ships its :class:`~repro.engine.remote.worker.WorkerStats` counters,
   so ``repro jobs --workers`` shows live per-worker numbers.

Fault behaviour mirrors the push backend from the other side: an
unreachable coordinator is retried under the shared
:class:`~repro.service.retry.RetryPolicy` backoff (the worker survives
a coordinator restart), and a lease or heartbeat answered
"unregistered" triggers transparent re-registration — in-flight units
still complete, because completions are fenced, not owner-checked.
Heartbeat acks also carry cancelled job ids, so a worker abandons the
rest of a cancelled unit mid-execution instead of finishing work
nobody will accept.
"""

from __future__ import annotations

import threading
import time
import urllib.request

from repro.engine.cache import ResultCache
from repro.engine.remote.wire import (
    decode_document,
    decode_lease,
    encode_document,
    encode_unit_result,
)
from repro.engine.remote.worker import (
    WorkerStats,
    execute_wire_job,
    snapshot_warm_reuses,
)
from repro.errors import RemoteError
from repro.service.coordinator import (
    COMPLETE_PATH,
    HEARTBEAT_ACK_KIND,
    HEARTBEAT_KIND,
    HEARTBEAT_PATH,
    LEASE_PATH,
    LEASE_REQUEST_KIND,
    REGISTER_KIND,
    REGISTER_PATH,
    REGISTERED_KIND,
    UNIT_ACCEPTED_KIND,
)
from repro.service.retry import (
    TRANSPORT_ERRORS,
    RetryPolicy,
    retryable_exchange,
)

#: How long an idle worker waits before asking for work again.
IDLE_POLL_SECONDS = 0.2

#: Cap of the unreachable-coordinator retry backoff.
MAX_BACKOFF_SECONDS = 5.0


class PullWorker:
    """One lease-loop execution slot attached to a coordinator.

    Args:
        coordinator_url: base URL of the ``repro serve`` process.
        name: human-readable registration name (defaults to ``host:pid``
            style is the CLI's job; here it defaults to empty).
        cache: optional shared :class:`ResultCache` — same dedupe
            contract as the push worker.
        idle_poll: seconds between lease attempts on an empty queue.
        timeout: per-request HTTP timeout.

    The loop runs on the calling thread via :meth:`run`, or in a daemon
    thread via :meth:`start`/:meth:`stop` (tests, benchmarks).
    """

    def __init__(
        self,
        coordinator_url: str,
        *,
        name: str = "",
        cache: ResultCache | None = None,
        idle_poll: float = IDLE_POLL_SECONDS,
        timeout: float = 600.0,
    ) -> None:
        self.coordinator_url = coordinator_url.strip().rstrip("/")
        self.name = name
        self.cache = cache
        self.idle_poll = idle_poll
        self.timeout = timeout
        self.stats = WorkerStats()
        self.worker_id: str | None = None
        self.lease_seconds = 60.0
        #: Job ids the coordinator reported cancelled (heartbeat acks);
        #: the execute loop consults this between jobs of a unit.
        self._cancelled: set[str] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._heartbeat_thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _post(self, path: str, body: bytes) -> bytes:
        request = urllib.request.Request(
            self.coordinator_url + path,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as resp:
            return resp.read()

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------
    def register(self) -> str:
        """Register (or re-register) with the coordinator."""
        body = encode_document(REGISTER_KIND, {"name": self.name})
        document = decode_document(
            self._post(REGISTER_PATH, body), REGISTERED_KIND
        )
        worker_id = document.get("worker_id")
        if not isinstance(worker_id, str):
            raise RemoteError("registration answer carries no worker_id")
        lease_seconds = document.get("lease_seconds")
        if isinstance(lease_seconds, (int, float)) and lease_seconds > 0:
            self.lease_seconds = float(lease_seconds)
        self.worker_id = worker_id
        return worker_id

    def _lease(self) -> dict | None:
        body = encode_document(
            LEASE_REQUEST_KIND, {"worker_id": self.worker_id}
        )
        return decode_lease(self._post(LEASE_PATH, body))

    def _complete(self, grant: dict, results) -> bool:
        """Upload one unit's results; returns whether they were accepted.

        The coordinator's answer is a ``UNIT_ACCEPTED_KIND`` envelope
        and is decoded (version-checked) rather than discarded — a
        mangled answer raises :class:`RemoteError`, and retrying is safe
        because a completion that already landed is simply fence-
        rejected (``accepted: false``) on the repeat.
        """
        body = encode_unit_result(
            worker_id=self.worker_id or "",
            job_id=grant["job_id"],
            unit=grant["unit"],
            fence=grant["fence"],
            results=results,
        )
        answer = decode_document(
            self._post(COMPLETE_PATH, body), UNIT_ACCEPTED_KIND
        )
        return bool(answer.get("accepted"))

    def _heartbeat(self) -> bool:
        """One heartbeat round-trip; returns whether we are still known."""
        body = encode_document(
            HEARTBEAT_KIND,
            {
                "worker_id": self.worker_id,
                "stats": {
                    "batches": self.stats.batches,
                    "executed": self.stats.executed,
                    "cached": self.stats.cached,
                    "warm_reuses": self.stats.warm_reuses,
                    "failures": self.stats.failures,
                },
            },
        )
        document = decode_document(
            self._post(HEARTBEAT_PATH, body), HEARTBEAT_ACK_KIND
        )
        cancelled = document.get("cancelled")
        if isinstance(cancelled, list):
            self._cancelled.update(
                job_id for job_id in cancelled if isinstance(job_id, str)
            )
        return bool(document.get("known"))

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Lease-execute-complete until :meth:`stop` (or forever)."""
        policy = RetryPolicy(
            initial=self.idle_poll,
            multiplier=2.0,
            max_delay=max(MAX_BACKOFF_SECONDS, self.idle_poll),
        )
        backoff = policy.backoff()
        self._start_heartbeat()
        try:
            while not self._stop.is_set():
                try:
                    if self.worker_id is None:
                        self.register()
                    grant = self._lease()
                except TRANSPORT_ERRORS + (RemoteError,):
                    # Coordinator down or restarting: retry with backoff.
                    self._stop.wait(backoff.next_delay() or self.idle_poll)
                    continue
                backoff.reset()
                if grant is not None and grant.get("unregistered"):
                    # Coordinator restarted and lost the registry.
                    self.worker_id = None
                    continue
                if grant is None:
                    self._stop.wait(self.idle_poll)
                    continue
                self._execute_grant(grant)
        finally:
            self._stop.set()

    def _execute_grant(self, grant: dict) -> None:
        """Run one leased unit and report it, fenced.

        A cancellation learned over the heartbeat aborts the unit
        between jobs — the remaining work would be fence-rejected
        anyway, so finishing it only wastes the slot.

        Completion retries through coordinator outages for up to two
        lease periods: a coordinator that restarts within the lease
        still receives the result under the original fence, so the unit
        is never re-run.  Past that horizon the lease has expired anyway
        — the unit is re-leased elsewhere and a late completion would be
        fence-rejected, so giving up is safe (jobs are pure, and a
        shared cache answers the rerun without recomputing).  A
        non-retryable rejection (the coordinator answered 4xx — it
        refused this completion deliberately) is dropped immediately.
        """
        job_id = grant["job_id"]
        results = []
        for item in grant["jobs"]:
            if job_id in self._cancelled or self._stop.is_set():
                return
            results.append(execute_wire_job(item, self.cache, self.stats))
        self.stats.batches += 1
        snapshot_warm_reuses(self.stats)
        policy = RetryPolicy(
            initial=self.idle_poll,
            multiplier=2.0,
            max_delay=max(1.0, self.idle_poll),
            deadline=2.0 * self.lease_seconds,
        )
        backoff = policy.backoff()
        while not self._stop.is_set() and job_id not in self._cancelled:
            try:
                self._complete(grant, results)
                return
            except TRANSPORT_ERRORS + (RemoteError,) as exc:
                # RemoteError here means the *answer* was mangled; the
                # completion may have landed, and the repeat is fence-
                # rejected if so — retrying is always safe.
                if not retryable_exchange(exc):
                    return
                delay = backoff.next_delay()
                if delay is None:
                    return
                self._stop.wait(delay)

    def _start_heartbeat(self) -> None:
        def beat() -> None:
            # Tick fast, beat at lease_seconds/3 — recomputed every tick,
            # because registration (which delivers the coordinator's
            # lease period) happens *after* this thread starts.
            next_beat = time.monotonic()
            while not self._stop.wait(0.05):
                if self.worker_id is None or time.monotonic() < next_beat:
                    continue
                next_beat = time.monotonic() + max(
                    self.lease_seconds / 3.0, 0.05
                )
                try:
                    if not self._heartbeat():
                        self.worker_id = None
                except TRANSPORT_ERRORS + (RemoteError,):
                    continue

        thread = threading.Thread(
            target=beat, name="repro-pull-heartbeat", daemon=True
        )
        thread.start()
        self._heartbeat_thread = thread

    # ------------------------------------------------------------------
    def start(self) -> "PullWorker":
        """Run the loop in a daemon thread (tests and benchmarks)."""
        self._stop.clear()
        thread = threading.Thread(
            target=self.run, name="repro-pull-worker", daemon=True
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        """Signal the loop to exit and join its threads."""
        self._stop.set()
        for thread in (self._thread, self._heartbeat_thread):
            if thread is not None:
                thread.join(timeout=5)
        self._thread = None
        self._heartbeat_thread = None


def serve_pull(
    coordinator_url: str,
    *,
    name: str = "",
    cache_dir: str | None = None,
) -> None:
    """Run one pull worker in the foreground
    (``repro worker --coordinator URL``).

    Prints the registration line scripts parse, then leases until
    interrupted.
    """
    cache = ResultCache(directory=cache_dir) if cache_dir else None
    worker = PullWorker(coordinator_url, name=name, cache=cache)
    RetryPolicy(deadline=60.0).call(
        worker.register,
        description=f"registration with coordinator {coordinator_url}",
    )
    print(
        f"repro worker {worker.worker_id} registered with "
        f"{worker.coordinator_url}",
        flush=True,
    )
    try:
        worker.run()
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
