"""Characterisation microbenchmarks (Section 3.3.1-3.3.2 methodology).

The paper derives Table 2 empirically: "we used ... a specific set of
microbenchmarks comprising a known number of requests of a given type to a
desired target resource", measuring latencies with the cycle counter and
per-access stalls with PMEM_STALL/DMEM_STALL.  This module reconstructs
that suite against the simulator:

* **latency probes** — isolated (non-pipelined) single accesses whose
  end-to-end SRI occupancy reveals ``l_max`` (and the LMU's bracketed
  dirty latency);
* **stream probes** — back-to-back accesses in prefetch-friendly patterns
  revealing ``l_min`` and, through the stall counters divided by the known
  access count, the per-access minimum stall ``cs^{t,o}``.

:mod:`repro.analysis.characterization` runs the suite and rebuilds
Table 2, which the test-suite compares against the paper's values.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.errors import WorkloadError
from repro.platform.targets import (
    Operation,
    Target,
    is_valid_pair,
    targets_for,
)
from repro.sim.program import Step, TaskProgram
from repro.sim.requests import MissKind, SriRequest

#: Gap between isolated latency-probe accesses: long enough that no
#: pipelining or prefetching spans two accesses.
PROBE_GAP = 100

#: Default access count per probe; enough to make per-access division
#: exact, small enough to keep characterisation instant.
PROBE_COUNT = 256


@dataclasses.dataclass(frozen=True)
class Probe:
    """One microbenchmark: a known number of identical accesses.

    Attributes:
        name: probe identifier, e.g. ``"pf0,co,stream"``.
        target: SRI slave exercised.
        operation: access type.
        flavour: ``"isolated"``, ``"stream"``, ``"write"`` or ``"dirty"``.
        program: the compiled task program.
        count: number of SRI accesses the program performs (known by
            construction, as the methodology requires).
    """

    name: str
    target: Target
    operation: Operation
    flavour: str
    program: TaskProgram
    count: int


def _request(
    target: Target, operation: Operation, flavour: str
) -> SriRequest:
    if flavour == "isolated":
        return SriRequest(target=target, operation=operation)
    if flavour == "stream":
        return SriRequest(target=target, operation=operation, sequential=True)
    if flavour == "write":
        if operation is not Operation.DATA:
            raise WorkloadError("write probes are data probes")
        return SriRequest(
            target=target,
            operation=operation,
            sequential=True,
            write=True,
        )
    if flavour == "dirty":
        if target is not Target.LMU:
            raise WorkloadError("dirty probes only exist on the LMU")
        return SriRequest(
            target=target,
            operation=Operation.DATA,
            miss_kind=MissKind.DCACHE_MISS_DIRTY,
            dirty_eviction=True,
        )
    raise WorkloadError(f"unknown probe flavour {flavour!r}")


def probe(
    target: Target,
    operation: Operation,
    flavour: str,
    *,
    count: int = PROBE_COUNT,
) -> Probe:
    """Build one probe of ``count`` identical accesses.

    Isolated probes space accesses ``PROBE_GAP`` cycles apart; stream
    probes issue back-to-back.
    """
    if count <= 0:
        raise WorkloadError("probe count must be positive")
    request = _request(target, operation, flavour)
    gap = PROBE_GAP if flavour in ("isolated", "dirty") else 0

    def factory() -> Iterator[Step]:
        for _ in range(count):
            yield (gap, request)

    name = f"{target.value},{operation.value},{flavour}"
    return Probe(
        name=name,
        target=target,
        operation=operation,
        flavour=flavour,
        program=TaskProgram(name=name, stream_factory=factory),
        count=count,
    )


def characterization_suite(*, count: int = PROBE_COUNT) -> list[Probe]:
    """The full probe suite covering every (target, operation) flavour.

    Per valid pair: an isolated probe (worst latency) and a stream probe
    (best latency / minimum stall); data pairs add a write probe (store
    buffering) and the LMU adds the dirty-eviction probe.
    """
    probes: list[Probe] = []
    for operation in (Operation.CODE, Operation.DATA):
        for target in targets_for(operation):
            if not is_valid_pair(target, operation):
                continue
            probes.append(probe(target, operation, "isolated", count=count))
            probes.append(probe(target, operation, "stream", count=count))
            if operation is Operation.DATA:
                probes.append(probe(target, operation, "write", count=count))
    probes.append(probe(Target.LMU, Operation.DATA, "dirty", count=count))
    return probes
