"""Contender tasks: the H-Load / M-Load / L-Load SRI stressors.

Section 4.2: "We stress the application with 3 different co-runners that
generate an increasing (load) number of accesses to the SRI".  The H-Load
counter footprint is published in Table 6; M and L are not, so they are
scaled replicas (factors recorded in :mod:`repro.paper` — L ≈ 0.5 matches
the published Figure 4 endpoints).

A load generator is structurally simpler than the application: a tight
loop of code fetches and LMU data traffic with minimal computation gaps,
deployed under the same scenario as the application (the paper assumes
deployment configurations apply equally to contenders).
"""

from __future__ import annotations

from repro import paper
from repro.counters.readings import TaskReadings
from repro.errors import WorkloadError
from repro.platform.targets import Operation, Target
from repro.sim.program import TaskProgram
from repro.sim.requests import MissKind
from repro.workloads.control_loop import split_code_misses, split_data_rw
from repro.workloads.spec import RequestBlock, WorkloadSpec, spread_counts

#: Loop interleaving granularity of the load generators.
LOAD_CHUNKS = 16

#: Recognised load levels, highest first.
LOAD_LEVELS: tuple[str, ...] = ("H", "M", "L")


def load_readings(scenario_name: str, level: str) -> TaskReadings:
    """Counter footprint of one load level (H verbatim from Table 6)."""
    if level not in LOAD_LEVELS:
        raise WorkloadError(
            f"unknown load level {level!r}; expected one of {LOAD_LEVELS}"
        )
    try:
        return paper.contender_readings(scenario_name, level)
    except KeyError as exc:
        raise WorkloadError(f"unknown scenario {scenario_name!r}") from exc


def build_load(
    scenario_name: str,
    level: str,
    *,
    scale: float = 1.0,
    chunks: int = LOAD_CHUNKS,
) -> TaskProgram:
    """Build a load-generator program matching a (scaled) footprint.

    Args:
        scenario_name: ``"scenario1"`` or ``"scenario2"`` (decides where
            the contender's data traffic goes, per Figure 3).
        level: ``"H"``, ``"M"`` or ``"L"``.
        scale: additional footprint scale (the same factor applied to the
            application keeps the experiment proportions intact).
    """
    if scale <= 0 or scale > 1.0:
        raise WorkloadError("scale must be in (0, 1]")
    target = load_readings(scenario_name, level)
    if scale != 1.0:
        target = target.scaled(scale, name=target.name)

    code_random, code_sequential = split_code_misses(target.pm, target.ps)
    if scenario_name == "scenario1":
        clean_misses = 0
        data_budget = target.ds
    elif scenario_name == "scenario2":
        clean_misses = target.dmc + target.dmd
        data_budget = target.ds - 11 * clean_misses
        if data_budget < 0:
            # At strong down-scaling the miss fills can exceed the stall
            # budget; drop the misses rather than fail (they are a few
            # hundred out of tens of thousands of cycles).
            clean_misses = 0
            data_budget = target.ds
    else:
        raise WorkloadError(f"unknown scenario {scenario_name!r}")
    lmu_reads, lmu_writes = split_data_rw(data_budget)

    chunks = max(1, min(chunks, max(1, target.pm)))
    code_rand_shares = spread_counts(code_random, [1.0] * chunks)
    code_seq_shares = spread_counts(code_sequential, [1.0] * chunks)
    read_shares = spread_counts(lmu_reads, [1.0] * chunks)
    write_shares = spread_counts(lmu_writes, [1.0] * chunks)
    miss_shares = spread_counts(clean_misses, [1.0] * chunks)

    blocks: list[RequestBlock] = []
    for chunk in range(chunks):
        for flavour_count, fraction in (
            (code_seq_shares[chunk], 1.0),
            (code_rand_shares[chunk], 0.0),
        ):
            if not flavour_count:
                continue
            for pf, share in zip(
                (Target.PF0, Target.PF1),
                spread_counts(flavour_count, [1.0, 1.0]),
            ):
                if share:
                    blocks.append(
                        RequestBlock(
                            target=pf,
                            operation=Operation.CODE,
                            count=share,
                            gap=0,
                            sequential_fraction=fraction,
                            miss_kind=MissKind.ICACHE_MISS,
                        )
                    )
        if miss_shares[chunk]:
            blocks.append(
                RequestBlock(
                    target=Target.LMU,
                    operation=Operation.DATA,
                    count=miss_shares[chunk],
                    gap=0,
                    sequential_fraction=1.0,
                    miss_kind=MissKind.DCACHE_MISS_CLEAN,
                )
            )
        if read_shares[chunk]:
            blocks.append(
                RequestBlock(
                    target=Target.LMU,
                    operation=Operation.DATA,
                    count=read_shares[chunk],
                    gap=0,
                    miss_kind=MissKind.UNCACHED,
                )
            )
        if write_shares[chunk]:
            blocks.append(
                RequestBlock(
                    target=Target.LMU,
                    operation=Operation.DATA,
                    count=write_shares[chunk],
                    gap=0,
                    write_fraction=1.0,
                    miss_kind=MissKind.UNCACHED,
                )
            )
    spec = WorkloadSpec(name=target.name, blocks=tuple(blocks))
    return spec.program()


def all_loads(
    scenario_name: str, *, scale: float = 1.0
) -> dict[str, TaskProgram]:
    """All three load generators of one scenario, keyed H/M/L."""
    return {
        level: build_load(scenario_name, level, scale=scale)
        for level in LOAD_LEVELS
    }
