"""Randomised synthetic tasks for property tests and soundness sweeps.

The regression experiments replay the paper's workloads; the *soundness*
claim ("in all experiments our model predictions upperbound the observed
multicore execution time") deserves wider exercise.  This module generates
random-but-valid tasks under a deployment scenario: random per-target
request populations, mixes and gaps, deterministic per seed.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.platform.deployment import DeploymentScenario
from repro.platform.targets import Operation
from repro.sim.program import TaskProgram
from repro.sim.requests import MissKind
from repro.workloads.spec import RequestBlock, WorkloadSpec


def random_workload(
    name: str,
    scenario: DeploymentScenario,
    *,
    seed: int,
    max_requests: int = 2_000,
    max_gap: int = 8,
    blocks_range: tuple[int, int] = (2, 8),
) -> WorkloadSpec:
    """Generate a random workload valid under ``scenario``.

    Args:
        name: task name.
        scenario: deployment scenario constraining targets and miss kinds.
        seed: RNG seed (same seed ⇒ identical workload).
        max_requests: cap on total SRI requests.
        max_gap: cap on per-request computation gaps.
        blocks_range: inclusive range for the number of blocks.

    The generator respects the scenario's counter semantics: cacheable
    code yields I$-miss transactions (so P$_MISS stays exact), data
    traffic is uncached except on scenarios with cacheable data, where a
    random share becomes clean/dirty data-cache misses.
    """
    if max_requests <= 0:
        raise WorkloadError("max_requests must be positive")
    rng = random.Random(seed)
    pairs = scenario.valid_pairs()
    if not pairs:
        raise WorkloadError(f"scenario {scenario.name!r} admits no traffic")

    n_blocks = rng.randint(*blocks_range)
    budget = max_requests
    blocks: list[RequestBlock] = []
    for index in range(n_blocks):
        if budget <= 0:
            break
        remaining_blocks = n_blocks - index
        count = (
            budget
            if remaining_blocks == 1
            else rng.randint(1, max(1, budget // remaining_blocks))
        )
        budget -= count
        target, operation = rng.choice(pairs)
        if operation is Operation.CODE:
            blocks.append(
                RequestBlock(
                    target=target,
                    operation=operation,
                    count=count,
                    gap=rng.randint(0, max_gap),
                    sequential_fraction=rng.random(),
                    miss_kind=MissKind.ICACHE_MISS
                    if scenario.code_count_exact
                    else MissKind.UNCACHED,
                )
            )
        else:
            cacheable = (
                scenario.data_count_lower_bounded and rng.random() < 0.3
            )
            if cacheable:
                dirty_ok = target in scenario.dirty_targets
                blocks.append(
                    RequestBlock(
                        target=target,
                        operation=operation,
                        count=count,
                        gap=rng.randint(0, max_gap),
                        sequential_fraction=rng.random(),
                        miss_kind=MissKind.DCACHE_MISS_CLEAN,
                        dirty_fraction=rng.random() * 0.5 if dirty_ok else 0.0,
                    )
                )
            else:
                blocks.append(
                    RequestBlock(
                        target=target,
                        operation=operation,
                        count=count,
                        gap=rng.randint(0, max_gap),
                        sequential_fraction=rng.random(),
                        write_fraction=rng.random(),
                        miss_kind=MissKind.UNCACHED,
                    )
                )
    if not blocks:
        raise WorkloadError("generated an empty workload")
    return WorkloadSpec(name=name, blocks=tuple(blocks))


def random_task_pair(
    scenario: DeploymentScenario,
    *,
    seed: int,
    max_requests: int = 2_000,
) -> tuple[TaskProgram, TaskProgram]:
    """A (task under analysis, contender) pair from one seed."""
    spec_a = random_workload(
        f"rand-a-{seed}", scenario, seed=seed * 2 + 1, max_requests=max_requests
    )
    spec_b = random_workload(
        f"rand-b-{seed}", scenario, seed=seed * 2 + 2, max_requests=max_requests
    )
    return spec_a.program(), spec_b.program()
