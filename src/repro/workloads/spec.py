"""Parametric workload specification: blocks of typed SRI requests.

Workloads are described as sequences of :class:`RequestBlock` objects —
"this phase performs N data reads on the LMU with this much computation in
between" — and compiled into replayable
:class:`~repro.sim.program.TaskProgram` streams.

Mix fractions (sequential/random, read/write, clean/dirty) are realised
with deterministic error-accumulator (Bresenham) sequencing instead of
random sampling, so a block's counter footprint is *exact* and identical
across runs and scales — important because the experiment drivers tune
blocks to hit the paper's Table 6 readings.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Sequence

from repro.core.ptac import AccessProfile, profile_from_pairs
from repro.errors import WorkloadError
from repro.platform.targets import Operation, Target, check_pair
from repro.sim.program import Step, TaskProgram
from repro.sim.requests import MissKind, SriRequest


class _FractionSequencer:
    """Deterministic Bresenham-style boolean sequence with a given density.

    Emits ``True`` with exact long-run frequency ``fraction``; the k-th
    decision is ``floor((k+1)·f) > floor(k·f)``, so any prefix of length n
    contains ``round-ish(n·f)`` Trues with error < 1.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise WorkloadError(f"fraction {fraction} outside [0, 1]")
        self.fraction = fraction
        self._accumulator = 0.0

    def next(self) -> bool:
        self._accumulator += self.fraction
        if self._accumulator >= 1.0 - 1e-12:
            self._accumulator -= 1.0
            return True
        return False


@dataclasses.dataclass(frozen=True)
class RequestBlock:
    """A homogeneous burst of SRI requests.

    Attributes:
        target: SRI slave addressed by every request of the block.
        operation: code or data.
        count: number of requests.
        gap: core-local computation cycles before each request.
        sequential_fraction: share of requests that fall in a prefetch
            stream (best-case service and overlap).
        write_fraction: share of data requests that are stores.
        miss_kind: originating cache event (decides which miss counter
            increments; ``UNCACHED`` for non-cacheable traffic).
        dirty_fraction: share of data requests that are dirty evictions
            (forces ``miss_kind`` DCACHE_MISS_DIRTY on those requests).
    """

    target: Target
    operation: Operation
    count: int
    gap: int = 1
    sequential_fraction: float = 0.0
    write_fraction: float = 0.0
    miss_kind: MissKind = MissKind.UNCACHED
    dirty_fraction: float = 0.0

    def __post_init__(self) -> None:
        check_pair(self.target, self.operation)
        if self.count < 0:
            raise WorkloadError("block count must be non-negative")
        if self.gap < 0:
            raise WorkloadError("block gap must be non-negative")
        if self.operation is Operation.CODE:
            if self.write_fraction or self.dirty_fraction:
                raise WorkloadError("code blocks cannot write or dirty-evict")
            if self.miss_kind in (
                MissKind.DCACHE_MISS_CLEAN,
                MissKind.DCACHE_MISS_DIRTY,
            ):
                raise WorkloadError("code blocks cannot be data-cache misses")
        if self.dirty_fraction and self.miss_kind not in (
            MissKind.DCACHE_MISS_CLEAN,
            MissKind.DCACHE_MISS_DIRTY,
        ):
            raise WorkloadError(
                "dirty evictions require a data-cache miss kind"
            )

    def steps(self) -> Iterator[Step]:
        """Generate the block's steps deterministically."""
        sequential = _FractionSequencer(self.sequential_fraction)
        writes = _FractionSequencer(self.write_fraction)
        dirty = _FractionSequencer(self.dirty_fraction)
        for _ in range(self.count):
            is_dirty = (
                self.operation is Operation.DATA and dirty.next()
            )
            miss_kind = self.miss_kind
            if is_dirty:
                miss_kind = MissKind.DCACHE_MISS_DIRTY
            elif miss_kind is MissKind.DCACHE_MISS_DIRTY:
                miss_kind = MissKind.DCACHE_MISS_CLEAN
            yield (
                self.gap,
                SriRequest(
                    target=self.target,
                    operation=self.operation,
                    miss_kind=miss_kind,
                    sequential=sequential.next(),
                    write=(
                        self.operation is Operation.DATA
                        and not is_dirty
                        and writes.next()
                    ),
                    dirty_eviction=is_dirty,
                ),
            )

    def scaled(self, factor: float) -> "RequestBlock":
        """The same block with ``count`` scaled (rounded half-up)."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return dataclasses.replace(
            self, count=int(math.floor(self.count * factor + 0.5))
        )


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A complete task: named phases of request blocks, optionally looped.

    Attributes:
        name: task name.
        blocks: the phases, executed in order each iteration.
        iterations: loop count (control loops run many iterations).
        epilogue_gap: trailing computation after the last iteration.
    """

    name: str
    blocks: tuple[RequestBlock, ...]
    iterations: int = 1
    epilogue_gap: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        if self.epilogue_gap < 0:
            raise WorkloadError("epilogue gap must be non-negative")

    def program(self) -> TaskProgram:
        """Compile into a replayable simulator program."""
        spec = self

        def factory() -> Iterator[Step]:
            for _ in range(spec.iterations):
                for block in spec.blocks:
                    yield from block.steps()
            if spec.epilogue_gap:
                yield (spec.epilogue_gap, None)

        return TaskProgram(name=self.name, stream_factory=factory)

    def expected_profile(self) -> AccessProfile:
        """The exact PTAC the compiled program will exhibit."""
        return profile_from_pairs(
            self.name,
            (
                (block.target, block.operation, block.count * self.iterations)
                for block in self.blocks
            ),
        )

    def total_requests(self) -> int:
        """Total SRI requests over all iterations."""
        return sum(block.count for block in self.blocks) * self.iterations

    def scaled(self, factor: float, *, name: str | None = None) -> "WorkloadSpec":
        """Spec with every block count scaled (shrinking for fast tests)."""
        return dataclasses.replace(
            self,
            name=name if name is not None else self.name,
            blocks=tuple(block.scaled(factor) for block in self.blocks),
            epilogue_gap=int(self.epilogue_gap * factor),
        )


def spread_counts(total: int, weights: Sequence[float]) -> list[int]:
    """Split ``total`` into integer shares proportional to ``weights``.

    Largest-remainder apportionment: shares sum to ``total`` exactly.
    Used to distribute code misses over pf0/pf1 and data over targets.
    """
    if total < 0:
        raise WorkloadError("total must be non-negative")
    if not weights or any(w < 0 for w in weights):
        raise WorkloadError("weights must be non-empty and non-negative")
    weight_sum = sum(weights)
    if weight_sum == 0:
        raise WorkloadError("weights must not all be zero")
    raw = [total * w / weight_sum for w in weights]
    shares = [int(math.floor(r)) for r in raw]
    remainder = total - sum(shares)
    by_fraction = sorted(
        range(len(raw)), key=lambda i: raw[i] - shares[i], reverse=True
    )
    for i in by_fraction[:remainder]:
        shares[i] += 1
    return shares
