"""Workload generators: the application, contenders and microbenchmarks."""

from repro.workloads.control_loop import (
    ControlLoopLayout,
    build_control_loop,
    control_loop_task,
    split_code_misses,
    split_data_rw,
)
from repro.workloads.footprint import (
    cacheable_data_miss_block,
    code_blocks,
    code_random_fraction,
    dflash_data_block,
    isolation_cycles,
    uncached_lmu_data_block,
)
from repro.workloads.kernels import (
    compile_kernel,
    fir_filter_kernel,
    kernel_suite,
    lookup_table_kernel,
    sensor_fusion_kernel,
    state_machine_kernel,
)
from repro.workloads.loads import (
    LOAD_LEVELS,
    all_loads,
    build_load,
    load_readings,
)
from repro.workloads.microbenchmarks import (
    PROBE_COUNT,
    PROBE_GAP,
    Probe,
    characterization_suite,
    probe,
)
from repro.workloads.spec import RequestBlock, WorkloadSpec, spread_counts
from repro.workloads.synthetic import random_task_pair, random_workload

__all__ = [
    "ControlLoopLayout",
    "LOAD_LEVELS",
    "PROBE_COUNT",
    "PROBE_GAP",
    "Probe",
    "RequestBlock",
    "WorkloadSpec",
    "all_loads",
    "build_control_loop",
    "build_load",
    "cacheable_data_miss_block",
    "characterization_suite",
    "compile_kernel",
    "code_blocks",
    "code_random_fraction",
    "control_loop_task",
    "dflash_data_block",
    "fir_filter_kernel",
    "isolation_cycles",
    "kernel_suite",
    "lookup_table_kernel",
    "load_readings",
    "probe",
    "random_task_pair",
    "sensor_fusion_kernel",
    "state_machine_kernel",
    "random_workload",
    "split_code_misses",
    "split_data_rw",
    "spread_counts",
    "uncached_lmu_data_block",
]
