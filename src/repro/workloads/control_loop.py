"""The application under analysis: a cruise-control-style control loop.

Section 4.2 describes the evaluation workload as "an application mimicking
a control loop (e.g., of an Automotive Cruise Control System)" performing
"the typical sequence of signal acquisition, computation and status
update", operating on two medium-size data structures, deployed in two
variants matching the reference scenarios.

We reconstruct it behaviourally: each loop iteration acquires input
signals (data reads), computes (code fetches spilling out of the
instruction cache into the PFlash), and publishes status (data writes).
Block counts are *inverted from the paper's Table 6 counter readings*
(see :mod:`repro.workloads.footprint`), so running the reconstruction in
isolation on the simulator reproduces the published counter footprint —
scaled by an optional factor to keep simulations fast.

Exactness: code miss counts are split into explicit sequential/random
sub-populations and data stalls into a read/write Diophantine split
(``11·n_r + 10·n_w = DS``), so PMEM_STALL/DMEM_STALL land within a few
cycles of the (scaled) targets rather than drifting with sampling noise.
"""

from __future__ import annotations

import dataclasses
import math

from repro import paper
from repro.counters.readings import TaskReadings
from repro.errors import WorkloadError
from repro.platform.deployment import (
    DeploymentScenario,
    scenario_1,
    scenario_2,
)
from repro.platform.targets import Operation, Target
from repro.sim.program import TaskProgram
from repro.sim.requests import MissKind
from repro.sim.timing import SimTiming
from repro.workloads.footprint import isolation_cycles
from repro.workloads.spec import RequestBlock, WorkloadSpec, spread_counts

#: Number of loop iterations the request budget is spread over; keeps the
#: acquisition/compute/update phases interleaving in co-runs the way a real
#: periodic control task would.
DEFAULT_CHUNKS = 32


def split_code_misses(pm: int, ps: int) -> tuple[int, int]:
    """Split PM code misses into (random, sequential) hitting PS stalls.

    Solves ``16·x + 6·(PM − x) = PS`` and rounds to the nearest integer;
    the residual error is at most 5 stall cycles.
    """
    if pm < 0 or ps < 0:
        raise WorkloadError("counts must be non-negative")
    if pm == 0:
        if ps:
            raise WorkloadError("code stalls without code misses")
        return 0, 0
    x = int(round((ps - 6 * pm) / 10))
    x = min(pm, max(0, x))
    return x, pm - x


def split_data_rw(ds: int) -> tuple[int, int]:
    """Split a DMEM_STALL budget into LMU (reads, writes): exact solution
    of ``11·n_r + 10·n_w = DS`` with the counts as balanced as possible.

    Reads stall 11 cycles, buffered writes 10 (Table 2), so ``n_r`` must
    be congruent to DS modulo 10; we pick the representative closest to an
    even split.
    """
    if ds < 0:
        raise WorkloadError("stall budget must be non-negative")
    if ds == 0:
        return 0, 0
    if ds < 10:
        raise WorkloadError(f"data stall budget {ds} below one access")
    balanced = ds / 21  # n_r == n_w would each be ~DS/21
    n_r = ds % 10 + 10 * max(0, round((balanced - ds % 10) / 10))
    while 11 * n_r > ds:
        n_r -= 10
    if n_r < 0:
        # All-writes solution requires DS divisible by 10; fall back to
        # the smallest feasible read count.
        n_r = ds % 10
        if 11 * n_r > ds:
            raise WorkloadError(f"data stall budget {ds} not representable")
    n_w = (ds - 11 * n_r) // 10
    assert 11 * n_r + 10 * n_w == ds
    return n_r, n_w


@dataclasses.dataclass(frozen=True)
class ControlLoopLayout:
    """Resolved request counts of one control-loop build (for reports)."""

    readings_target: TaskReadings
    code_random: int
    code_sequential: int
    lmu_reads: int
    lmu_writes: int
    lmu_clean_misses: int
    pf_const_misses: int
    epilogue_gap: int


def _chunked_blocks(
    layout: ControlLoopLayout, chunks: int
) -> list[RequestBlock]:
    """Interleave the phase populations over loop iterations.

    Each chunk is one burst of control-loop iterations: acquisition reads,
    computation fetches (with the random/sequential mix), optional
    constant-table misses, then status-update writes.
    """
    code_rand = spread_counts(layout.code_random, [1.0] * chunks)
    code_seq = spread_counts(layout.code_sequential, [1.0] * chunks)
    reads = spread_counts(layout.lmu_reads, [1.0] * chunks)
    writes = spread_counts(layout.lmu_writes, [1.0] * chunks)
    lmu_miss = spread_counts(layout.lmu_clean_misses, [1.0] * chunks)
    pf_miss = spread_counts(layout.pf_const_misses, [1.0] * chunks)

    blocks: list[RequestBlock] = []
    for chunk in range(chunks):
        # -- acquisition: read input signals from the shared LMU ---------
        if reads[chunk]:
            blocks.append(
                RequestBlock(
                    target=Target.LMU,
                    operation=Operation.DATA,
                    count=reads[chunk],
                    gap=1,
                    miss_kind=MissKind.UNCACHED,
                )
            )
        if lmu_miss[chunk]:
            blocks.append(
                RequestBlock(
                    target=Target.LMU,
                    operation=Operation.DATA,
                    count=lmu_miss[chunk],
                    gap=1,
                    sequential_fraction=1.0,
                    miss_kind=MissKind.DCACHE_MISS_CLEAN,
                )
            )
        # -- computation: code spilling into the PFlash banks ------------
        for flavour_count, fraction in (
            (code_seq[chunk], 1.0),
            (code_rand[chunk], 0.0),
        ):
            if not flavour_count:
                continue
            for target, share in zip(
                (Target.PF0, Target.PF1),
                spread_counts(flavour_count, [1.0, 1.0]),
            ):
                if share:
                    blocks.append(
                        RequestBlock(
                            target=target,
                            operation=Operation.CODE,
                            count=share,
                            gap=2,
                            sequential_fraction=fraction,
                            miss_kind=MissKind.ICACHE_MISS,
                        )
                    )
        if pf_miss[chunk]:
            for target, share in zip(
                (Target.PF0, Target.PF1),
                spread_counts(pf_miss[chunk], [1.0, 1.0]),
            ):
                if share:
                    blocks.append(
                        RequestBlock(
                            target=target,
                            operation=Operation.DATA,
                            count=share,
                            gap=1,
                            sequential_fraction=1.0,
                            miss_kind=MissKind.DCACHE_MISS_CLEAN,
                        )
                    )
        # -- status update: publish outputs to the shared LMU ------------
        if writes[chunk]:
            blocks.append(
                RequestBlock(
                    target=Target.LMU,
                    operation=Operation.DATA,
                    count=writes[chunk],
                    gap=1,
                    write_fraction=1.0,
                    miss_kind=MissKind.UNCACHED,
                )
            )
    return blocks


def build_control_loop(
    scenario: DeploymentScenario,
    *,
    scale: float = 1.0,
    name: str = "app",
    chunks: int = DEFAULT_CHUNKS,
    timing: SimTiming | None = None,
) -> tuple[TaskProgram, ControlLoopLayout]:
    """Build the control-loop application for a reference scenario.

    Args:
        scenario: ``scenario_1()`` or ``scenario_2()`` (the two deployment
            variants of Section 4.2).
        scale: footprint scale relative to the paper's full-size run
            (1.0 reproduces Table 6; benchmarks default to 1/16).
        name: task name carried into readings.
        chunks: how many loop iterations the populations interleave over.
        timing: simulator timing used for the CCNT padding computation.

    Returns:
        The replayable program and the resolved layout (for reports).
    """
    if scenario.name not in ("scenario1", "scenario2"):
        raise WorkloadError(
            "the control loop is defined for the two reference scenarios; "
            f"got {scenario.name!r}"
        )
    if scale <= 0 or scale > 1.0:
        raise WorkloadError("scale must be in (0, 1]")

    target = paper.table6(scenario.name, "app")
    if scale != 1.0:
        target = target.scaled(scale, name=name)

    code_random, code_sequential = split_code_misses(target.pm, target.ps)

    if scenario.name == "scenario1":
        lmu_clean = pf_const = 0
        data_budget = target.ds
    else:
        # Scenario 2: part of the DMC misses are constant-table fills on
        # the PFlash banks, the rest cacheable LMU data; each fill costs
        # 11 stall cycles, the remaining budget is uncached LMU traffic.
        pf_const = int(round(target.dmc * 0.6))
        lmu_clean = target.dmc - pf_const
        data_budget = target.ds - 11 * target.dmc
        if data_budget < 0:
            raise WorkloadError(
                "data-cache misses alone exceed the DMEM_STALL budget"
            )
    lmu_reads, lmu_writes = split_data_rw(data_budget)

    layout = ControlLoopLayout(
        readings_target=target,
        code_random=code_random,
        code_sequential=code_sequential,
        lmu_reads=lmu_reads,
        lmu_writes=lmu_writes,
        lmu_clean_misses=lmu_clean,
        pf_const_misses=pf_const,
        epilogue_gap=0,
    )
    chunks = max(1, min(chunks, max(1, target.pm)))
    spec = WorkloadSpec(
        name=name, blocks=tuple(_chunked_blocks(layout, chunks))
    )

    # Pad with trailing computation to the derived isolation time.
    iso_target = int(math.ceil(paper.ISOLATION_CYCLES[scenario.name] * scale))
    body_cycles = isolation_cycles(spec.program(), timing)
    epilogue = max(0, iso_target - body_cycles)
    layout = dataclasses.replace(layout, epilogue_gap=epilogue)
    spec = dataclasses.replace(spec, epilogue_gap=epilogue)
    return spec.program(), layout


def control_loop_task(
    scenario_name: str, *, scale: float = 1.0, name: str = "app"
) -> TaskProgram:
    """Convenience wrapper: build the application by scenario name."""
    scenario = {
        "scenario1": scenario_1,
        "scenario2": scenario_2,
    }.get(scenario_name)
    if scenario is None:
        raise WorkloadError(f"unknown scenario {scenario_name!r}")
    program, _ = build_control_loop(scenario(), scale=scale, name=name)
    return program
