"""Trace-level kernels: realistic address streams for the cache front-end.

The block-based generators (:mod:`repro.workloads.spec`) emit SRI request
streams directly — precise, fast, and ideal for footprint matching.  These
kernels take the physical route instead: they emit **address traces** of
the kind an instrumented automotive binary would produce, which the
:class:`~repro.sim.trace_frontend.TraceCompiler` pushes through the
instruction/data cache models and the memory map.  Misses and uncached
accesses become SRI traffic; everything else becomes compute cycles.

Three kernels modelled on the control-loop phases the paper describes:

* :func:`fir_filter_kernel` — streaming signal filter: sequential data
  sweeps over sample buffers (prefetch-friendly);
* :func:`lookup_table_kernel` — map-based interpolation: data-dependent
  scattered reads over a large calibration table (cache-hostile);
* :func:`state_machine_kernel` — mode logic: code-footprint-dominated,
  jumping between handler routines that thrash the instruction cache.

All kernels are deterministic per seed and parameterised by iteration
count, so they scale from unit tests to benchmark runs.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.errors import WorkloadError
from repro.platform.memory_map import MemoryMap
from repro.platform.targets import Operation
from repro.platform.tc27x import CoreDescriptor, tc277
from repro.sim.program import TaskProgram
from repro.sim.trace_frontend import TraceAccess, TraceCompiler

#: Section bases used by the kernels (cacheable views; see the memory map).
CODE_BASE = 0x8000_0000  # PFlash0, cacheable
CODE_BASE_ALT = 0x8010_0000  # PFlash1, cacheable
TABLE_BASE = 0x8008_0000  # calibration tables in PFlash0 (cacheable data)
LMU_CACHED = 0x9000_0000
LMU_UNCACHED = 0xB000_0000
DSPR_BASE = 0x6000_0000  # core 1 local data


def _interleave_code(
    address: int, body_length: int, *, stride: int = 4
) -> Iterator[TraceAccess]:
    """Sequential code fetches of one basic block."""
    for i in range(body_length):
        yield TraceAccess(
            address + i * stride, Operation.CODE, gap=1
        )


def fir_filter_kernel(
    *,
    iterations: int = 8,
    taps: int = 32,
    samples: int = 256,
    seed: int = 1,
) -> list[TraceAccess]:
    """A streaming FIR filter over a shared sample buffer.

    Per iteration: fetch the filter loop's code, stream the sample window
    from the non-cacheable LMU (fresh sensor data), accumulate against
    coefficients in cacheable flash, and write the filtered output back.
    """
    if iterations < 1 or taps < 1 or samples < taps:
        raise WorkloadError("need iterations >= 1 and samples >= taps >= 1")
    trace: list[TraceAccess] = []
    for iteration in range(iterations):
        trace.extend(_interleave_code(CODE_BASE + 0x100, 16))
        for sample in range(samples - taps):
            # Sliding window: one new sample per step (uncached LMU) and
            # one coefficient (cacheable flash table, hot after warm-up).
            trace.append(
                TraceAccess(
                    LMU_UNCACHED + ((sample + iteration) % 2048) * 4,
                    Operation.DATA,
                    gap=2,
                )
            )
            trace.append(
                TraceAccess(
                    TABLE_BASE + (sample % taps) * 4, Operation.DATA, gap=1
                )
            )
            if sample % 8 == 0:
                trace.append(
                    TraceAccess(
                        LMU_UNCACHED + 0x1000 + (sample % 512) * 4,
                        Operation.DATA,
                        write=True,
                        gap=1,
                    )
                )
    return trace


def lookup_table_kernel(
    *,
    iterations: int = 64,
    table_bytes: int = 64 * 1024,
    lookups_per_iteration: int = 16,
    seed: int = 7,
) -> list[TraceAccess]:
    """Scattered reads over a large calibration map (cache-hostile).

    Engine-map interpolation reads four neighbouring cells per lookup at
    data-dependent (here: seeded-random) offsets; the table far exceeds
    the 8 KiB data cache, so most lookups miss and hit the PFlash.
    """
    if table_bytes < 64:
        raise WorkloadError("table must hold at least one row")
    rng = random.Random(seed)
    trace: list[TraceAccess] = []
    for _ in range(iterations):
        trace.extend(_interleave_code(CODE_BASE + 0x400, 8))
        for _ in range(lookups_per_iteration):
            cell = rng.randrange(0, table_bytes // 4 - 16)
            for neighbour in (0, 1, 16, 17):  # 2x2 interpolation stencil
                trace.append(
                    TraceAccess(
                        TABLE_BASE + (cell + neighbour) * 4,
                        Operation.DATA,
                        gap=2,
                    )
                )
        # Publish the interpolated output to the shared LMU.
        trace.append(
            TraceAccess(LMU_UNCACHED + 0x2000, Operation.DATA, write=True, gap=4)
        )
    return trace


def state_machine_kernel(
    *,
    iterations: int = 32,
    handlers: int = 24,
    handler_length: int = 96,
    seed: int = 13,
) -> list[TraceAccess]:
    """Mode-switching control logic with a large code footprint.

    Each iteration dispatches to a (seeded-random) handler routine; with
    ``handlers * handler_length * 4`` bytes of code the dispatch pattern
    thrashes the 16 KiB instruction cache, generating the PFlash fetch
    traffic the paper's Scenario 2 application exhibits.  State lives in
    the local scratchpad (no SRI traffic), outputs go to the LMU.
    """
    if handlers < 1 or handler_length < 1:
        raise WorkloadError("need at least one handler with one instruction")
    rng = random.Random(seed)
    trace: list[TraceAccess] = []
    for _ in range(iterations):
        handler = rng.randrange(handlers)
        base = (CODE_BASE_ALT if handler % 2 else CODE_BASE) + 0x1000
        trace.extend(
            _interleave_code(
                base + handler * handler_length * 4, handler_length
            )
        )
        # Local state updates: scratchpad, invisible to the SRI.
        for i in range(8):
            trace.append(
                TraceAccess(
                    DSPR_BASE + (handler * 64 + i) * 4,
                    Operation.DATA,
                    write=bool(i % 2),
                    gap=1,
                )
            )
        trace.append(
            TraceAccess(
                LMU_UNCACHED + 0x3000 + handler * 4,
                Operation.DATA,
                write=True,
                gap=2,
            )
        )
    return trace


def sensor_fusion_kernel(
    *,
    iterations: int = 16,
    tracks: int = 96,
    seed: int = 29,
) -> list[TraceAccess]:
    """Object-track fusion with a write-hot state array in cacheable LMU.

    Each iteration updates a random subset of track records *in place*
    (read-modify-write on cacheable LMU lines).  The track array spans
    many more lines than the working set the D$ retains across random
    updates, so dirtied lines get evicted and refetched — this is the
    kernel that exercises the DCACHE_MISS_DIRTY counter and the LMU's
    bracketed 21-cycle latency through the real cache model, the
    situation Scenario 2's cacheable-LMU-data deployment makes possible.
    """
    if iterations < 1 or tracks < 1:
        raise WorkloadError("need at least one iteration and one track")
    rng = random.Random(seed)
    trace: list[TraceAccess] = []
    track_stride = 64  # two cache lines per track record
    for _ in range(iterations):
        trace.extend(_interleave_code(CODE_BASE + 0x800, 12))
        for _ in range(tracks // 4):
            track = rng.randrange(tracks)
            base = LMU_CACHED + (track * track_stride) % (16 * 1024)
            trace.append(TraceAccess(base, Operation.DATA, gap=2))  # read
            trace.append(
                TraceAccess(base + 4, Operation.DATA, write=True, gap=3)
            )
        # Conflicting read stream through the same cache sets (fresh
        # sensor frames in cacheable flash) forces dirty evictions.
        frame = rng.randrange(0, 64) * 0x400
        for i in range(16):
            trace.append(
                TraceAccess(
                    TABLE_BASE + frame + i * 32, Operation.DATA, gap=1
                )
            )
    return trace


def compile_kernel(
    name: str,
    trace: list[TraceAccess],
    *,
    core: CoreDescriptor | None = None,
    memory_map: MemoryMap | None = None,
) -> TaskProgram:
    """Compile a kernel trace into a simulator program (cold caches)."""
    platform = tc277()
    compiler = TraceCompiler(
        core if core is not None else platform.core(1),
        memory_map if memory_map is not None else platform.memory_map,
    )
    return compiler.compile(name, trace)


def kernel_suite(*, scale: int = 1) -> dict[str, TaskProgram]:
    """The three kernels, compiled, with iteration counts scaled."""
    if scale < 1:
        raise WorkloadError("scale must be a positive integer")
    return {
        "fir-filter": compile_kernel(
            "fir-filter", fir_filter_kernel(iterations=4 * scale)
        ),
        "lookup-table": compile_kernel(
            "lookup-table", lookup_table_kernel(iterations=32 * scale)
        ),
        "state-machine": compile_kernel(
            "state-machine", state_machine_kernel(iterations=24 * scale)
        ),
        "sensor-fusion": compile_kernel(
            "sensor-fusion", sensor_fusion_kernel(iterations=12 * scale)
        ),
    }
