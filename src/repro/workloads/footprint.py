"""Deriving workload parameters from target counter footprints.

The paper characterises its application and contenders only through their
debug-counter readings (Table 6).  To make the simulator reproduce those
tasks we invert the timing model: given a desired (PM, PS) pair, what mix
of sequential and random code fetches produces exactly those stalls?
Given a DS budget on the LMU, how many reads and writes?

The inversion uses the same Table 2 constants the models use:

* code on pf: sequential stall 6, random stall 16
  → random fraction ``x = (PS/PM − 6) / 10``;
* uncached LMU data: read stall 11, write stall 10
  → write fraction ``w = 11 − DS/N`` once ``N ≈ DS/10.5`` is chosen;
* cacheable data misses cost the stall of their (sequential) fill.

Every helper returns :class:`~repro.workloads.spec.RequestBlock` objects;
:func:`isolation_cycles` computes a program's exact single-core execution
time without the event engine (isolation timing is purely sequential), so
builders can pad tasks to a target CCNT.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.platform.targets import Operation, Target
from repro.sim.program import TaskProgram
from repro.sim.requests import MissKind
from repro.sim.timing import SimTiming, tc27x_sim_timing
from repro.workloads.spec import RequestBlock, spread_counts


def code_random_fraction(
    pm: int, ps: int, *, stall_seq: int = 6, stall_random: int = 16
) -> float:
    """Fraction of random (non-prefetch) code misses hitting a (PM, PS).

    Solves ``stall_random·x + stall_seq·(1−x) = PS/PM`` for x.  Raises if
    the requested average stall per miss is outside the achievable
    [stall_seq, stall_random] band.
    """
    if pm <= 0:
        if ps:
            raise WorkloadError("cannot have code stalls without misses")
        return 0.0
    average = ps / pm
    if not stall_seq - 1e-9 <= average <= stall_random + 1e-9:
        raise WorkloadError(
            f"average code stall {average:.3f} outside achievable "
            f"[{stall_seq}, {stall_random}]"
        )
    return min(1.0, max(0.0, (average - stall_seq) / (stall_random - stall_seq)))


def code_blocks(
    pm: int,
    ps: int,
    *,
    targets: tuple[Target, ...] = (Target.PF0, Target.PF1),
    gap: int = 2,
) -> list[RequestBlock]:
    """Cacheable code-fetch blocks hitting the (PM, PS) footprint.

    Misses are spread evenly over the given PFlash interfaces (real
    linkers interleave code images over both banks).
    """
    random_fraction = code_random_fraction(pm, ps)  # validates (pm, ps)
    if pm == 0:
        return []
    shares = spread_counts(pm, [1.0] * len(targets))
    return [
        RequestBlock(
            target=target,
            operation=Operation.CODE,
            count=count,
            gap=gap,
            sequential_fraction=1.0 - random_fraction,
            miss_kind=MissKind.ICACHE_MISS,
        )
        for target, count in zip(targets, shares)
        if count
    ]


def uncached_lmu_data_block(
    ds: int,
    *,
    gap: int = 1,
    stall_read: int = 11,
    stall_write: int = 10,
) -> RequestBlock | None:
    """A non-cacheable LMU data block consuming ``ds`` stall cycles.

    Picks the access count so the required write fraction lies in (0, 1]:
    ``N = round(ds / 10.5)``, then ``w = 11 − ds/N``.
    """
    if ds == 0:
        return None
    if ds < stall_write:
        raise WorkloadError(
            f"data stall budget {ds} below one access ({stall_write})"
        )
    count = max(1, int(round(ds / ((stall_read + stall_write) / 2))))
    # Nudge the count until the write fraction is representable.
    for candidate in _near(count):
        if candidate <= 0:
            continue
        average = ds / candidate
        write_fraction = stall_read - average
        if -1e-9 <= write_fraction <= 1.0 + 1e-9:
            return RequestBlock(
                target=Target.LMU,
                operation=Operation.DATA,
                count=candidate,
                gap=gap,
                write_fraction=min(1.0, max(0.0, write_fraction)),
                miss_kind=MissKind.UNCACHED,
            )
    raise WorkloadError(f"cannot realise data stall budget {ds}")


def _near(count: int, radius: int = 8) -> list[int]:
    """Candidate counts around an estimate, nearest first."""
    candidates = [count]
    for delta in range(1, radius + 1):
        candidates += [count - delta, count + delta]
    return candidates


def cacheable_data_miss_block(
    count: int,
    target: Target,
    *,
    gap: int = 1,
    dirty_fraction: float = 0.0,
    sequential: bool = True,
) -> RequestBlock | None:
    """Cacheable data misses (DMC/DMD events) with line-fill transactions."""
    if count == 0:
        return None
    return RequestBlock(
        target=target,
        operation=Operation.DATA,
        count=count,
        gap=gap,
        sequential_fraction=1.0 if sequential else 0.0,
        miss_kind=MissKind.DCACHE_MISS_DIRTY
        if dirty_fraction >= 1.0
        else MissKind.DCACHE_MISS_CLEAN,
        dirty_fraction=dirty_fraction,
    )


def dflash_data_block(
    count: int, *, gap: int = 4, write_fraction: float = 0.0
) -> RequestBlock | None:
    """Non-cacheable DFlash data accesses (calibration/EEPROM traffic)."""
    if count == 0:
        return None
    return RequestBlock(
        target=Target.DFL,
        operation=Operation.DATA,
        count=count,
        gap=gap,
        write_fraction=write_fraction,
        miss_kind=MissKind.UNCACHED,
    )


def isolation_cycles(
    program: TaskProgram, timing: SimTiming | None = None
) -> int:
    """Exact single-core execution time of a program, computed directly.

    In isolation the core never waits on arbitration, so timing reduces to
    a running sum over steps: ``t += max(0, gap − credit) + blocking``.
    Matches :func:`repro.sim.system.run_isolation` cycle-for-cycle (a
    property the test-suite asserts) at a fraction of the cost — used by
    workload builders to pad programs to a target CCNT.
    """
    timing = timing or tc27x_sim_timing()
    time = 0
    credit = 0
    for gap, request in program.steps():
        effective = max(0, gap - credit)
        credit = max(0, credit - gap)
        time += effective
        if request is None:
            continue
        # The core's next step waits for transaction *completion* (one
        # outstanding request); the overlap only discounts the stall
        # counters and the next gap.  Wall time advances by the service.
        time += timing.service_time(request)
        credit = timing.device(request.target).overlap(request)
    return time
