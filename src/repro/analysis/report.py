"""Plain-text rendering of tables and the Figure 4 chart.

Everything the paper reports is either a table or a bar chart; this module
renders both as fixed-width text so benchmarks and examples can print
artefacts that are directly comparable with the paper's.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.experiments import AblationRow, Figure4Row, Table6Row
from repro.core.model import ContentionModel
from repro.core.registry import default_model_registry
from repro.engine.artifact import ExperimentArtifact
from repro.platform.cacheability import placement_matrix
from repro.platform.latency import LatencyProfile


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in materialised)
    return "\n".join(parts)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    return str(cell)


def render_latency_table(profile: LatencyProfile, *, title: str = "Table 2") -> str:
    """Render a latency profile in the paper's Table 2 layout."""
    table = profile.as_table()
    columns = ["lmu", "pf", "dfl"]

    def fetch(row: str, column: str) -> object:
        source = table["pf0"] if column == "pf" else table[column]
        return source[row]

    lmu_lmax = table["lmu"]["l_max"]
    lmu_dirty = table["lmu"]["l_max_dirty"]
    lmax_row = [
        f"{lmu_lmax}({lmu_dirty})" if lmu_dirty else str(lmu_lmax),
        fetch("l_max", "pf"),
        fetch("l_max", "dfl"),
    ]
    rows = [
        ["l_max"] + lmax_row,
        ["l_min"] + [fetch("l_min", c) for c in columns],
        ["cs(t,co)"] + [fetch("cs_code", c) for c in columns],
        ["cs(t,da)"] + [fetch("cs_data", c) for c in columns],
    ]
    return render_table(["quantity"] + columns, rows, title=title)


def render_placement_table(*, title: str = "Table 3") -> str:
    """Render the Table 3 placement matrix."""
    matrix = placement_matrix()
    columns = ["pf0", "pf1", "dfl", "lmu"]
    rows = [
        [kind] + ["ok" if allowed[c] else "x" for c in columns]
        for kind, allowed in matrix.items()
    ]
    return render_table(["section"] + columns, rows, title=title)


def render_table6(rows: Sequence[Table6Row], *, scale: float) -> str:
    """Render simulated-vs-paper Table 6 rows."""
    body = []
    for row in rows:
        sim, ref = row.simulated.as_row(), row.reference.as_row()
        body.append(
            [
                row.scenario,
                f"{row.core}/{row.task}",
                "sim",
                sim["PM"],
                sim["DMC"],
                sim["DMD"],
                sim["PS"],
                sim["DS"],
            ]
        )
        body.append(
            [
                "",
                "",
                "paper",
                ref["PM"],
                ref["DMC"],
                ref["DMD"],
                ref["PS"],
                ref["DS"],
            ]
        )
    return render_table(
        ["scenario", "core/task", "source", "PM", "DMC", "DMD", "PS", "DS"],
        body,
        title=f"Table 6 (scale {scale:g}; 'paper' rows scaled accordingly)",
    )


def render_figure4(rows: Sequence[Figure4Row], *, title: str = "Figure 4") -> str:
    """Render Figure 4 as a labelled horizontal bar chart plus a table."""
    table = render_table(
        ["scenario", "model", "load", "Δcont (cyc)", "pred", "paper", "observed"],
        [
            [
                row.scenario,
                row.model,
                row.load,
                row.delta_cycles,
                row.slowdown,
                row.paper_value,
                row.observed_slowdown,
            ]
            for row in rows
        ],
        title=title,
    )
    peak = max(row.slowdown for row in rows)
    scale = 48 / peak
    bars = []
    for row in rows:
        bar = "#" * max(1, int(round(row.slowdown * scale)))
        reference = f" (paper {row.paper_value:.2f})" if row.paper_value else ""
        bars.append(
            f"{row.scenario:<10} {row.model:<12} {row.load:<2} "
            f"{bar} {row.slowdown:.2f}{reference}"
        )
    return table + "\n\n" + "\n".join(bars)


def render_models(
    models: Sequence[ContentionModel] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render the contention-model registry (the ``repro models`` output).

    One row per registered model: name, whether the bound is fully
    time-composable, the contender arity it consumes, whether it solves
    an ILP / covers higher-priority DMA masters, and its description.
    Rides the same artifact builder as ``repro models --export``, so the
    rendered and exported rows cannot diverge.
    """
    from repro.analysis.export import models_artifact

    listed = (
        list(models) if models is not None else list(default_model_registry())
    )
    return render_artifact(
        models_artifact(
            listed,
            title=title or f"Registered contention models ({len(listed)})",
        )
    )


def render_artifact(artifact: ExperimentArtifact) -> str:
    """Render any engine artifact as a fixed-width table.

    The generic counterpart of the ``render_*`` functions above: every
    experiment that flattens into an
    :class:`~repro.engine.artifact.ExperimentArtifact` (see the
    ``*_artifact`` builders in :mod:`repro.analysis.export`) renders
    through this single entry point.
    """
    return render_table(
        artifact.columns, artifact.rows(), title=artifact.title
    )


def render_ablation(rows: Sequence[AblationRow]) -> str:
    """Render the information-degree ablation (A1)."""
    return render_table(
        ["scenario", "load", "model", "Δcont (cyc)", "pred"],
        [
            [row.scenario, row.load, row.model, row.delta_cycles, row.slowdown]
            for row in rows
        ],
        title="Information-degree ablation (lower is tighter; all sound)",
    )


def render_soundness(sweep, scenario_name: str) -> str:
    """Render a soundness sweep (A4) with its per-case verdicts.

    Shared by ``repro soundness`` and the analysis service's soundness
    job set, so the two produce byte-identical artefacts.  ``sweep`` is
    a :class:`~repro.analysis.validation.SoundnessSweep` (typed loosely
    to keep this rendering module import-light).
    """
    rows = [
        [
            case.name,
            case.isolation_cycles,
            case.observed_cycles,
            case.predictions["ilp-ptac"],
            "ok" if case.sound else "VIOLATION",
        ]
        for case in sweep.cases
    ]
    verdict = (
        "all sound"
        if sweep.all_sound
        else f"VIOLATIONS: {sweep.violations}"
    )
    return render_table(
        ["pair", "isolation", "observed", "ilp-ptac WCET", "check"],
        rows,
        title=f"Soundness sweep ({scenario_name}) — {verdict}",
    )
