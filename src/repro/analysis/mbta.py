"""Measurement-Based Timing Analysis (MBTA) protocol helpers.

The paper's models plug into standard single-core MBTA practice
(contribution ➁): measure the task in isolation — several runs, keep the
high-watermark execution time and the counter readings — then add the
model's contention bound.  This module codifies that protocol against the
simulator:

1. :func:`measure_isolation` runs the task alone ``runs`` times (with an
   optional per-run program variant hook standing in for input variation)
   and returns the high-watermark readings;
2. :func:`analyse` combines the measurement with a contention model into
   a :class:`~repro.core.results.WcetEstimate`;
3. :func:`observe_corun` performs the deployment-time check the paper
   reports: run against actual contenders and verify the estimate holds.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping, Sequence

from repro.core.results import WcetEstimate
from repro.core.wcet import ModelKind, wcet_estimate
from repro.counters.readings import TaskReadings
from repro.errors import SimulationError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile
from repro.sim.program import TaskProgram
from repro.sim.system import SimResult, SystemSimulator
from repro.sim.timing import SimTiming


@dataclasses.dataclass(frozen=True)
class IsolationMeasurement:
    """Outcome of the isolation measurement campaign.

    Attributes:
        readings: counter readings of the high-watermark run.
        hwm_cycles: highest observed execution time across runs.
        runs: number of runs performed.
        all_cycles: execution time of every run (diagnostics).
    """

    readings: TaskReadings
    hwm_cycles: int
    runs: int
    all_cycles: tuple[int, ...]


def measure_isolation(
    program: TaskProgram,
    *,
    runs: int = 1,
    variant: Callable[[int], TaskProgram] | None = None,
    timing: SimTiming | None = None,
    core: int = 1,
) -> IsolationMeasurement:
    """Run the measurement protocol: isolation runs, high-watermark.

    Args:
        program: the task under analysis.
        runs: how many isolation runs to perform.
        variant: optional hook mapping the run index to a program variant
            (models input-dependent paths; defaults to replaying the same
            program, which is deterministic on the simulator).
        timing: simulator timing.
        core: core to pin the task on (the paper uses core 1).
    """
    if runs < 1:
        raise SimulationError("at least one isolation run is required")
    sim = SystemSimulator(timing)
    hwm_readings: TaskReadings | None = None
    cycles: list[int] = []
    for index in range(runs):
        candidate = variant(index) if variant is not None else program
        result = sim.run({core: candidate}).core(core)
        elapsed = result.readings.require_ccnt()
        cycles.append(elapsed)
        if hwm_readings is None or elapsed > hwm_readings.require_ccnt():
            hwm_readings = result.readings
    assert hwm_readings is not None
    return IsolationMeasurement(
        readings=hwm_readings,
        hwm_cycles=max(cycles),
        runs=runs,
        all_cycles=tuple(cycles),
    )


def analyse(
    measurement: IsolationMeasurement,
    model: ModelKind | str,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    contender: TaskReadings | None = None,
    *,
    contenders: Sequence[TaskReadings] = (),
    **model_kwargs,
) -> WcetEstimate:
    """Turn an isolation measurement into a contention-aware WCET estimate.

    ``model`` is any registered contention-model name (see
    ``repro models``); ``contenders`` feeds multi-contender models and
    further keywords (ILP options, DMA agents, ...) are forwarded to
    :func:`~repro.core.wcet.contention_bound`.
    """
    return wcet_estimate(
        model,
        measurement.readings,
        profile,
        scenario,
        contender,
        contenders=tuple(contenders),
        isolation_cycles=measurement.hwm_cycles,
        **model_kwargs,
    )


@dataclasses.dataclass(frozen=True)
class CorunObservation:
    """Observed multicore behaviour of the analysed task.

    Attributes:
        observed_cycles: execution time while co-running.
        slowdown: observed time over the isolation high-watermark.
        interference_wait_cycles: cycles the task actually queued behind
            contenders on the SRI (simulator-only insight).
        result: the full simulation result (all cores).
    """

    observed_cycles: int
    slowdown: float
    interference_wait_cycles: int
    result: SimResult


def observe_corun(
    program: TaskProgram,
    contender_programs: Sequence[TaskProgram] | Mapping[int, TaskProgram],
    isolation_cycles: int,
    *,
    timing: SimTiming | None = None,
    core: int = 1,
) -> CorunObservation:
    """Run the task against contenders and report the observed slowdown.

    Args:
        program: the task under analysis (pinned on ``core``).
        contender_programs: contenders, either a sequence (assigned to the
            next core ids) or an explicit core mapping.
        isolation_cycles: the isolation high-watermark to normalise by.
        timing: simulator timing.
        core: the analysed task's core.
    """
    if isolation_cycles <= 0:
        raise SimulationError("isolation time must be positive")
    programs: dict[int, TaskProgram] = {core: program}
    if isinstance(contender_programs, Mapping):
        overlap = set(contender_programs) & {core}
        if overlap:
            raise SimulationError(f"core {core} is already taken")
        programs.update(contender_programs)
    else:
        next_core = 0
        for contender in contender_programs:
            while next_core in programs:
                next_core += 1
            programs[next_core] = contender
    if len(programs) < 2:
        raise SimulationError("a co-run needs at least one contender")

    result = SystemSimulator(timing).run(programs)
    task = result.core(core)
    observed = task.readings.require_ccnt()
    return CorunObservation(
        observed_cycles=observed,
        slowdown=observed / isolation_cycles,
        interference_wait_cycles=task.total_wait_cycles,
        result=result,
    )
