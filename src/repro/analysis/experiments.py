"""Experiment drivers regenerating the paper's evaluation artefacts.

Two operating modes per experiment, matching DESIGN.md:

* **paper-counters mode** — feed the *published* Table 6 readings (plus
  the derived M/L scalings and isolation times) through our model
  implementations.  This isolates the model arithmetic: the resulting
  Figure 4 ratios must match the paper to ±0.02.
* **simulation mode** — generate the workloads, measure them on the
  bundled simulator (counters *and* isolation times), run the models on
  the measured readings, and additionally co-run the tasks to check that
  every prediction upper-bounds the observed multicore time (the paper's
  soundness statement).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro import paper
from repro.analysis.mbta import CorunObservation, observe_corun
from repro.core.ftc import ftc_baseline, ftc_refined
from repro.core.ideal import ideal_bound
from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.core.results import WcetEstimate
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import (
    DeploymentScenario,
    scenario_1,
    scenario_2,
)
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.system import run_isolation
from repro.sim.timing import SimTiming
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import LOAD_LEVELS, build_load

SCENARIOS: tuple[str, ...] = ("scenario1", "scenario2")


def _scenario(name: str) -> DeploymentScenario:
    if name == "scenario1":
        return scenario_1()
    if name == "scenario2":
        return scenario_2()
    raise ModelError(f"unknown scenario {name!r}")


@dataclasses.dataclass(frozen=True)
class Figure4Row:
    """One bar of Figure 4.

    Attributes:
        scenario: ``"scenario1"`` / ``"scenario2"``.
        load: contender level (``"H"``/``"M"``/``"L"``); fTC bars ignore
            the contender, so their load is ``"-"``.
        model: model identifier.
        delta_cycles: the contention bound.
        slowdown: prediction normalised by the isolation time (the y-axis).
        paper_value: the published ratio, when the paper reports one.
        observed_slowdown: measured co-run slowdown (simulation mode only).
    """

    scenario: str
    load: str
    model: str
    delta_cycles: int
    slowdown: float
    paper_value: float | None = None
    observed_slowdown: float | None = None

    @property
    def sound(self) -> bool | None:
        """Prediction ≥ observation (None when nothing was observed)."""
        if self.observed_slowdown is None:
            return None
        return self.slowdown >= self.observed_slowdown


# ----------------------------------------------------------------------
# Paper-counters mode
# ----------------------------------------------------------------------
def figure4_paper_mode(
    *,
    profile: LatencyProfile | None = None,
    backend: str = "bnb",
) -> list[Figure4Row]:
    """Figure 4 from the published Table 6 readings.

    Returns one row per bar: the refined fTC bound per scenario and the
    ILP-PTAC bound per (scenario, load level).
    """
    profile = profile or tc27x_latency_profile()
    rows: list[Figure4Row] = []
    for scenario_name in SCENARIOS:
        scenario = _scenario(scenario_name)
        readings_a = paper.table6(scenario_name, "app")
        isolation = paper.ISOLATION_CYCLES[scenario_name]
        reference = paper.FIGURE4[scenario_name]

        ftc = ftc_refined(readings_a, profile, scenario)
        rows.append(
            Figure4Row(
                scenario=scenario_name,
                load="-",
                model=ftc.model,
                delta_cycles=ftc.delta_cycles,
                slowdown=WcetEstimate(isolation, ftc).slowdown,
                paper_value=reference.ftc,
            )
        )
        for load in LOAD_LEVELS:
            readings_b = paper.contender_readings(scenario_name, load)
            result = ilp_ptac_bound(
                readings_a,
                readings_b,
                profile,
                scenario,
                IlpPtacOptions(backend=backend),
            )
            rows.append(
                Figure4Row(
                    scenario=scenario_name,
                    load=load,
                    model=result.bound.model,
                    delta_cycles=result.bound.delta_cycles,
                    slowdown=WcetEstimate(isolation, result.bound).slowdown,
                    paper_value=reference.ilp.get(load),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Simulation mode
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ScenarioSimData:
    """Measured inputs of one scenario in simulation mode."""

    scenario: DeploymentScenario
    app_readings: TaskReadings
    app_isolation_cycles: int
    load_readings: Mapping[str, TaskReadings]
    corun_observations: Mapping[str, CorunObservation]


def simulate_scenario(
    scenario_name: str,
    *,
    scale: float = 1 / 16,
    timing: SimTiming | None = None,
    with_coruns: bool = True,
) -> ScenarioSimData:
    """Measure the application and the loads on the simulator.

    Args:
        scenario_name: which reference scenario to reproduce.
        scale: workload scale relative to the paper's full-size run.
        timing: simulator timing.
        with_coruns: also co-run the application against each load to
            collect observed multicore times (the soundness check).
    """
    scenario = _scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    app_result = run_isolation(app_program, timing=timing)
    app_readings = app_result.readings
    isolation = app_readings.require_ccnt()

    load_readings: dict[str, TaskReadings] = {}
    coruns: dict[str, CorunObservation] = {}
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        load_readings[load] = run_isolation(
            load_program, core=2, timing=timing
        ).readings
        if with_coruns:
            coruns[load] = observe_corun(
                app_program,
                {2: load_program},
                isolation,
                timing=timing,
            )
    return ScenarioSimData(
        scenario=scenario,
        app_readings=app_readings,
        app_isolation_cycles=isolation,
        load_readings=load_readings,
        corun_observations=coruns,
    )


def figure4_sim_mode(
    *,
    scale: float = 1 / 16,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
    with_coruns: bool = True,
) -> list[Figure4Row]:
    """Figure 4 end-to-end on the simulator (counters measured, models
    applied, predictions validated against observed co-runs)."""
    profile = profile or tc27x_latency_profile()
    rows: list[Figure4Row] = []
    for scenario_name in SCENARIOS:
        data = simulate_scenario(
            scenario_name, scale=scale, timing=timing, with_coruns=with_coruns
        )
        reference = paper.FIGURE4[scenario_name]
        isolation = data.app_isolation_cycles

        ftc = ftc_refined(data.app_readings, profile, data.scenario)
        worst_observed = max(
            (
                observation.slowdown
                for observation in data.corun_observations.values()
            ),
            default=None,
        )
        rows.append(
            Figure4Row(
                scenario=scenario_name,
                load="-",
                model=ftc.model,
                delta_cycles=ftc.delta_cycles,
                slowdown=WcetEstimate(isolation, ftc).slowdown,
                paper_value=reference.ftc,
                observed_slowdown=worst_observed,
            )
        )
        for load in LOAD_LEVELS:
            result = ilp_ptac_bound(
                data.app_readings,
                data.load_readings[load],
                profile,
                data.scenario,
                IlpPtacOptions(backend=backend),
            )
            observation = data.corun_observations.get(load)
            rows.append(
                Figure4Row(
                    scenario=scenario_name,
                    load=load,
                    model=result.bound.model,
                    delta_cycles=result.bound.delta_cycles,
                    slowdown=WcetEstimate(isolation, result.bound).slowdown,
                    paper_value=reference.ilp.get(load),
                    observed_slowdown=(
                        observation.slowdown if observation else None
                    ),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Table 6 (simulation mode) and the information-degree ablation
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Table6Row:
    """One Table 6 row: simulated counters next to the (scaled) paper's."""

    scenario: str
    core: str
    task: str
    simulated: TaskReadings
    reference: TaskReadings


def table6_sim_mode(*, scale: float = 1 / 16) -> list[Table6Row]:
    """Regenerate Table 6 on the simulator and pair it with the paper's
    readings scaled by the same factor (shape comparison)."""
    rows: list[Table6Row] = []
    for scenario_name in SCENARIOS:
        data = simulate_scenario(
            scenario_name, scale=scale, with_coruns=False
        )
        rows.append(
            Table6Row(
                scenario=scenario_name,
                core="Core1",
                task="app",
                simulated=data.app_readings,
                reference=paper.table6(scenario_name, "app").scaled(scale),
            )
        )
        rows.append(
            Table6Row(
                scenario=scenario_name,
                core="Core2",
                task="H-Load",
                simulated=data.load_readings["H"],
                reference=paper.table6(scenario_name, "H-Load").scaled(scale),
            )
        )
    return rows


@dataclasses.dataclass(frozen=True)
class AblationRow:
    """One bound in the information-degree ablation (A1)."""

    scenario: str
    load: str
    model: str
    delta_cycles: int
    slowdown: float


def information_ablation(
    *,
    scale: float = 1 / 32,
    backend: str = "bnb",
) -> list[AblationRow]:
    """Quantify what each level of information buys (experiment A1).

    Runs four models on identical simulator-measured inputs:
    ``ftc-baseline`` (no deployment knowledge), ``ftc-refined``
    (deployment knowledge about τa), ``ilp-ptac`` (+ contender counters)
    and ``ideal`` (ground-truth PTACs, unobtainable on real hardware).
    """
    profile = tc27x_latency_profile()
    rows: list[AblationRow] = []
    for scenario_name in SCENARIOS:
        scenario = _scenario(scenario_name)
        app_program, _ = build_control_loop(scenario, scale=scale)
        app_result = run_isolation(app_program)
        isolation = app_result.readings.require_ccnt()

        baseline = ftc_baseline(app_result.readings, profile)
        refined = ftc_refined(app_result.readings, profile, scenario)
        for bound in (baseline, refined):
            rows.append(
                AblationRow(
                    scenario=scenario_name,
                    load="-",
                    model=bound.model,
                    delta_cycles=bound.delta_cycles,
                    slowdown=WcetEstimate(isolation, bound).slowdown,
                )
            )
        for load in LOAD_LEVELS:
            load_program = build_load(scenario_name, load, scale=scale)
            load_result = run_isolation(load_program, core=2)
            ilp = ilp_ptac_bound(
                app_result.readings,
                load_result.readings,
                profile,
                scenario,
                IlpPtacOptions(backend=backend),
            ).bound
            ideal = ideal_bound(
                app_result.profile,
                load_result.profile,
                profile,
                scenario,
            )
            for bound in (ilp, ideal):
                rows.append(
                    AblationRow(
                        scenario=scenario_name,
                        load=load,
                        model=bound.model,
                        delta_cycles=bound.delta_cycles,
                        slowdown=WcetEstimate(isolation, bound).slowdown,
                    )
                )
    return rows
