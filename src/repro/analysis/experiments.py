"""Experiment drivers regenerating the paper's evaluation artefacts.

Two operating modes per experiment, matching DESIGN.md:

* **paper-counters mode** — feed the *published* Table 6 readings (plus
  the derived M/L scalings and isolation times) through our model
  implementations.  This isolates the model arithmetic: the resulting
  Figure 4 ratios must match the paper to ±0.02.
* **simulation mode** — generate the workloads, measure them on the
  bundled simulator (counters *and* isolation times), run the models on
  the measured readings, and additionally co-run the tasks to check that
  every prediction upper-bounds the observed multicore time (the paper's
  soundness statement).

Every driver expresses its work as a batch of independent engine jobs
(one per scenario/workload/model combination) and accepts an optional
``engine=`` argument: ``None`` runs serially, exactly as before; an
:class:`~repro.engine.runner.ExperimentEngine` adds parallel fan-out and
content-addressed result caching (a cached simulation is never re-run,
whichever driver asked for it first).  Output is identical in every mode.

Models are addressed by *registry name* throughout (see
:mod:`repro.core.registry`): the ``models=`` arguments accept any
registered contention model, and the names travel through engine jobs as
plain data, so model choice is picklable for process-mode fan-out and
participates in each job's content-addressed cache key.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro import paper
from repro.analysis.mbta import CorunObservation, observe_corun
from repro.core.ilp_ptac import IlpPtacOptions
# counter_based_model_names is re-exported: the matrix driver is its
# historical home, and the family matrix shares the same filter.
from repro.core.registry import counter_based_model_names, get_model
from repro.core.results import WcetEstimate
from repro.core.wcet import contention_bound
from repro.counters.readings import TaskReadings
from repro.engine.batch import job
from repro.engine.experiment import ScenarioRunResult, spec_job
from repro.engine.registry import default_registry
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.engine.scenario import ScenarioSpec
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario, named_scenarios
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.system import run_isolation
from repro.sim.timing import SimTiming
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import LOAD_LEVELS, build_load

SCENARIOS: tuple[str, ...] = ("scenario1", "scenario2")

#: The two bars Figure 4 plots per scenario/load.
DEFAULT_FIGURE4_MODELS: tuple[str, ...] = ("ftc-refined", "ilp-ptac")

#: The information-degree ladder of experiment A1.
DEFAULT_ABLATION_MODELS: tuple[str, ...] = (
    "ftc-baseline",
    "ftc-refined",
    "ilp-ptac",
    "ideal",
)


def _model_loads(model: str) -> tuple[str, ...]:
    """The contender loads a model produces bars for.

    Contender-blind models yield one bar per scenario (load ``"-"``);
    contender-aware models yield one bar per load level.
    """
    if get_model(model).capabilities.uses_contender_information:
        return LOAD_LEVELS
    return ("-",)


def _warm_group(tag: str, scenario_name: str, model: str) -> str | None:
    """Warm-group tag for one (scenario, model) job family.

    All jobs of one (scenario, model) pair solve structurally identical
    ILPs, so the engine routes them to one worker whose batch solver
    warm-starts each solve from the previous one.  Models that solve no
    ILP fan out ungrouped.
    """
    if not get_model(model).capabilities.needs_ilp:
        return None
    return f"{tag}:{scenario_name}:{model}"


def reference_scenario(name: str) -> DeploymentScenario:
    """Resolve one of the paper's two reference scenarios by name.

    The shared validator of every driver that takes a scenario *name*
    (Figure 4, Table 6, ablation, three-core): only the evaluated
    deployments are accepted, with a :class:`ModelError` otherwise.
    """
    if name not in SCENARIOS:
        raise ModelError(f"unknown scenario {name!r}")
    return named_scenarios()[name]


@dataclasses.dataclass(frozen=True)
class Figure4Row:
    """One bar of Figure 4.

    Attributes:
        scenario: ``"scenario1"`` / ``"scenario2"``.
        load: contender level (``"H"``/``"M"``/``"L"``); fTC bars ignore
            the contender, so their load is ``"-"``.
        model: model identifier.
        delta_cycles: the contention bound.
        slowdown: prediction normalised by the isolation time (the y-axis).
        paper_value: the published ratio, when the paper reports one.
        observed_slowdown: measured co-run slowdown (simulation mode only).
    """

    scenario: str
    load: str
    model: str
    delta_cycles: int
    slowdown: float
    paper_value: float | None = None
    observed_slowdown: float | None = None

    @property
    def sound(self) -> bool | None:
        """Prediction ≥ observation (None when nothing was observed)."""
        if self.observed_slowdown is None:
            return None
        return self.slowdown >= self.observed_slowdown


# ----------------------------------------------------------------------
# Paper-counters mode
# ----------------------------------------------------------------------
def _figure4_reference(
    scenario_name: str, model: str, load: str
) -> float | None:
    """The published Figure 4 ratio for a bar, when the paper reports one."""
    published = paper.FIGURE4[scenario_name]
    if model == "ftc-refined":
        return published.ftc
    if model == "ilp-ptac":
        return published.ilp.get(load)
    return None


def _paper_model_row(
    scenario_name: str,
    load: str,
    model: str,
    profile: LatencyProfile,
    options: IlpPtacOptions | None,
) -> Figure4Row:
    """Job: one Figure 4 bar (scenario × model × load, published readings)."""
    scenario = reference_scenario(scenario_name)
    readings_a = paper.table6(scenario_name, "app")
    readings_b = (
        paper.contender_readings(scenario_name, load) if load != "-" else None
    )
    isolation = paper.ISOLATION_CYCLES[scenario_name]
    bound = contention_bound(
        model, readings_a, profile, scenario, readings_b, options=options
    )
    return Figure4Row(
        scenario=scenario_name,
        load=load,
        model=bound.model,
        delta_cycles=bound.delta_cycles,
        slowdown=WcetEstimate(isolation, bound).slowdown,
        paper_value=_figure4_reference(scenario_name, model, load),
    )


def figure4_paper_jobs(
    *,
    models: Sequence[str] = DEFAULT_FIGURE4_MODELS,
    profile: LatencyProfile | None = None,
    backend: str = "bnb",
    options: IlpPtacOptions | None = None,
) -> list:
    """The job batch behind paper-counters Figure 4.

    One engine job per bar, ready for :func:`run_jobs` — or for the
    analysis service, which submits the same batch to a coordinator
    queue (:mod:`repro.service.jobsets`) and renders the identical
    figure from the collected results.
    """
    profile = profile or tc27x_latency_profile()
    # `backend` is shorthand for options=IlpPtacOptions(backend=...);
    # an explicit `options` takes precedence over it.
    options = options or IlpPtacOptions(backend=backend)
    jobs = []
    for scenario_name in SCENARIOS:
        for model in models:
            for load in _model_loads(model):
                jobs.append(
                    job(
                        _paper_model_row,
                        scenario_name,
                        load,
                        model,
                        profile,
                        options,
                        label=(
                            f"figure4-paper:{scenario_name}:{model}:{load}"
                        ),
                        warm_group=_warm_group(
                            "figure4", scenario_name, model
                        ),
                    )
                )
    return jobs


def figure4_paper_mode(
    *,
    models: Sequence[str] = DEFAULT_FIGURE4_MODELS,
    profile: LatencyProfile | None = None,
    backend: str = "bnb",
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[Figure4Row]:
    """Figure 4 from the published Table 6 readings.

    Returns one row per bar: contender-blind models once per scenario,
    contender-aware models once per (scenario, load level).  ``models``
    accepts any registered counter-based model names.
    """
    return run_jobs(
        figure4_paper_jobs(
            models=models, profile=profile, backend=backend, options=options
        ),
        engine,
    )


# ----------------------------------------------------------------------
# Simulation mode
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ScenarioSimData:
    """Measured inputs of one scenario in simulation mode."""

    scenario: DeploymentScenario
    app_readings: TaskReadings
    app_isolation_cycles: int
    load_readings: Mapping[str, TaskReadings]
    corun_observations: Mapping[str, CorunObservation]


def simulate_scenario(
    scenario_name: str,
    *,
    scale: float = 1 / 16,
    timing: SimTiming | None = None,
    with_coruns: bool = True,
) -> ScenarioSimData:
    """Measure the application and the loads on the simulator.

    This is the expensive half of simulation mode and an engine job in
    its own right: the sim-mode drivers schedule it once per scenario and
    a caching engine reuses the measurement across drivers and sweeps.

    Args:
        scenario_name: which reference scenario to reproduce.
        scale: workload scale relative to the paper's full-size run.
        timing: simulator timing.
        with_coruns: also co-run the application against each load to
            collect observed multicore times (the soundness check).
    """
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    app_result = run_isolation(app_program, timing=timing)
    app_readings = app_result.readings
    isolation = app_readings.require_ccnt()

    load_readings: dict[str, TaskReadings] = {}
    coruns: dict[str, CorunObservation] = {}
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        load_readings[load] = run_isolation(
            load_program, core=2, timing=timing
        ).readings
        if with_coruns:
            coruns[load] = observe_corun(
                app_program,
                {2: load_program},
                isolation,
                timing=timing,
            )
    return ScenarioSimData(
        scenario=scenario,
        app_readings=app_readings,
        app_isolation_cycles=isolation,
        load_readings=load_readings,
        corun_observations=coruns,
    )


def _sim_model_row(
    scenario_name: str,
    load: str,
    model: str,
    data: ScenarioSimData,
    profile: LatencyProfile,
    options: IlpPtacOptions | None,
) -> Figure4Row:
    """Job: one Figure 4 bar (scenario × model × load, measured counters)."""
    readings_b = data.load_readings[load] if load != "-" else None
    bound = contention_bound(
        model, data.app_readings, profile, data.scenario, readings_b,
        options=options,
    )
    if load == "-":
        # Contender-blind bars must cover the worst co-run of any load.
        observed = max(
            (
                observation.slowdown
                for observation in data.corun_observations.values()
            ),
            default=None,
        )
    else:
        observation = data.corun_observations.get(load)
        observed = observation.slowdown if observation else None
    return Figure4Row(
        scenario=scenario_name,
        load=load,
        model=bound.model,
        delta_cycles=bound.delta_cycles,
        slowdown=WcetEstimate(data.app_isolation_cycles, bound).slowdown,
        paper_value=_figure4_reference(scenario_name, model, load),
        observed_slowdown=observed,
    )


def _corun_observations(
    scenario_name: str,
    scale: float,
    timing: SimTiming | None,
    isolation_cycles: int,
) -> dict[str, CorunObservation]:
    """Job: co-run the application against each load level.

    Split from the isolation measurements so the two stages cache
    independently: Table 6 needs only the measurements, Figure 4 needs
    both, and with a shared engine neither re-simulates the other's part.
    """
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    coruns: dict[str, CorunObservation] = {}
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        coruns[load] = observe_corun(
            app_program,
            {2: load_program},
            isolation_cycles,
            timing=timing,
        )
    return coruns


def _simulate_datasets(
    scale: float,
    timing: SimTiming | None,
    with_coruns: bool,
    engine: ExperimentEngine | None,
) -> list[ScenarioSimData]:
    """Measure both scenarios, in two independently-cached job stages."""
    datasets = run_jobs(
        [
            job(
                simulate_scenario,
                scenario_name,
                scale=scale,
                timing=timing,
                with_coruns=False,
                label=f"simulate:{scenario_name}:scale={scale:g}",
            )
            for scenario_name in SCENARIOS
        ],
        engine,
    )
    if not with_coruns:
        return datasets
    corun_maps = run_jobs(
        [
            job(
                _corun_observations,
                scenario_name,
                scale,
                timing,
                data.app_isolation_cycles,
                label=f"corun:{scenario_name}:scale={scale:g}",
            )
            for scenario_name, data in zip(SCENARIOS, datasets)
        ],
        engine,
    )
    return [
        dataclasses.replace(data, corun_observations=coruns)
        for data, coruns in zip(datasets, corun_maps)
    ]


def figure4_sim_mode(
    *,
    models: Sequence[str] = DEFAULT_FIGURE4_MODELS,
    scale: float = 1 / 16,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
    options: IlpPtacOptions | None = None,
    with_coruns: bool = True,
    engine: ExperimentEngine | None = None,
) -> list[Figure4Row]:
    """Figure 4 end-to-end on the simulator (counters measured, models
    applied, predictions validated against observed co-runs).

    Two engine phases: the per-scenario measurements run first (parallel
    across scenarios, cached across drivers), then one model job per bar
    (any registered counter-based model via ``models=``).
    """
    profile = profile or tc27x_latency_profile()
    # `backend` is shorthand; an explicit `options` takes precedence.
    options = options or IlpPtacOptions(backend=backend)
    datasets = _simulate_datasets(scale, timing, with_coruns, engine)
    model_jobs = []
    for scenario_name, data in zip(SCENARIOS, datasets):
        for model in models:
            for load in _model_loads(model):
                model_jobs.append(
                    job(
                        _sim_model_row,
                        scenario_name,
                        load,
                        model,
                        data,
                        profile,
                        options,
                        label=f"figure4-sim:{scenario_name}:{model}:{load}",
                        warm_group=_warm_group(
                            "figure4-sim", scenario_name, model
                        ),
                    )
                )
    return run_jobs(model_jobs, engine)


# ----------------------------------------------------------------------
# Table 6 (simulation mode) and the information-degree ablation
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Table6Row:
    """One Table 6 row: simulated counters next to the (scaled) paper's."""

    scenario: str
    core: str
    task: str
    simulated: TaskReadings
    reference: TaskReadings


def table6_sim_mode(
    *,
    scale: float = 1 / 16,
    engine: ExperimentEngine | None = None,
) -> list[Table6Row]:
    """Regenerate Table 6 on the simulator and pair it with the paper's
    readings scaled by the same factor (shape comparison)."""
    datasets = _simulate_datasets(scale, None, with_coruns=False, engine=engine)
    rows: list[Table6Row] = []
    for scenario_name, data in zip(SCENARIOS, datasets):
        rows.append(
            Table6Row(
                scenario=scenario_name,
                core="Core1",
                task="app",
                simulated=data.app_readings,
                reference=paper.table6(scenario_name, "app").scaled(scale),
            )
        )
        rows.append(
            Table6Row(
                scenario=scenario_name,
                core="Core2",
                task="H-Load",
                simulated=data.load_readings["H"],
                reference=paper.table6(scenario_name, "H-Load").scaled(scale),
            )
        )
    return rows


@dataclasses.dataclass(frozen=True)
class AblationRow:
    """One bound in the information-degree ablation (A1)."""

    scenario: str
    load: str
    model: str
    delta_cycles: int
    slowdown: float


def _ablation_scenario_rows(
    scenario_name: str,
    scale: float,
    models: tuple[str, ...],
    options: IlpPtacOptions | None,
) -> list[AblationRow]:
    """Job: the full information ladder of one scenario.

    Contender-blind models run once per scenario; contender-aware ones
    once per load level.  Every model runs over the *same* context
    superset (measured counters plus ground-truth access profiles), so
    the ladder is a pure information-degree comparison.
    """
    profile = tc27x_latency_profile()
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    app_result = run_isolation(app_program)
    isolation = app_result.readings.require_ccnt()
    blind = [m for m in models if "-" in _model_loads(m)]
    aware = [m for m in models if "-" not in _model_loads(m)]

    rows: list[AblationRow] = []

    def append(model: str, load: str, readings_b, profile_b) -> None:
        bound = contention_bound(
            model,
            app_result.readings,
            profile,
            scenario,
            readings_b,
            access_profile_a=app_result.profile,
            access_profile_b=profile_b,
            options=options,
        )
        rows.append(
            AblationRow(
                scenario=scenario_name,
                load=load,
                model=bound.model,
                delta_cycles=bound.delta_cycles,
                slowdown=WcetEstimate(isolation, bound).slowdown,
            )
        )

    for model in blind:
        append(model, "-", None, None)
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        load_result = run_isolation(load_program, core=2)
        for model in aware:
            append(model, load, load_result.readings, load_result.profile)
    return rows


# ----------------------------------------------------------------------
# The model × scenario matrix (every counter-based model, every spec)
# ----------------------------------------------------------------------


def model_scenario_matrix(
    *,
    models: Sequence[str] | None = None,
    specs: Sequence[ScenarioSpec | str] | None = None,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[ScenarioRunResult]:
    """Run every model over every scenario spec — the full matrix.

    The two registries composed: by default every counter-based
    contention model (:func:`counter_based_model_names`) is run end to
    end over every registered deployment spec, one engine job per
    (spec, model) cell.  Rows come back spec-major in registration
    order — ``repro matrix`` renders them grouped per spec, so the
    models' joint bounds line up for comparison.

    Cell jobs fan out ungrouped — a cell is simulation-dominated, so
    parallel width beats cross-cell solver reuse (see
    :func:`~repro.engine.experiment.spec_job`) — but each cell's own
    pairwise and joint ILPs share its worker's warm-start pool.  With a
    caching engine the matrix is also incremental: cells are
    content-addressed by (spec, model), and repeated invocations only
    compute what changed.

    Args:
        models: registered model names (must be counter-based; defaults
            to all of them).
        specs: scenario specs or registered names (defaults to every
            registered spec).
        profile: Table 2 constants.
        timing: simulator timing.
        options: ILP knobs shared by every cell.
        engine: optional execution engine (parallel cells, caching).
    """
    return run_jobs(
        model_scenario_matrix_jobs(
            models=models,
            specs=specs,
            profile=profile,
            timing=timing,
            options=options,
        ),
        engine,
    )


def model_scenario_matrix_jobs(
    *,
    models: Sequence[str] | None = None,
    specs: Sequence[ScenarioSpec | str] | None = None,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
) -> list:
    """The job batch behind :func:`model_scenario_matrix`.

    One cell job per (spec, model), spec-major in registration order —
    the same batch whether the engine runs it directly or the analysis
    service queues it on a coordinator.
    """
    model_names = (
        tuple(models) if models is not None else counter_based_model_names()
    )
    for name in model_names:
        capabilities = get_model(name).capabilities  # fail fast
        if not capabilities.counter_based:
            raise ModelError(
                f"model {name!r} cannot join the matrix: scenario runs "
                "measure counter readings only, so pick counter-based "
                f"models ({', '.join(counter_based_model_names())})"
            )
    registry = default_registry()
    resolved = [
        registry.get(spec) if isinstance(spec, str) else spec
        for spec in (specs if specs is not None else registry.specs())
    ]
    return [
        spec_job(spec, model, profile, timing, options)
        for spec in resolved
        for model in model_names
    ]


def information_ablation(
    *,
    models: Sequence[str] = DEFAULT_ABLATION_MODELS,
    scale: float = 1 / 32,
    backend: str = "bnb",
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[AblationRow]:
    """Quantify what each level of information buys (experiment A1).

    By default runs the four-step ladder on identical simulator-measured
    inputs: ``ftc-baseline`` (no deployment knowledge), ``ftc-refined``
    (deployment knowledge about τa), ``ilp-ptac`` (+ contender counters)
    and ``ideal`` (ground-truth PTACs, unobtainable on real hardware).
    Any registered model name can join the ladder via ``models=``.
    """
    for model in models:
        get_model(model)  # fail fast on unknown names, before any job
    # `backend` is shorthand; an explicit `options` takes precedence.
    options = options or IlpPtacOptions(backend=backend)
    row_lists = run_jobs(
        [
            job(
                _ablation_scenario_rows,
                scenario_name,
                scale,
                tuple(models),
                options,
                label=f"ablation:{scenario_name}",
            )
            for scenario_name in SCENARIOS
        ],
        engine,
    )
    return [row for rows in row_lists for row in rows]
