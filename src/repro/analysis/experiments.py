"""Experiment drivers regenerating the paper's evaluation artefacts.

Two operating modes per experiment, matching DESIGN.md:

* **paper-counters mode** — feed the *published* Table 6 readings (plus
  the derived M/L scalings and isolation times) through our model
  implementations.  This isolates the model arithmetic: the resulting
  Figure 4 ratios must match the paper to ±0.02.
* **simulation mode** — generate the workloads, measure them on the
  bundled simulator (counters *and* isolation times), run the models on
  the measured readings, and additionally co-run the tasks to check that
  every prediction upper-bounds the observed multicore time (the paper's
  soundness statement).

Every driver expresses its work as a batch of independent engine jobs
(one per scenario/workload/model combination) and accepts an optional
``engine=`` argument: ``None`` runs serially, exactly as before; an
:class:`~repro.engine.runner.ExperimentEngine` adds parallel fan-out and
content-addressed result caching (a cached simulation is never re-run,
whichever driver asked for it first).  Output is identical in every mode.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

from repro import paper
from repro.analysis.mbta import CorunObservation, observe_corun
from repro.core.ftc import ftc_baseline, ftc_refined
from repro.core.ideal import ideal_bound
from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.core.results import WcetEstimate
from repro.counters.readings import TaskReadings
from repro.engine.batch import job
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario, named_scenarios
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.system import run_isolation
from repro.sim.timing import SimTiming
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import LOAD_LEVELS, build_load

SCENARIOS: tuple[str, ...] = ("scenario1", "scenario2")


def reference_scenario(name: str) -> DeploymentScenario:
    """Resolve one of the paper's two reference scenarios by name.

    The shared validator of every driver that takes a scenario *name*
    (Figure 4, Table 6, ablation, three-core): only the evaluated
    deployments are accepted, with a :class:`ModelError` otherwise.
    """
    if name not in SCENARIOS:
        raise ModelError(f"unknown scenario {name!r}")
    return named_scenarios()[name]


@dataclasses.dataclass(frozen=True)
class Figure4Row:
    """One bar of Figure 4.

    Attributes:
        scenario: ``"scenario1"`` / ``"scenario2"``.
        load: contender level (``"H"``/``"M"``/``"L"``); fTC bars ignore
            the contender, so their load is ``"-"``.
        model: model identifier.
        delta_cycles: the contention bound.
        slowdown: prediction normalised by the isolation time (the y-axis).
        paper_value: the published ratio, when the paper reports one.
        observed_slowdown: measured co-run slowdown (simulation mode only).
    """

    scenario: str
    load: str
    model: str
    delta_cycles: int
    slowdown: float
    paper_value: float | None = None
    observed_slowdown: float | None = None

    @property
    def sound(self) -> bool | None:
        """Prediction ≥ observation (None when nothing was observed)."""
        if self.observed_slowdown is None:
            return None
        return self.slowdown >= self.observed_slowdown


# ----------------------------------------------------------------------
# Paper-counters mode
# ----------------------------------------------------------------------
def _paper_ftc_row(scenario_name: str, profile: LatencyProfile) -> Figure4Row:
    """Job: the refined fTC bar of one scenario (published readings)."""
    scenario = reference_scenario(scenario_name)
    readings_a = paper.table6(scenario_name, "app")
    isolation = paper.ISOLATION_CYCLES[scenario_name]
    ftc = ftc_refined(readings_a, profile, scenario)
    return Figure4Row(
        scenario=scenario_name,
        load="-",
        model=ftc.model,
        delta_cycles=ftc.delta_cycles,
        slowdown=WcetEstimate(isolation, ftc).slowdown,
        paper_value=paper.FIGURE4[scenario_name].ftc,
    )


def _paper_ilp_row(
    scenario_name: str, load: str, profile: LatencyProfile, backend: str
) -> Figure4Row:
    """Job: one ILP-PTAC bar (scenario × load, published readings)."""
    scenario = reference_scenario(scenario_name)
    readings_a = paper.table6(scenario_name, "app")
    readings_b = paper.contender_readings(scenario_name, load)
    isolation = paper.ISOLATION_CYCLES[scenario_name]
    result = ilp_ptac_bound(
        readings_a,
        readings_b,
        profile,
        scenario,
        IlpPtacOptions(backend=backend),
    )
    return Figure4Row(
        scenario=scenario_name,
        load=load,
        model=result.bound.model,
        delta_cycles=result.bound.delta_cycles,
        slowdown=WcetEstimate(isolation, result.bound).slowdown,
        paper_value=paper.FIGURE4[scenario_name].ilp.get(load),
    )


def figure4_paper_mode(
    *,
    profile: LatencyProfile | None = None,
    backend: str = "bnb",
    engine: ExperimentEngine | None = None,
) -> list[Figure4Row]:
    """Figure 4 from the published Table 6 readings.

    Returns one row per bar: the refined fTC bound per scenario and the
    ILP-PTAC bound per (scenario, load level).
    """
    profile = profile or tc27x_latency_profile()
    jobs = []
    for scenario_name in SCENARIOS:
        jobs.append(
            job(
                _paper_ftc_row,
                scenario_name,
                profile,
                label=f"figure4-paper:{scenario_name}:ftc",
            )
        )
        for load in LOAD_LEVELS:
            jobs.append(
                job(
                    _paper_ilp_row,
                    scenario_name,
                    load,
                    profile,
                    backend,
                    label=f"figure4-paper:{scenario_name}:ilp:{load}",
                )
            )
    return run_jobs(jobs, engine)


# ----------------------------------------------------------------------
# Simulation mode
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ScenarioSimData:
    """Measured inputs of one scenario in simulation mode."""

    scenario: DeploymentScenario
    app_readings: TaskReadings
    app_isolation_cycles: int
    load_readings: Mapping[str, TaskReadings]
    corun_observations: Mapping[str, CorunObservation]


def simulate_scenario(
    scenario_name: str,
    *,
    scale: float = 1 / 16,
    timing: SimTiming | None = None,
    with_coruns: bool = True,
) -> ScenarioSimData:
    """Measure the application and the loads on the simulator.

    This is the expensive half of simulation mode and an engine job in
    its own right: the sim-mode drivers schedule it once per scenario and
    a caching engine reuses the measurement across drivers and sweeps.

    Args:
        scenario_name: which reference scenario to reproduce.
        scale: workload scale relative to the paper's full-size run.
        timing: simulator timing.
        with_coruns: also co-run the application against each load to
            collect observed multicore times (the soundness check).
    """
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    app_result = run_isolation(app_program, timing=timing)
    app_readings = app_result.readings
    isolation = app_readings.require_ccnt()

    load_readings: dict[str, TaskReadings] = {}
    coruns: dict[str, CorunObservation] = {}
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        load_readings[load] = run_isolation(
            load_program, core=2, timing=timing
        ).readings
        if with_coruns:
            coruns[load] = observe_corun(
                app_program,
                {2: load_program},
                isolation,
                timing=timing,
            )
    return ScenarioSimData(
        scenario=scenario,
        app_readings=app_readings,
        app_isolation_cycles=isolation,
        load_readings=load_readings,
        corun_observations=coruns,
    )


def _sim_ftc_row(
    scenario_name: str, data: ScenarioSimData, profile: LatencyProfile
) -> Figure4Row:
    """Job: the refined fTC bar from measured counters."""
    ftc = ftc_refined(data.app_readings, profile, data.scenario)
    worst_observed = max(
        (
            observation.slowdown
            for observation in data.corun_observations.values()
        ),
        default=None,
    )
    return Figure4Row(
        scenario=scenario_name,
        load="-",
        model=ftc.model,
        delta_cycles=ftc.delta_cycles,
        slowdown=WcetEstimate(data.app_isolation_cycles, ftc).slowdown,
        paper_value=paper.FIGURE4[scenario_name].ftc,
        observed_slowdown=worst_observed,
    )


def _sim_ilp_row(
    scenario_name: str,
    load: str,
    data: ScenarioSimData,
    profile: LatencyProfile,
    backend: str,
) -> Figure4Row:
    """Job: one ILP-PTAC bar from measured counters."""
    result = ilp_ptac_bound(
        data.app_readings,
        data.load_readings[load],
        profile,
        data.scenario,
        IlpPtacOptions(backend=backend),
    )
    observation = data.corun_observations.get(load)
    return Figure4Row(
        scenario=scenario_name,
        load=load,
        model=result.bound.model,
        delta_cycles=result.bound.delta_cycles,
        slowdown=WcetEstimate(
            data.app_isolation_cycles, result.bound
        ).slowdown,
        paper_value=paper.FIGURE4[scenario_name].ilp.get(load),
        observed_slowdown=(observation.slowdown if observation else None),
    )


def _corun_observations(
    scenario_name: str,
    scale: float,
    timing: SimTiming | None,
    isolation_cycles: int,
) -> dict[str, CorunObservation]:
    """Job: co-run the application against each load level.

    Split from the isolation measurements so the two stages cache
    independently: Table 6 needs only the measurements, Figure 4 needs
    both, and with a shared engine neither re-simulates the other's part.
    """
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    coruns: dict[str, CorunObservation] = {}
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        coruns[load] = observe_corun(
            app_program,
            {2: load_program},
            isolation_cycles,
            timing=timing,
        )
    return coruns


def _simulate_datasets(
    scale: float,
    timing: SimTiming | None,
    with_coruns: bool,
    engine: ExperimentEngine | None,
) -> list[ScenarioSimData]:
    """Measure both scenarios, in two independently-cached job stages."""
    datasets = run_jobs(
        [
            job(
                simulate_scenario,
                scenario_name,
                scale=scale,
                timing=timing,
                with_coruns=False,
                label=f"simulate:{scenario_name}:scale={scale:g}",
            )
            for scenario_name in SCENARIOS
        ],
        engine,
    )
    if not with_coruns:
        return datasets
    corun_maps = run_jobs(
        [
            job(
                _corun_observations,
                scenario_name,
                scale,
                timing,
                data.app_isolation_cycles,
                label=f"corun:{scenario_name}:scale={scale:g}",
            )
            for scenario_name, data in zip(SCENARIOS, datasets)
        ],
        engine,
    )
    return [
        dataclasses.replace(data, corun_observations=coruns)
        for data, coruns in zip(datasets, corun_maps)
    ]


def figure4_sim_mode(
    *,
    scale: float = 1 / 16,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
    with_coruns: bool = True,
    engine: ExperimentEngine | None = None,
) -> list[Figure4Row]:
    """Figure 4 end-to-end on the simulator (counters measured, models
    applied, predictions validated against observed co-runs).

    Two engine phases: the per-scenario measurements run first (parallel
    across scenarios, cached across drivers), then one model job per bar.
    """
    profile = profile or tc27x_latency_profile()
    datasets = _simulate_datasets(scale, timing, with_coruns, engine)
    model_jobs = []
    for scenario_name, data in zip(SCENARIOS, datasets):
        model_jobs.append(
            job(
                _sim_ftc_row,
                scenario_name,
                data,
                profile,
                label=f"figure4-sim:{scenario_name}:ftc",
            )
        )
        for load in LOAD_LEVELS:
            model_jobs.append(
                job(
                    _sim_ilp_row,
                    scenario_name,
                    load,
                    data,
                    profile,
                    backend,
                    label=f"figure4-sim:{scenario_name}:ilp:{load}",
                )
            )
    return run_jobs(model_jobs, engine)


# ----------------------------------------------------------------------
# Table 6 (simulation mode) and the information-degree ablation
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Table6Row:
    """One Table 6 row: simulated counters next to the (scaled) paper's."""

    scenario: str
    core: str
    task: str
    simulated: TaskReadings
    reference: TaskReadings


def table6_sim_mode(
    *,
    scale: float = 1 / 16,
    engine: ExperimentEngine | None = None,
) -> list[Table6Row]:
    """Regenerate Table 6 on the simulator and pair it with the paper's
    readings scaled by the same factor (shape comparison)."""
    datasets = _simulate_datasets(scale, None, with_coruns=False, engine=engine)
    rows: list[Table6Row] = []
    for scenario_name, data in zip(SCENARIOS, datasets):
        rows.append(
            Table6Row(
                scenario=scenario_name,
                core="Core1",
                task="app",
                simulated=data.app_readings,
                reference=paper.table6(scenario_name, "app").scaled(scale),
            )
        )
        rows.append(
            Table6Row(
                scenario=scenario_name,
                core="Core2",
                task="H-Load",
                simulated=data.load_readings["H"],
                reference=paper.table6(scenario_name, "H-Load").scaled(scale),
            )
        )
    return rows


@dataclasses.dataclass(frozen=True)
class AblationRow:
    """One bound in the information-degree ablation (A1)."""

    scenario: str
    load: str
    model: str
    delta_cycles: int
    slowdown: float


def _ablation_scenario_rows(
    scenario_name: str, scale: float, backend: str
) -> list[AblationRow]:
    """Job: the full information ladder of one scenario."""
    profile = tc27x_latency_profile()
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    app_result = run_isolation(app_program)
    isolation = app_result.readings.require_ccnt()

    rows: list[AblationRow] = []
    baseline = ftc_baseline(app_result.readings, profile)
    refined = ftc_refined(app_result.readings, profile, scenario)
    for bound in (baseline, refined):
        rows.append(
            AblationRow(
                scenario=scenario_name,
                load="-",
                model=bound.model,
                delta_cycles=bound.delta_cycles,
                slowdown=WcetEstimate(isolation, bound).slowdown,
            )
        )
    for load in LOAD_LEVELS:
        load_program = build_load(scenario_name, load, scale=scale)
        load_result = run_isolation(load_program, core=2)
        ilp = ilp_ptac_bound(
            app_result.readings,
            load_result.readings,
            profile,
            scenario,
            IlpPtacOptions(backend=backend),
        ).bound
        ideal = ideal_bound(
            app_result.profile,
            load_result.profile,
            profile,
            scenario,
        )
        for bound in (ilp, ideal):
            rows.append(
                AblationRow(
                    scenario=scenario_name,
                    load=load,
                    model=bound.model,
                    delta_cycles=bound.delta_cycles,
                    slowdown=WcetEstimate(isolation, bound).slowdown,
                )
            )
    return rows


def information_ablation(
    *,
    scale: float = 1 / 32,
    backend: str = "bnb",
    engine: ExperimentEngine | None = None,
) -> list[AblationRow]:
    """Quantify what each level of information buys (experiment A1).

    Runs four models on identical simulator-measured inputs:
    ``ftc-baseline`` (no deployment knowledge), ``ftc-refined``
    (deployment knowledge about τa), ``ilp-ptac`` (+ contender counters)
    and ``ideal`` (ground-truth PTACs, unobtainable on real hardware).
    """
    row_lists = run_jobs(
        [
            job(
                _ablation_scenario_rows,
                scenario_name,
                scale,
                backend,
                label=f"ablation:{scenario_name}",
            )
            for scenario_name in SCENARIOS
        ],
        engine,
    )
    return [row for rows in row_lists for row in rows]
