"""Contender throttling: trading co-runner bandwidth for victim bounds.

The paper's related work includes runtime mechanisms that "enforce
precomputed bounds to the maximum contention caused/suffered at operation"
(Nowotsch et al., cited as [16]).  This module provides the analysis-side
counterpart on top of our models: throttle a contender's SRI request
*rate* (minimum gap between requests — what an RTOS-level bandwidth
regulator implements with PMC-triggered interrupts), re-measure its
counters, and recompute the victim's ILP bound.

Because the ILP bound is monotone in the contender's counters, rate
regulation translates directly into WCET headroom; :func:`throttle_sweep`
computes the trade-off curve an integrator would use to pick a regulator
setting that makes a deadline feasible.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.counters.readings import TaskReadings
from repro.errors import SimulationError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.program import Step, TaskProgram
from repro.sim.system import run_isolation
from repro.sim.timing import SimTiming


def throttled(program: TaskProgram, min_gap: int) -> TaskProgram:
    """Enforce a minimum computation gap before every SRI request.

    Models a bandwidth regulator that releases at most one SRI request
    per ``min_gap`` cycles: gaps shorter than the floor are stretched,
    longer ones are untouched.  ``min_gap == 0`` returns the program
    unchanged.
    """
    if min_gap < 0:
        raise SimulationError("throttle gap must be non-negative")
    if min_gap == 0:
        return program

    def factory() -> Iterator[Step]:
        for gap, request in program.steps():
            if request is not None and gap < min_gap:
                yield (min_gap, request)
            else:
                yield (gap, request)

    return TaskProgram(
        name=f"{program.name}|throttle{min_gap}", stream_factory=factory
    )


@dataclasses.dataclass(frozen=True)
class ThrottlePoint:
    """One point of a throttling trade-off curve.

    Attributes:
        min_gap: regulator setting (cycles between releases).
        contender_readings: the throttled contender's isolation counters.
        delta_cycles: victim's ILP bound against the throttled contender.
        contender_cycles: the throttling cost paid by the contender
            (its own isolation execution time).
    """

    min_gap: int
    contender_readings: TaskReadings
    delta_cycles: int
    contender_cycles: int


def throttle_sweep(
    victim_readings: TaskReadings,
    contender: TaskProgram,
    scenario: DeploymentScenario,
    *,
    gaps: Sequence[int] = (0, 4, 8, 16, 32, 64),
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
) -> list[ThrottlePoint]:
    """The bandwidth-regulation trade-off curve.

    For each regulator setting: throttle the contender, measure it in
    isolation (its counters shrink only via DMA-free slack — the request
    *counts* stay, the stall totals stay, but its execution lengthens so
    its request *density* drops; the ILP input that matters is unchanged
    counters over a longer window, which the integrator accounts for by
    windowing — here we keep the conservative whole-run counters), and
    recompute the victim's bound.

    Note the structural insight this surfaces: with whole-run counters
    the ILP bound is throttle-*invariant* (same totals), so the benefit
    of regulation appears only through windowed accounting — the sweep
    reports both the (invariant) bound and the contender's slowdown, and
    the windowed variant divides counters by the run-length ratio, which
    is the per-window bound an enforcement regime guarantees.
    """
    profile = profile or tc27x_latency_profile()
    points = []
    baseline_cycles: int | None = None
    for gap in gaps:
        regulated = throttled(contender, gap)
        result = run_isolation(regulated, core=2, timing=timing)
        readings = result.readings
        cycles = readings.require_ccnt()
        if baseline_cycles is None:
            baseline_cycles = cycles
        # Windowed accounting: the victim only ever overlaps the
        # contender for (at most) its own execution; a regulator
        # guarantees the per-window request density, so the effective
        # counters scale with the density ratio.
        density = baseline_cycles / cycles
        windowed = readings.scaled(min(1.0, density), name=readings.name)
        delta = ilp_ptac_bound(
            victim_readings, windowed, profile, scenario, options
        ).bound.delta_cycles
        points.append(
            ThrottlePoint(
                min_gap=gap,
                contender_readings=windowed,
                delta_cycles=delta,
                contender_cycles=cycles,
            )
        )
    return points
