"""Soundness validation: model predictions vs. observed co-runs.

The paper's empirical soundness statement — "In all experiments our model
predictions upperbound the observed multicore execution time" — is the
one property a contention model must never violate.  This module sweeps
randomized task pairs through the full pipeline (isolation measurement →
model bound → co-run observation) and reports any violation, serving both
the property-test suite and the A4 benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.analysis.mbta import measure_isolation, observe_corun
from repro.core.ilp_ptac import IlpPtacOptions
from repro.core.results import WcetEstimate
from repro.core.wcet import contention_bound
from repro.engine.batch import job
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.program import TaskProgram
from repro.sim.timing import SimTiming
from repro.workloads.synthetic import random_task_pair

#: Models every soundness case runs by default (counter-based family).
DEFAULT_SOUNDNESS_MODELS: tuple[str, ...] = (
    "ftc-baseline",
    "ftc-refined",
    "ilp-ptac",
)


@dataclasses.dataclass(frozen=True)
class SoundnessCase:
    """One task pair's soundness outcome across all models.

    Attributes:
        name: case identifier (seed or workload name).
        isolation_cycles: τa's isolation time.
        observed_cycles: τa's co-run time.
        predictions: model name → predicted WCET cycles.
        violations: model names whose prediction fell below the
            observation (must be empty).
    """

    name: str
    isolation_cycles: int
    observed_cycles: int
    predictions: dict[str, int]
    violations: tuple[str, ...]

    @property
    def sound(self) -> bool:
        return not self.violations

    @property
    def observed_slowdown(self) -> float:
        return self.observed_cycles / self.isolation_cycles

    def tightness(self, model: str) -> float:
        """Prediction over observation (1.0 = perfectly tight)."""
        return self.predictions[model] / self.observed_cycles


def check_soundness(
    task: TaskProgram,
    contender: TaskProgram,
    scenario: DeploymentScenario,
    *,
    models: Sequence[str] = DEFAULT_SOUNDNESS_MODELS,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
    name: str = "",
) -> SoundnessCase:
    """Full pipeline soundness check for one (τa, τb) pair.

    Measures both tasks in isolation, computes every requested
    registered model's bound from the measured counters, co-runs the
    pair, and compares predictions against the observation.
    """
    profile = profile or tc27x_latency_profile()
    options = IlpPtacOptions(backend=backend)
    measurement_a = measure_isolation(task, timing=timing)
    measurement_b = measure_isolation(contender, core=2, timing=timing)

    bounds = {
        model: contention_bound(
            model,
            measurement_a.readings,
            profile,
            scenario,
            measurement_b.readings,
            options=options,
        )
        for model in models
    }
    predictions = {
        model: WcetEstimate(measurement_a.hwm_cycles, bound).wcet_cycles
        for model, bound in bounds.items()
    }

    observation = observe_corun(
        task, {2: contender}, measurement_a.hwm_cycles, timing=timing
    )
    violations = tuple(
        model
        for model, predicted in predictions.items()
        if predicted < observation.observed_cycles
    )
    return SoundnessCase(
        name=name or task.name,
        isolation_cycles=measurement_a.hwm_cycles,
        observed_cycles=observation.observed_cycles,
        predictions=predictions,
        violations=violations,
    )


@dataclasses.dataclass(frozen=True)
class SoundnessSweep:
    """Aggregated outcome of a randomized soundness sweep."""

    cases: tuple[SoundnessCase, ...]

    @property
    def all_sound(self) -> bool:
        return all(case.sound for case in self.cases)

    @property
    def violations(self) -> list[tuple[str, str]]:
        """(case, model) pairs that violated soundness (must be empty)."""
        return [
            (case.name, model)
            for case in self.cases
            for model in case.violations
        ]

    def mean_tightness(self, model: str) -> float:
        """Average prediction/observation ratio of one model."""
        values = [case.tightness(model) for case in self.cases]
        return sum(values) / len(values)


def soundness_sweep(
    pairs: Sequence[tuple[TaskProgram, TaskProgram]],
    scenario: DeploymentScenario,
    *,
    models: Sequence[str] = DEFAULT_SOUNDNESS_MODELS,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
    engine: ExperimentEngine | None = None,
) -> SoundnessSweep:
    """Run :func:`check_soundness` over many task pairs.

    Each pair is one engine job.  Note task programs carry closures, so
    a process-mode engine transparently demotes these jobs to in-process
    execution; for fully parallel sweeps generate the pairs inside the
    job via :func:`random_soundness_sweep`.
    """
    cases = run_jobs(
        [
            job(
                check_soundness,
                task,
                contender,
                scenario,
                models=tuple(models),
                profile=profile,
                timing=timing,
                backend=backend,
                name=f"{task.name} vs {contender.name}",
                label=f"soundness:{task.name} vs {contender.name}",
                cacheable=False,
            )
            for task, contender in pairs
        ],
        engine,
    )
    return SoundnessSweep(cases=tuple(cases))


def _random_soundness_case(
    scenario: DeploymentScenario,
    seed: int,
    max_requests: int,
    models: tuple[str, ...],
    profile: LatencyProfile | None,
    timing: SimTiming | None,
    backend: str,
) -> SoundnessCase:
    """Job: one seeded pair through the full soundness pipeline."""
    task, contender = random_task_pair(
        scenario, seed=seed, max_requests=max_requests
    )
    return check_soundness(
        task,
        contender,
        scenario,
        models=models,
        profile=profile,
        timing=timing,
        backend=backend,
        name=f"{task.name} vs {contender.name}",
    )


def random_soundness_jobs(
    scenario: DeploymentScenario,
    *,
    pairs: int,
    max_requests: int = 2_000,
    models: Sequence[str] = DEFAULT_SOUNDNESS_MODELS,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
) -> list:
    """The job batch behind :func:`random_soundness_sweep`.

    One seeded pair per job, pair construction *inside* the job, so
    every job is plain picklable data — runnable by the local engine,
    a remote worker pool or the analysis-service queue alike.
    """
    return [
        job(
            _random_soundness_case,
            scenario,
            seed,
            max_requests,
            tuple(models),
            profile,
            timing,
            backend,
            label=f"soundness:{scenario.name}:seed={seed}",
        )
        for seed in range(pairs)
    ]


def random_soundness_sweep(
    scenario: DeploymentScenario,
    *,
    pairs: int,
    max_requests: int = 2_000,
    models: Sequence[str] = DEFAULT_SOUNDNESS_MODELS,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    backend: str = "bnb",
    engine: ExperimentEngine | None = None,
) -> SoundnessSweep:
    """Seeded randomized soundness sweep, fully engine-parallel.

    Equivalent to building ``random_task_pair(scenario, seed=s)`` for
    ``s in range(pairs)`` and calling :func:`soundness_sweep`, but the
    pair construction happens *inside* each job, so every job is plain
    data — the model *names* included — and can run in a worker process
    or hit the result cache (keyed per model set).
    """
    cases = run_jobs(
        random_soundness_jobs(
            scenario,
            pairs=pairs,
            max_requests=max_requests,
            models=models,
            profile=profile,
            timing=timing,
            backend=backend,
        ),
        engine,
    )
    return SoundnessSweep(cases=tuple(cases))
