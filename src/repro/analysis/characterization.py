"""Platform characterisation: re-deriving Table 2 from the simulator.

Follows the paper's methodology (Section 3.3.1-3.3.2): run microbenchmarks
with a *known* number of accesses of a given type to a desired target,
then

* read maximum/minimum end-to-end SRI transaction latencies (the authors
  used single accesses timed with CCNT; we read the crossbar's transaction
  statistics, which carry the same information), and
* divide the cumulative PMEM_STALL / DMEM_STALL readings by the access
  count to obtain per-access stalls, whose minimum over access flavours is
  the ``cs^{t,o}`` lower bound the models divide by.

The result is a measured :class:`~repro.platform.latency.LatencyProfile`;
the test-suite asserts it reproduces the paper's Table 2 exactly, closing
the loop between the simulator's timing and the models' constants.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError
from repro.platform.latency import LatencyProfile, TargetTiming
from repro.platform.targets import (
    ALL_TARGETS,
    Operation,
    Target,
    is_valid_pair,
)
from repro.sim.system import SystemSimulator
from repro.sim.timing import SimTiming
from repro.workloads.microbenchmarks import Probe, characterization_suite


@dataclasses.dataclass
class _TargetObservation:
    """Accumulated measurements of one target across probes."""

    l_max: int | None = None
    l_max_dirty: int | None = None
    l_min: int | None = None
    cs_code: int | None = None
    cs_data: int | None = None

    def note_latency(self, service_min: int, service_max: int, dirty: bool) -> None:
        if dirty:
            self.l_max_dirty = (
                service_max
                if self.l_max_dirty is None
                else max(self.l_max_dirty, service_max)
            )
            return
        self.l_max = (
            service_max if self.l_max is None else max(self.l_max, service_max)
        )
        self.l_min = (
            service_min if self.l_min is None else min(self.l_min, service_min)
        )

    def note_stall(self, operation: Operation, per_access: int) -> None:
        if operation is Operation.CODE:
            self.cs_code = (
                per_access
                if self.cs_code is None
                else min(self.cs_code, per_access)
            )
        else:
            self.cs_data = (
                per_access
                if self.cs_data is None
                else min(self.cs_data, per_access)
            )


@dataclasses.dataclass(frozen=True)
class CharacterizationResult:
    """Measured Table 2, plus the probe data behind it.

    Attributes:
        profile: the measured latency profile (same shape as
            :func:`~repro.platform.latency.tc27x_latency_profile`).
        per_probe_stalls: per-access stall of each probe (diagnostics).
    """

    profile: LatencyProfile
    per_probe_stalls: dict[str, float]

    def as_table(self) -> dict[str, dict[str, int | None]]:
        """Render the measured profile as Table 2 rows."""
        return self.profile.as_table()


def characterize(
    *,
    timing: SimTiming | None = None,
    probes: list[Probe] | None = None,
) -> CharacterizationResult:
    """Run the microbenchmark suite and rebuild Table 2.

    Args:
        timing: simulator timing to characterise (defaults to the TC27x
            configuration; pass a modified timing to characterise a
            hypothetical platform, e.g. for the Section 4.3 porting story).
        probes: override the probe suite (defaults to the full set).
    """
    sim = SystemSimulator(timing)
    probes = probes if probes is not None else characterization_suite()
    observations = {target: _TargetObservation() for target in ALL_TARGETS}
    per_probe: dict[str, float] = {}

    for probe in probes:
        result = sim.run({1: probe.program}).core(1)
        stats = result.transactions.get((probe.target, probe.operation))
        if stats is None or stats.count != probe.count:
            raise SimulationError(
                f"probe {probe.name!r} did not produce the expected "
                f"transactions ({stats.count if stats else 0} != {probe.count})"
            )
        observation = observations[probe.target]
        assert stats.min_service is not None and stats.max_service is not None
        observation.note_latency(
            stats.min_service, stats.max_service, dirty=probe.flavour == "dirty"
        )

        stall_counter = (
            result.readings.ps
            if probe.operation is Operation.CODE
            else result.readings.ds
        )
        per_access = stall_counter / probe.count
        per_probe[probe.name] = per_access
        if probe.flavour != "dirty":
            # Dirty evictions are excluded from the cs minimisation the
            # same way the paper brackets their latency: they only occur
            # in specific scenarios.
            observation.note_stall(probe.operation, int(per_access))

    timings: dict[Target, TargetTiming] = {}
    for target, observation in observations.items():
        if observation.l_max is None or observation.l_min is None:
            raise SimulationError(
                f"no probes characterised target {target.value!r}"
            )
        if observation.cs_data is None:
            raise SimulationError(
                f"no data-stall measurement for target {target.value!r}"
            )
        if is_valid_pair(target, Operation.CODE) and observation.cs_code is None:
            raise SimulationError(
                f"no code-stall measurement for target {target.value!r}"
            )
        timings[target] = TargetTiming(
            l_max=observation.l_max,
            l_min=observation.l_min,
            l_max_dirty=observation.l_max_dirty,
            cs_code=observation.cs_code,
            cs_data=observation.cs_data,
        )
    return CharacterizationResult(
        profile=LatencyProfile(timings), per_probe_stalls=per_probe
    )
