"""Analysis harness: characterisation, MBTA protocol, experiment drivers."""

from repro.analysis.alignment import (
    AlignmentResult,
    alignment_sweep,
    delayed,
    looped,
)
from repro.analysis.characterization import (
    CharacterizationResult,
    characterize,
)
from repro.analysis.enforcement import (
    ThrottlePoint,
    throttle_sweep,
    throttled,
)
from repro.analysis.experiments import (
    AblationRow,
    Figure4Row,
    SCENARIOS,
    ScenarioSimData,
    Table6Row,
    figure4_paper_mode,
    figure4_sim_mode,
    information_ablation,
    reference_scenario,
    simulate_scenario,
    table6_sim_mode,
)
from repro.analysis.mbta import (
    CorunObservation,
    IsolationMeasurement,
    analyse,
    measure_isolation,
    observe_corun,
)
from repro.analysis.report import (
    render_ablation,
    render_artifact,
    render_figure4,
    render_latency_table,
    render_placement_table,
    render_table,
    render_table6,
)
from repro.analysis.three_core import ThreeCoreRow, three_core_experiment
from repro.analysis.sweeps import (
    DeploymentComparison,
    DirtySensitivity,
    SweepPoint,
    contender_scale_sweep,
    deployment_sweep,
    dirty_latency_sensitivity,
)
from repro.analysis.validation import (
    SoundnessCase,
    SoundnessSweep,
    check_soundness,
    random_soundness_sweep,
    soundness_sweep,
)

__all__ = [
    "AblationRow",
    "AlignmentResult",
    "CharacterizationResult",
    "CorunObservation",
    "DeploymentComparison",
    "DirtySensitivity",
    "Figure4Row",
    "IsolationMeasurement",
    "SCENARIOS",
    "ScenarioSimData",
    "SoundnessCase",
    "SoundnessSweep",
    "Table6Row",
    "ThreeCoreRow",
    "ThrottlePoint",
    "alignment_sweep",
    "analyse",
    "characterize",
    "check_soundness",
    "figure4_paper_mode",
    "figure4_sim_mode",
    "information_ablation",
    "measure_isolation",
    "observe_corun",
    "random_soundness_sweep",
    "reference_scenario",
    "render_ablation",
    "render_artifact",
    "render_figure4",
    "render_latency_table",
    "render_placement_table",
    "render_table",
    "render_table6",
    "simulate_scenario",
    "SweepPoint",
    "contender_scale_sweep",
    "deployment_sweep",
    "dirty_latency_sensitivity",
    "soundness_sweep",
    "table6_sim_mode",
    "three_core_experiment",
    "throttle_sweep",
    "throttled",
    "delayed",
    "looped",
]
