"""Three-core evaluation: the full TC277 under joint contention.

The paper evaluates pairs (application on core 1, one contender on
core 2) and notes the model extends to more contenders.  The TC277 has
three cores, so the realistic integration question is: application plus
*two* co-runners.  This driver runs that experiment end to end:

1. measure the application and both contenders in isolation;
2. bound the joint contention with the multi-contender ILP
   (:func:`repro.core.multicontender.multi_contender_bound`) and with the
   naive sum of pairwise bounds;
3. co-run all three cores on the simulator and verify both bounds cover
   the observation — and report how much the joint formulation saves.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.core.multicontender import multi_contender_bound
from repro.counters.readings import TaskReadings
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario, scenario_1, scenario_2
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.system import SystemSimulator, run_isolation
from repro.sim.timing import SimTiming
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import build_load


@dataclasses.dataclass(frozen=True)
class ThreeCoreRow:
    """Outcome of one three-core configuration.

    Attributes:
        scenario: deployment scenario name.
        loads: the two contender levels (e.g. ``("H", "L")``).
        isolation_cycles: application's isolation time.
        joint_delta: multi-contender ILP bound.
        pairwise_sum_delta: sum of the two single-contender bounds.
        observed_cycles: application's time in the three-core co-run.
    """

    scenario: str
    loads: tuple[str, str]
    isolation_cycles: int
    joint_delta: int
    pairwise_sum_delta: int
    observed_cycles: int

    @property
    def joint_prediction(self) -> int:
        return self.isolation_cycles + self.joint_delta

    @property
    def pairwise_prediction(self) -> int:
        return self.isolation_cycles + self.pairwise_sum_delta

    @property
    def observed_slowdown(self) -> float:
        return self.observed_cycles / self.isolation_cycles

    @property
    def sound(self) -> bool:
        return self.joint_prediction >= self.observed_cycles

    @property
    def joint_saving(self) -> int:
        """Cycles the joint formulation saves over the pairwise sum."""
        return self.pairwise_sum_delta - self.joint_delta


def _rename(readings: TaskReadings, name: str) -> TaskReadings:
    return TaskReadings(
        name=name,
        pmem_stall=readings.pmem_stall,
        dmem_stall=readings.dmem_stall,
        pcache_miss=readings.pcache_miss,
        dcache_miss_clean=readings.dcache_miss_clean,
        dcache_miss_dirty=readings.dcache_miss_dirty,
        ccnt=readings.ccnt,
    )


def three_core_experiment(
    scenario_name: str,
    load_pairs: Sequence[tuple[str, str]] = (("H", "L"), ("M", "M"), ("H", "H")),
    *,
    scale: float = 1 / 32,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
) -> list[ThreeCoreRow]:
    """Run the three-core evaluation for several contender pairings.

    Args:
        scenario_name: ``"scenario1"`` or ``"scenario2"``.
        load_pairs: contender levels for cores 0 and 2.
        scale: workload scale (the application is the Table 6 control
            loop; the 1.6E core 0 gets the second load generator).
        profile, timing, options: the usual knobs.
    """
    if scenario_name == "scenario1":
        scenario: DeploymentScenario = scenario_1()
    elif scenario_name == "scenario2":
        scenario = scenario_2()
    else:
        raise ModelError(f"unknown scenario {scenario_name!r}")
    profile = profile or tc27x_latency_profile()

    app_program, _ = build_control_loop(scenario, scale=scale)
    app = run_isolation(app_program, timing=timing)
    isolation = app.readings.require_ccnt()

    rows = []
    for first, second in load_pairs:
        program_0 = build_load(scenario_name, first, scale=scale)
        program_2 = build_load(scenario_name, second, scale=scale)
        readings_0 = _rename(
            run_isolation(program_0, core=0, timing=timing).readings,
            f"{first}-Load@core0",
        )
        readings_2 = _rename(
            run_isolation(program_2, core=2, timing=timing).readings,
            f"{second}-Load@core2",
        )

        joint = multi_contender_bound(
            app.readings, [readings_0, readings_2], profile, scenario, options
        ).bound.delta_cycles
        pairwise = sum(
            ilp_ptac_bound(
                app.readings, contender, profile, scenario, options
            ).bound.delta_cycles
            for contender in (readings_0, readings_2)
        )

        observed = (
            SystemSimulator(timing)
            .run({0: program_0, 1: app_program, 2: program_2})
            .readings(1)
            .require_ccnt()
        )
        rows.append(
            ThreeCoreRow(
                scenario=scenario_name,
                loads=(first, second),
                isolation_cycles=isolation,
                joint_delta=joint,
                pairwise_sum_delta=pairwise,
                observed_cycles=observed,
            )
        )
    return rows
