"""Three-core evaluation: the full TC277 under joint contention.

The paper evaluates pairs (application on core 1, one contender on
core 2) and notes the model extends to more contenders.  The TC277 has
three cores, so the realistic integration question is: application plus
*two* co-runners.  This driver runs that experiment end to end:

1. measure the application and both contenders in isolation;
2. bound the joint contention with the multi-contender ILP (the
   registered ``ilp-ptac-multi`` model) and with the naive sum of
   pairwise ``ilp-ptac`` bounds;
3. co-run all three cores on the simulator and verify both bounds cover
   the observation — and report how much the joint formulation saves.

The experiment is engine-batched: the application's isolation run is one
(cacheable) job shared by every pairing, then each load pairing is an
independent job.  Beyond three cores, register an N-core
:class:`~repro.engine.scenario.ScenarioSpec` and use
:func:`repro.engine.experiment.run_spec`, which generalises this driver
to any core count.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.analysis.experiments import reference_scenario
from repro.core.ilp_ptac import IlpPtacOptions
from repro.core.wcet import contention_bound
from repro.counters.readings import TaskReadings
from repro.engine.batch import job
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.system import SystemSimulator, run_isolation
from repro.sim.timing import SimTiming
from repro.workloads.control_loop import build_control_loop
from repro.workloads.loads import build_load


@dataclasses.dataclass(frozen=True)
class ThreeCoreRow:
    """Outcome of one three-core configuration.

    Attributes:
        scenario: deployment scenario name.
        loads: the two contender levels (e.g. ``("H", "L")``).
        isolation_cycles: application's isolation time.
        joint_delta: multi-contender ILP bound.
        pairwise_sum_delta: sum of the two single-contender bounds.
        observed_cycles: application's time in the three-core co-run.
    """

    scenario: str
    loads: tuple[str, str]
    isolation_cycles: int
    joint_delta: int
    pairwise_sum_delta: int
    observed_cycles: int

    @property
    def joint_prediction(self) -> int:
        return self.isolation_cycles + self.joint_delta

    @property
    def pairwise_prediction(self) -> int:
        return self.isolation_cycles + self.pairwise_sum_delta

    @property
    def observed_slowdown(self) -> float:
        return self.observed_cycles / self.isolation_cycles

    @property
    def sound(self) -> bool:
        return self.joint_prediction >= self.observed_cycles

    @property
    def joint_saving(self) -> int:
        """Cycles the joint formulation saves over the pairwise sum."""
        return self.pairwise_sum_delta - self.joint_delta


def _rename(readings: TaskReadings, name: str) -> TaskReadings:
    return dataclasses.replace(readings, name=name)


def _app_isolation(
    scenario_name: str, scale: float, timing: SimTiming | None
) -> TaskReadings:
    """Job: the application's isolation measurement (shared by pairings)."""
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    return run_isolation(app_program, timing=timing).readings


def _three_core_pair_row(
    scenario_name: str,
    first: str,
    second: str,
    app_readings: TaskReadings,
    scale: float,
    profile: LatencyProfile,
    timing: SimTiming | None,
    options: IlpPtacOptions | None,
) -> ThreeCoreRow:
    """Job: one (load, load) pairing — bounds plus three-core co-run."""
    scenario = reference_scenario(scenario_name)
    app_program, _ = build_control_loop(scenario, scale=scale)
    isolation = app_readings.require_ccnt()

    program_0 = build_load(scenario_name, first, scale=scale)
    program_2 = build_load(scenario_name, second, scale=scale)
    readings_0 = _rename(
        run_isolation(program_0, core=0, timing=timing).readings,
        f"{first}-Load@core0",
    )
    readings_2 = _rename(
        run_isolation(program_2, core=2, timing=timing).readings,
        f"{second}-Load@core2",
    )

    joint = contention_bound(
        "ilp-ptac-multi",
        app_readings,
        profile,
        scenario,
        contenders=(readings_0, readings_2),
        options=options,
    ).delta_cycles
    pairwise = sum(
        contention_bound(
            "ilp-ptac", app_readings, profile, scenario, contender,
            options=options,
        ).delta_cycles
        for contender in (readings_0, readings_2)
    )

    observed = (
        SystemSimulator(timing)
        .run({0: program_0, 1: app_program, 2: program_2})
        .readings(1)
        .require_ccnt()
    )
    return ThreeCoreRow(
        scenario=scenario_name,
        loads=(first, second),
        isolation_cycles=isolation,
        joint_delta=joint,
        pairwise_sum_delta=pairwise,
        observed_cycles=observed,
    )


def three_core_experiment(
    scenario_name: str,
    load_pairs: Sequence[tuple[str, str]] = (("H", "L"), ("M", "M"), ("H", "H")),
    *,
    scale: float = 1 / 32,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[ThreeCoreRow]:
    """Run the three-core evaluation for several contender pairings.

    Args:
        scenario_name: ``"scenario1"`` or ``"scenario2"``.
        load_pairs: contender levels for cores 0 and 2.
        scale: workload scale (the application is the Table 6 control
            loop; the 1.6E core 0 gets the second load generator).
        profile, timing, options: the usual knobs.
        engine: optional execution engine (pairings run in parallel; the
            application's isolation measurement is computed once).
    """
    reference_scenario(scenario_name)  # validate the name before any work
    profile = profile or tc27x_latency_profile()

    app_readings = run_jobs(
        [
            job(
                _app_isolation,
                scenario_name,
                scale,
                timing,
                label=f"three-core:{scenario_name}:isolation",
            )
        ],
        engine,
    )[0]
    return run_jobs(
        [
            job(
                _three_core_pair_row,
                scenario_name,
                first,
                second,
                app_readings,
                scale,
                profile,
                timing,
                options,
                label=f"three-core:{scenario_name}:{first}+{second}",
            )
            for first, second in load_pairs
        ],
        engine,
    )
