"""Exhaustive alignment search: measuring the true worst case.

The paper motivates analytical bounds with an observability argument:
"Triggering the worst time-alignment of memory accesses is, in general,
not feasible and thus, our model relieves end users from having to
exercise that level of control" — and consequently "whether the gap
between actual measurements and model estimates corresponds to
overestimation (and to what extent) cannot be determined" on hardware.

On a simulator it *can*, for small tasks: this module sweeps the
contender's release offset (and optionally replays it cyclically so the
victim is never uncovered), records the worst observed victim time over
all alignments, and reports how much of the model's margin is real
pessimism versus unreachable-by-testing interference.  This is the
tightness instrumentation the authors explicitly could not build.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

from repro.errors import SimulationError
from repro.sim.program import Step, TaskProgram
from repro.sim.system import SystemSimulator
from repro.sim.timing import SimTiming


def delayed(program: TaskProgram, offset: int) -> TaskProgram:
    """The same program released ``offset`` cycles later."""
    if offset < 0:
        raise SimulationError("release offsets must be non-negative")
    if offset == 0:
        return program

    def factory() -> Iterator[Step]:
        yield (offset, None)
        yield from program.steps()

    return TaskProgram(
        name=f"{program.name}@+{offset}", stream_factory=factory
    )


def looped(program: TaskProgram, times: int) -> TaskProgram:
    """The program repeated back-to-back (keeps a contender active for
    the victim's whole execution)."""
    if times < 1:
        raise SimulationError("loop count must be positive")

    def factory() -> Iterator[Step]:
        for _ in range(times):
            yield from program.steps()

    return TaskProgram(name=f"{program.name}x{times}", stream_factory=factory)


@dataclasses.dataclass(frozen=True)
class AlignmentResult:
    """Outcome of an exhaustive alignment sweep.

    Attributes:
        isolation_cycles: victim time alone.
        worst_cycles: worst victim time over all tested offsets.
        worst_offset: the offset achieving it.
        per_offset: (offset, victim cycles) for every tested alignment.
    """

    isolation_cycles: int
    worst_cycles: int
    worst_offset: int
    per_offset: tuple[tuple[int, int], ...]

    @property
    def worst_slowdown(self) -> float:
        return self.worst_cycles / self.isolation_cycles

    def observed_interference(self) -> int:
        """Worst measured interference (cycles above isolation)."""
        return self.worst_cycles - self.isolation_cycles

    def pessimism_of(self, predicted_wcet: int) -> float:
        """Fraction of a model's margin not realised by *any* alignment.

        0.0 means the bound is exactly achieved by some alignment; values
        near 1.0 mean most of the margin never materialises (which may be
        model pessimism or interleavings the sweep granularity missed).
        """
        margin = predicted_wcet - self.isolation_cycles
        if margin <= 0:
            return 0.0
        return 1.0 - self.observed_interference() / margin


def alignment_sweep(
    victim: TaskProgram,
    contender: TaskProgram,
    *,
    offsets: Sequence[int] | None = None,
    max_offset: int | None = None,
    step: int = 1,
    keep_contender_busy: bool = True,
    timing: SimTiming | None = None,
) -> AlignmentResult:
    """Exhaustively search contender release offsets for the worst case.

    Args:
        victim: the task under analysis (core 1).
        contender: the interfering task (core 2).
        offsets: explicit offsets to test; default is
            ``range(0, max_offset, step)``.
        max_offset: sweep end when ``offsets`` is not given; defaults to
            the largest device service time (the paper's per-request
            alignment uncertainty is bounded by one service window, so
            sweeping one window covers every distinct relative phase of
            periodic streams).
        step: sweep granularity in cycles.
        keep_contender_busy: loop the contender so it stays active for
            the victim's entire run (otherwise late offsets let the
            victim finish uncontended).
        timing: simulator timing.
    """
    sim = SystemSimulator(timing)
    isolation = (
        sim.run({1: victim}).readings(1).require_ccnt()
    )
    if offsets is None:
        if max_offset is None:
            max_offset = max(
                device.service_random
                for device in sim.timing.devices.values()
            )
        offsets = range(0, max_offset + 1, step)
    offsets = list(offsets)
    if not offsets:
        raise SimulationError("no offsets to sweep")

    rival = contender
    if keep_contender_busy:
        contender_cycles = max(
            1, sim.run({2: contender}).readings(2).require_ccnt()
        )
        repeats = max(1, -(-2 * isolation // contender_cycles))
        rival = looped(contender, repeats)

    per_offset: list[tuple[int, int]] = []
    worst_cycles, worst_offset = 0, offsets[0]
    for offset in offsets:
        result = sim.run({1: victim, 2: delayed(rival, offset)})
        observed = result.readings(1).require_ccnt()
        per_offset.append((offset, observed))
        if observed > worst_cycles:
            worst_cycles, worst_offset = observed, offset
    return AlignmentResult(
        isolation_cycles=isolation,
        worst_cycles=worst_cycles,
        worst_offset=worst_offset,
        per_offset=tuple(per_offset),
    )
