"""Machine-readable export of experiment results (CSV / JSON).

The report module renders for humans; downstream tooling (plotting
scripts, CI dashboards, regression trackers) wants rows.  This module
flattens every experiment result type into plain dictionaries and writes
CSV or JSON, with stable column orders so diffs stay readable.

It is also where driver rows are lifted into the engine's common
:class:`~repro.engine.artifact.ExperimentArtifact` record (the
``*_artifact`` builders): one artifact type that
:func:`repro.analysis.report.render_artifact` renders and
:func:`write_artifact` serialises, whatever experiment produced it.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.experiments import AblationRow, Figure4Row, Table6Row
from repro.analysis.sweeps import DeploymentComparison, SweepPoint
from repro.analysis.three_core import ThreeCoreRow
from repro.analysis.validation import SoundnessCase
from repro.core.model import ContentionModel
from repro.core.registry import default_model_registry
from repro.engine.artifact import ExperimentArtifact, artifact
from repro.engine.experiment import ScenarioRunResult
from repro.store.diff import DIFF_COLUMNS
from repro.engine.families import FamilyRunResult
from repro.errors import ReproError


def exact_float(value: Any) -> float | None:
    """A float's round-trip-exact export form.

    Exports used to pass slowdowns and tightness through ``round(x, 6)``,
    which silently loses the low bits — a diff between an export and the
    result store could then disagree on a value that never actually
    moved.  Exported floats go through this helper instead: a plain
    Python ``float`` (numpy scalars coerced), which both the CSV writer
    (``str``) and the JSON encoder format with ``repr``-shortest digits,
    guaranteed by the language to round-trip bit-exactly — including
    negative zero, values above 2**53 and subnormals.
    """
    if value is None:
        return None
    return float(value)


def figure4_rows(rows: Sequence[Figure4Row]) -> list[dict[str, Any]]:
    """Flatten Figure 4 rows (both modes)."""
    return [
        {
            "scenario": row.scenario,
            "model": row.model,
            "load": row.load,
            "delta_cycles": row.delta_cycles,
            "slowdown": exact_float(row.slowdown),
            "paper_value": row.paper_value,
            "observed_slowdown": exact_float(row.observed_slowdown),
            "sound": row.sound,
        }
        for row in rows
    ]


def table6_rows(rows: Sequence[Table6Row]) -> list[dict[str, Any]]:
    """Flatten Table 6 comparisons (one record per counter per row)."""
    flat = []
    for row in rows:
        sim, ref = row.simulated.as_row(), row.reference.as_row()
        for counter in sim:
            flat.append(
                {
                    "scenario": row.scenario,
                    "core": row.core,
                    "task": row.task,
                    "counter": counter,
                    "simulated": sim[counter],
                    "reference": ref[counter],
                }
            )
    return flat


def ablation_rows(rows: Sequence[AblationRow]) -> list[dict[str, Any]]:
    """Flatten the information-degree ablation."""
    return [
        {
            "scenario": row.scenario,
            "load": row.load,
            "model": row.model,
            "delta_cycles": row.delta_cycles,
            "slowdown": exact_float(row.slowdown),
        }
        for row in rows
    ]


def sweep_rows(points: Sequence[SweepPoint]) -> list[dict[str, Any]]:
    """Flatten a contender-load sweep."""
    return [
        {
            "scale": point.scale,
            "delta_cycles": point.delta_cycles,
            "slowdown": exact_float(point.slowdown),
            "saturated": point.saturated,
        }
        for point in points
    ]


def deployment_rows(
    rows: Sequence[DeploymentComparison],
) -> list[dict[str, Any]]:
    """Flatten a deployment sweep."""
    return [
        {
            "scenario": row.scenario,
            "delta_cycles": row.delta_cycles,
            "slowdown": exact_float(row.slowdown),
        }
        for row in rows
    ]


def soundness_rows(cases: Sequence[SoundnessCase]) -> list[dict[str, Any]]:
    """Flatten a soundness sweep (one record per case per model)."""
    flat = []
    for case in cases:
        for model, predicted in case.predictions.items():
            flat.append(
                {
                    "case": case.name,
                    "model": model,
                    "isolation_cycles": case.isolation_cycles,
                    "observed_cycles": case.observed_cycles,
                    "predicted_wcet": predicted,
                    "sound": model not in case.violations,
                    "tightness": exact_float(case.tightness(model)),
                }
            )
    return flat


def three_core_rows(rows: Sequence[ThreeCoreRow]) -> list[dict[str, Any]]:
    """Flatten the three-core evaluation."""
    return [
        {
            "scenario": row.scenario,
            "loads": "+".join(row.loads),
            "isolation_cycles": row.isolation_cycles,
            "joint_delta": row.joint_delta,
            "pairwise_sum_delta": row.pairwise_sum_delta,
            "joint_saving": row.joint_saving,
            "observed_cycles": row.observed_cycles,
            "observed_slowdown": exact_float(row.observed_slowdown),
            "sound": row.sound,
        }
        for row in rows
    ]


def model_registry_rows(
    models: Sequence[ContentionModel] | None = None,
) -> list[dict[str, Any]]:
    """Flatten the contention-model registry (defaults to the default
    registry's contents, in registration order)."""
    listed = (
        list(models) if models is not None else list(default_model_registry())
    )
    return [
        {
            "model": model.name,
            "time_composable": model.capabilities.time_composable,
            "contenders": model.capabilities.contender_summary(),
            "needs_ilp": model.capabilities.needs_ilp,
            "dma_aware": model.capabilities.dma_aware,
            "description": model.description,
        }
        for model in listed
    ]


def family_rows(results: Sequence[FamilyRunResult]) -> list[dict[str, Any]]:
    """Flatten family member runs (grid coordinates + run outcome).

    The ``point`` column renders the member's axis assignment
    (``queue_depth=4 period=2 ...``) so one fixed column set covers
    families with arbitrary axes.
    """
    return [
        {
            "family": result.member.family,
            "member": result.member.name,
            "point": result.member.describe_point(),
            "base": result.run.base,
            "model": result.run.model,
            "dma_model": result.run.dma_model,
            "cores": result.run.core_count,
            "isolation_cycles": result.run.isolation_cycles,
            "joint_delta": result.run.joint_delta,
            "dma_delta": result.run.dma_delta,
            "observed_cycles": result.run.observed_cycles,
            "predicted_slowdown": exact_float(result.run.predicted_slowdown),
            "observed_slowdown": exact_float(result.run.observed_slowdown),
            "sound": result.run.sound,
        }
        for result in results
    ]


def scenario_run_rows(
    results: Sequence[ScenarioRunResult],
) -> list[dict[str, Any]]:
    """Flatten generic N-core scenario-spec runs.

    ``dma_delta``/``dma_model`` record the DMA bound's provenance — the
    same spec run under two DMA models must stay distinguishable in an
    export, exactly as the ``model`` column distinguishes contender
    bounds.
    """
    return [
        {
            "spec": result.spec_name,
            "base": result.base,
            "model": result.model,
            "cores": result.core_count,
            "isolation_cycles": result.isolation_cycles,
            "joint_delta": result.joint_delta,
            "pairwise_sum_delta": result.pairwise_sum_delta,
            "dma_delta": result.dma_delta,
            "dma_model": result.dma_model,
            "observed_cycles": result.observed_cycles,
            "predicted_slowdown": exact_float(result.predicted_slowdown),
            "observed_slowdown": exact_float(result.observed_slowdown),
            "sound": result.sound,
        }
        for result in results
    ]


# ----------------------------------------------------------------------
# Artifact builders: driver rows → the engine's common record
# ----------------------------------------------------------------------
_ARTIFACT_COLUMNS = {
    "figure4": (
        "scenario",
        "model",
        "load",
        "delta_cycles",
        "slowdown",
        "paper_value",
        "observed_slowdown",
        "sound",
    ),
    "table6": ("scenario", "core", "task", "counter", "simulated", "reference"),
    "ablation": ("scenario", "load", "model", "delta_cycles", "slowdown"),
    "sweep": ("scale", "delta_cycles", "slowdown", "saturated"),
    "deployment": ("scenario", "delta_cycles", "slowdown"),
    "soundness": (
        "case",
        "model",
        "isolation_cycles",
        "observed_cycles",
        "predicted_wcet",
        "sound",
        "tightness",
    ),
    "three-core": (
        "scenario",
        "loads",
        "isolation_cycles",
        "joint_delta",
        "pairwise_sum_delta",
        "joint_saving",
        "observed_cycles",
        "observed_slowdown",
        "sound",
    ),
    "models": (
        "model",
        "time_composable",
        "contenders",
        "needs_ilp",
        "dma_aware",
        "description",
    ),
    "scenario-run": (
        "spec",
        "base",
        "model",
        "cores",
        "isolation_cycles",
        "joint_delta",
        "pairwise_sum_delta",
        "dma_delta",
        "dma_model",
        "observed_cycles",
        "predicted_slowdown",
        "observed_slowdown",
        "sound",
    ),
}
# Matrix cells *are* scenario runs (same flattening), so the column
# tuples must never drift apart.
_ARTIFACT_COLUMNS["matrix"] = _ARTIFACT_COLUMNS["scenario-run"]
# Regression diffs are built by repro.store.diff (the store layer owns
# the comparison); registering the kind here keeps the artifact-column
# registry the one complete listing of export shapes.
_ARTIFACT_COLUMNS["diff"] = DIFF_COLUMNS
_ARTIFACT_COLUMNS["family"] = (
    "family",
    "member",
    "point",
    "base",
    "model",
    "dma_model",
    "cores",
    "isolation_cycles",
    "joint_delta",
    "dma_delta",
    "observed_cycles",
    "predicted_slowdown",
    "observed_slowdown",
    "sound",
)


def _build_artifact(
    kind: str, title: str, records: list[dict[str, Any]], **meta: Any
) -> ExperimentArtifact:
    return artifact(kind, title, _ARTIFACT_COLUMNS[kind], records, **meta)


def figure4_artifact(
    rows: Sequence[Figure4Row], *, title: str = "Figure 4", **meta: Any
) -> ExperimentArtifact:
    return _build_artifact("figure4", title, figure4_rows(rows), **meta)


def table6_artifact(
    rows: Sequence[Table6Row], *, title: str = "Table 6", **meta: Any
) -> ExperimentArtifact:
    return _build_artifact("table6", title, table6_rows(rows), **meta)


def ablation_artifact(
    rows: Sequence[AblationRow],
    *,
    title: str = "Information-degree ablation",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact("ablation", title, ablation_rows(rows), **meta)


def sweep_artifact(
    points: Sequence[SweepPoint],
    *,
    title: str = "Contender-load sweep",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact("sweep", title, sweep_rows(points), **meta)


def deployment_artifact(
    rows: Sequence[DeploymentComparison],
    *,
    title: str = "Deployment sweep",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact("deployment", title, deployment_rows(rows), **meta)


def soundness_artifact(
    cases: Sequence[SoundnessCase],
    *,
    title: str = "Soundness sweep",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact("soundness", title, soundness_rows(cases), **meta)


def three_core_artifact(
    rows: Sequence[ThreeCoreRow],
    *,
    title: str = "Three-core evaluation",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact("three-core", title, three_core_rows(rows), **meta)


def scenario_run_artifact(
    results: Sequence[ScenarioRunResult],
    *,
    title: str = "Scenario runs",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact(
        "scenario-run", title, scenario_run_rows(results), **meta
    )


def family_artifact(
    results: Sequence[FamilyRunResult],
    *,
    title: str = "Scenario-family run",
    **meta: Any,
) -> ExperimentArtifact:
    """One record per family member run, grid coordinates included."""
    return _build_artifact("family", title, family_rows(results), **meta)


def matrix_artifact(
    results: Sequence[ScenarioRunResult],
    *,
    title: str = "Model × scenario matrix",
    **meta: Any,
) -> ExperimentArtifact:
    """The full model × scenario comparison, one record per cell.

    Rows share the scenario-run flattening (the cells *are* scenario
    runs) under their own artifact kind, so downstream tooling can tell
    a full matrix export from a hand-picked run list.
    """
    return _build_artifact(
        "matrix", title, scenario_run_rows(results), **meta
    )


def models_artifact(
    models: Sequence[ContentionModel] | None = None,
    *,
    title: str = "Registered contention models",
    **meta: Any,
) -> ExperimentArtifact:
    return _build_artifact("models", title, model_registry_rows(models), **meta)


def to_json(records: Iterable[Mapping[str, Any]], *, indent: int = 2) -> str:
    """Serialise flattened records to a JSON array."""
    return json.dumps(list(records), indent=indent)


def to_csv(
    records: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
) -> str:
    """Serialise flattened records to CSV.

    ``columns`` fixes the header order explicitly (and permits an empty
    record set — a clean ``repro diff`` export is a header-only file);
    without it the columns come from the first record, so at least one
    is required.
    """
    records = list(records)
    if columns is None:
        if not records:
            raise ReproError("no records to export")
        columns = list(records[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns))
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


def write(
    records: Sequence[Mapping[str, Any]],
    path: str,
    *,
    format: str | None = None,
    columns: Sequence[str] | None = None,
) -> None:
    """Write records to ``path`` (format inferred from the extension)."""
    if format is None:
        if path.endswith(".json"):
            format = "json"
        elif path.endswith(".csv"):
            format = "csv"
        else:
            raise ReproError(
                f"cannot infer export format from {path!r}; pass format="
            )
    if format == "json":
        payload = to_json(records)
    elif format == "csv":
        payload = to_csv(records, columns=columns)
    else:
        raise ReproError(f"unknown export format {format!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)


def write_artifact(
    item: ExperimentArtifact, path: str, *, format: str | None = None
) -> None:
    """Write an engine artifact's records to ``path`` (CSV or JSON)."""
    write(item.record_dicts(), path, format=format, columns=item.columns)
