"""Machine-readable export of experiment results (CSV / JSON).

The report module renders for humans; downstream tooling (plotting
scripts, CI dashboards, regression trackers) wants rows.  This module
flattens every experiment result type into plain dictionaries and writes
CSV or JSON, with stable column orders so diffs stay readable.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, Mapping, Sequence

from repro.analysis.experiments import AblationRow, Figure4Row, Table6Row
from repro.analysis.sweeps import DeploymentComparison, SweepPoint
from repro.analysis.validation import SoundnessCase
from repro.errors import ReproError


def figure4_rows(rows: Sequence[Figure4Row]) -> list[dict[str, Any]]:
    """Flatten Figure 4 rows (both modes)."""
    return [
        {
            "scenario": row.scenario,
            "model": row.model,
            "load": row.load,
            "delta_cycles": row.delta_cycles,
            "slowdown": round(row.slowdown, 6),
            "paper_value": row.paper_value,
            "observed_slowdown": (
                round(row.observed_slowdown, 6)
                if row.observed_slowdown is not None
                else None
            ),
            "sound": row.sound,
        }
        for row in rows
    ]


def table6_rows(rows: Sequence[Table6Row]) -> list[dict[str, Any]]:
    """Flatten Table 6 comparisons (one record per counter per row)."""
    flat = []
    for row in rows:
        sim, ref = row.simulated.as_row(), row.reference.as_row()
        for counter in sim:
            flat.append(
                {
                    "scenario": row.scenario,
                    "core": row.core,
                    "task": row.task,
                    "counter": counter,
                    "simulated": sim[counter],
                    "reference": ref[counter],
                }
            )
    return flat


def ablation_rows(rows: Sequence[AblationRow]) -> list[dict[str, Any]]:
    """Flatten the information-degree ablation."""
    return [
        {
            "scenario": row.scenario,
            "load": row.load,
            "model": row.model,
            "delta_cycles": row.delta_cycles,
            "slowdown": round(row.slowdown, 6),
        }
        for row in rows
    ]


def sweep_rows(points: Sequence[SweepPoint]) -> list[dict[str, Any]]:
    """Flatten a contender-load sweep."""
    return [
        {
            "scale": point.scale,
            "delta_cycles": point.delta_cycles,
            "slowdown": (
                round(point.slowdown, 6) if point.slowdown is not None else None
            ),
            "saturated": point.saturated,
        }
        for point in points
    ]


def deployment_rows(
    rows: Sequence[DeploymentComparison],
) -> list[dict[str, Any]]:
    """Flatten a deployment sweep."""
    return [
        {
            "scenario": row.scenario,
            "delta_cycles": row.delta_cycles,
            "slowdown": (
                round(row.slowdown, 6) if row.slowdown is not None else None
            ),
        }
        for row in rows
    ]


def soundness_rows(cases: Sequence[SoundnessCase]) -> list[dict[str, Any]]:
    """Flatten a soundness sweep (one record per case per model)."""
    flat = []
    for case in cases:
        for model, predicted in case.predictions.items():
            flat.append(
                {
                    "case": case.name,
                    "model": model,
                    "isolation_cycles": case.isolation_cycles,
                    "observed_cycles": case.observed_cycles,
                    "predicted_wcet": predicted,
                    "sound": model not in case.violations,
                    "tightness": round(case.tightness(model), 6),
                }
            )
    return flat


def to_json(records: Iterable[Mapping[str, Any]], *, indent: int = 2) -> str:
    """Serialise flattened records to a JSON array."""
    return json.dumps(list(records), indent=indent)


def to_csv(records: Sequence[Mapping[str, Any]]) -> str:
    """Serialise flattened records to CSV (columns from the first record)."""
    records = list(records)
    if not records:
        raise ReproError("no records to export")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(records[0].keys()))
    writer.writeheader()
    writer.writerows(records)
    return buffer.getvalue()


def write(
    records: Sequence[Mapping[str, Any]],
    path: str,
    *,
    format: str | None = None,
) -> None:
    """Write records to ``path`` (format inferred from the extension)."""
    if format is None:
        if path.endswith(".json"):
            format = "json"
        elif path.endswith(".csv"):
            format = "csv"
        else:
            raise ReproError(
                f"cannot infer export format from {path!r}; pass format="
            )
    if format == "json":
        payload = to_json(records)
    elif format == "csv":
        payload = to_csv(records)
    else:
        raise ReproError(f"unknown export format {format!r}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
