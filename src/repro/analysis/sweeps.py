"""Parameter sweeps: the model as a design-space exploration tool.

Section 4.2 argues the model's flexibility "provides a powerful and
reactive method for OEM and SWPs to explore and evaluate different
scheduling allocations and deployment scenarios ... before actual
integration".  This module packages that use case:

* :func:`contender_scale_sweep` — the ILP bound as a function of the
  contender's load, generalising Figure 4's three H/M/L points into a
  curve.  The curve exposes a structural feature the paper's three points
  cannot show: the bound grows with the contender until it **saturates**
  at the fully time-composable ILP level, at the load where the
  contender's possible interference exceeds everything τa exposes.
* :func:`deployment_sweep` — the same task pair across candidate
  deployment scenarios (the integrator's layout question).
* :func:`dirty_latency_sensitivity` — how much of a Scenario 2 bound is
  attributable to the LMU's bracketed 21-cycle dirty-miss latency.

Every sweep point is an independent ILP solve, so each sweep is one
engine batch: pass ``engine=`` to fan the solves out over cores and to
cache them content-addressed (a repeated sweep, or one sharing points
with an earlier sweep, skips the solver entirely).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.core.ilp_ptac import IlpPtacOptions, ilp_ptac_bound
from repro.counters.readings import TaskReadings
from repro.engine.batch import job
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.errors import ModelError
from repro.platform.deployment import DeploymentScenario
from repro.platform.latency import LatencyProfile, tc27x_latency_profile


def _ilp_delta(
    readings_a: TaskReadings,
    readings_b: TaskReadings | None,
    profile: LatencyProfile,
    scenario: DeploymentScenario,
    options: IlpPtacOptions,
) -> int:
    """Job: one ILP-PTAC solve, reduced to its Δ-cycles bound."""
    return ilp_ptac_bound(
        readings_a, readings_b, profile, scenario, options
    ).bound.delta_cycles


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One point of a contender-load sweep.

    Attributes:
        scale: contender footprint relative to the reference contender.
        delta_cycles: ILP-PTAC bound at this load.
        slowdown: normalised prediction, when an isolation time is given.
        saturated: whether the bound equals the fully time-composable
            ceiling (contender information no longer helps).
    """

    scale: float
    delta_cycles: int
    slowdown: float | None
    saturated: bool


def contender_scale_sweep(
    readings_a: TaskReadings,
    reference_contender: TaskReadings,
    scenario: DeploymentScenario,
    *,
    scales: Sequence[float] = (0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0),
    profile: LatencyProfile | None = None,
    isolation_cycles: int | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[SweepPoint]:
    """ILP-PTAC bound as a function of contender load.

    Args:
        readings_a: the analysed task's isolation readings.
        reference_contender: the contender whose footprint is scaled.
        scenario: shared deployment scenario.
        scales: footprint multipliers (1.0 = the reference itself).
        profile: Table 2 constants.
        isolation_cycles: optional isolation time for normalised output.
        options: ILP knobs.
        engine: optional execution engine (parallel solves, caching).

    Returns:
        One :class:`SweepPoint` per scale, in order.
    """
    scales = tuple(scales)  # accept one-shot iterables
    if not scales:
        raise ModelError("at least one scale is required")
    for scale in scales:
        if scale <= 0:
            raise ModelError("scales must be positive")
    profile = profile or tc27x_latency_profile()
    options = options or IlpPtacOptions()

    # Every point of the sweep solves the same constraint template, so
    # the jobs share a warm group: pooled engine modes route them to one
    # worker whose batch solver warm-starts each solve from the last.
    warm_group = f"sweep:{scenario.name}"
    jobs = [
        job(
            _ilp_delta,
            readings_a,
            None,
            profile,
            scenario,
            dataclasses.replace(options, contender_constraints=False),
            label=f"sweep:{scenario.name}:ceiling",
            warm_group=warm_group,
        )
    ]
    for scale in scales:
        contender = (
            reference_contender
            if scale == 1.0
            else reference_contender.scaled(scale)
        )
        jobs.append(
            job(
                _ilp_delta,
                readings_a,
                contender,
                profile,
                scenario,
                options,
                label=f"sweep:{scenario.name}:x{scale:g}",
                warm_group=warm_group,
            )
        )
    results = run_jobs(jobs, engine)
    ceiling, deltas = results[0], results[1:]

    return [
        SweepPoint(
            scale=scale,
            delta_cycles=delta,
            slowdown=(
                1 + delta / isolation_cycles if isolation_cycles else None
            ),
            saturated=delta >= ceiling,
        )
        for scale, delta in zip(scales, deltas)
    ]


@dataclasses.dataclass(frozen=True)
class DeploymentComparison:
    """Bound of one candidate deployment in a deployment sweep."""

    scenario: str
    delta_cycles: int
    slowdown: float | None


def deployment_sweep(
    readings_a: TaskReadings,
    readings_b: TaskReadings,
    scenarios: Mapping[str, DeploymentScenario],
    *,
    profile: LatencyProfile | None = None,
    isolation_cycles: int | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[DeploymentComparison]:
    """Compare candidate deployments by their worst-case contention.

    Note the caveat baked into the model: the counter *semantics* of the
    readings must be compatible with each candidate scenario (e.g. a
    scenario claiming exact code counts needs P$_MISS to mean that), which
    is the integrator's responsibility — exactly as in the paper, where
    the deployment is fixed before measurement.
    """
    if not scenarios:
        raise ModelError("at least one scenario is required")
    profile = profile or tc27x_latency_profile()
    options = options or IlpPtacOptions()
    names = list(scenarios)
    deltas = run_jobs(
        [
            job(
                _ilp_delta,
                readings_a,
                readings_b,
                profile,
                scenarios[name],
                options,
                # No warm group: candidate deployments differ
                # structurally, so the jobs have no solver state to
                # share and fan out individually.
                label=f"deployment:{name}",
            )
            for name in names
        ],
        engine,
    )
    return [
        DeploymentComparison(
            scenario=name,
            delta_cycles=delta,
            slowdown=(
                1 + delta / isolation_cycles if isolation_cycles else None
            ),
        )
        for name, delta in zip(names, deltas)
    ]


@dataclasses.dataclass(frozen=True)
class DirtySensitivity:
    """Impact of the LMU dirty-miss latency on one bound.

    Attributes:
        with_dirty_cycles: bound with the 21-cycle dirty LMU latency.
        without_dirty_cycles: bound with the plain 11-cycle latency.
        share: fraction of the dirty-latency bound attributable to the
            dirty/plain difference.
    """

    with_dirty_cycles: int
    without_dirty_cycles: int

    @property
    def share(self) -> float:
        if self.with_dirty_cycles == 0:
            return 0.0
        return 1 - self.without_dirty_cycles / self.with_dirty_cycles


def dirty_latency_sensitivity(
    readings_a: TaskReadings,
    readings_b: TaskReadings,
    scenario: DeploymentScenario,
    *,
    profile: LatencyProfile | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> DirtySensitivity:
    """Quantify the cost of assuming dirty evictions on the LMU.

    Table 2 brackets the LMU's 21-cycle latency because it "applies only
    on limited scenarios"; Scenario 2 is such a scenario.  This sweep
    re-solves the ILP with the dirty possibility removed, isolating its
    contribution — useful when deciding whether write-through
    configuration (no dirty lines) buys a meaningful bound reduction.
    """
    profile = profile or tc27x_latency_profile()
    clean_scenario = dataclasses.replace(
        scenario, dirty_targets=frozenset()
    )
    options = options or IlpPtacOptions()
    # Removing the dirty latency changes coefficients, not structure, so
    # both solves share a template and warm-start off each other.
    with_dirty, without_dirty = run_jobs(
        [
            job(
                _ilp_delta,
                readings_a,
                readings_b,
                profile,
                scenario,
                options,
                label=f"dirty:{scenario.name}:with",
                warm_group=f"dirty:{scenario.name}",
            ),
            job(
                _ilp_delta,
                readings_a,
                readings_b,
                profile,
                clean_scenario,
                options,
                label=f"dirty:{scenario.name}:without",
                warm_group=f"dirty:{scenario.name}",
            ),
        ],
        engine,
    )
    return DirtySensitivity(
        with_dirty_cycles=with_dirty, without_dirty_cycles=without_dirty
    )
