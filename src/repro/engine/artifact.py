"""The common experiment artefact record.

Every driver used to return its own ad-hoc dataclass and every renderer
knew one of them; an :class:`ExperimentArtifact` is the shared currency
instead: a kind tag, a title, a column order and flat records.  The
report layer renders any artifact as a fixed-width table
(:func:`repro.analysis.report.render_artifact`) and the export layer
writes any artifact as CSV/JSON
(:func:`repro.analysis.export.write_artifact`) without knowing which
experiment produced it.

Artifacts are built *from* the drivers' row dataclasses (see the
``*_artifact`` builders in :mod:`repro.analysis.export`), so the typed
rows remain the programmatic API while rendering and serialisation are
unified here.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping, Sequence


@dataclasses.dataclass(frozen=True)
class ExperimentArtifact:
    """One rendered-or-exported experiment result.

    Attributes:
        kind: machine tag (``"figure4"``, ``"sweep"``, ``"soundness"`` ...).
        title: human heading used by the table renderer.
        columns: column order; every record must carry these keys.
        records: flat result rows (plain mappings — JSON/CSV ready).
        meta: free-form provenance (scale, backend, engine mode, ...).
    """

    kind: str
    title: str
    columns: tuple[str, ...]
    records: tuple[Mapping[str, Any], ...]
    meta: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for record in self.records:
            missing = [c for c in self.columns if c not in record]
            if missing:
                raise ValueError(
                    f"artifact {self.kind!r}: record misses columns {missing}"
                )

    def rows(self) -> list[list[Any]]:
        """Records as lists in column order (table-renderer input)."""
        return [
            [record[column] for column in self.columns]
            for record in self.records
        ]

    def record_dicts(self) -> list[dict[str, Any]]:
        """Records as plain dicts (export input)."""
        return [dict(record) for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


def artifact(
    kind: str,
    title: str,
    columns: Sequence[str],
    records: Iterable[Mapping[str, Any]],
    **meta: Any,
) -> ExperimentArtifact:
    """Ergonomic :class:`ExperimentArtifact` constructor."""
    return ExperimentArtifact(
        kind=kind,
        title=title,
        columns=tuple(columns),
        records=tuple(records),
        meta=meta,
    )
