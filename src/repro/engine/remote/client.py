"""The remote client: shard a batch across a worker pool, fault-tolerantly.

:class:`RemoteExecutor` is the engine-side half of ``mode="remote"``.  It
partitions a batch into *units* (one per ``warm_group``, single jobs
otherwise — the same partition the process pool uses, see
:func:`repro.engine.batch.warm_units`), shards the units across the
worker pool and collects results back into job order:

* **warm-group sharding** — all units of one warm group hash to the same
  worker (a stable CRC of the group tag over the live pool), so a
  sweep's structurally identical ILPs land on one worker whose
  :class:`~repro.ilp.batch.BatchSolver` stays warm across them;
  ungrouped units round-robin for maximum fan-out;
* **retry and reassignment** — a worker that refuses connections, times
  out, answers with an HTTP error or returns an undecodable/truncated
  envelope is marked dead for the executor's lifetime and every unit
  still queued on it (including the in-flight one) is redistributed over
  the survivors.  Jobs are pure, so re-running a unit whose response was
  lost is always safe — and a worker fleet sharing a disk
  :class:`~repro.engine.cache.ResultCache` will answer the rerun from
  cache anyway (the cache key travels with each job);
* **order-preserving collection** — results are written into the
  caller's result list at each job's original index, so driver output is
  byte-identical to serial execution whatever executed where;
* **local fallback** — units no surviving worker could take are returned
  to the engine, which executes them in-process (counted in
  ``EngineStats.fallbacks``), keeping batches correct even when the
  whole pool dies mid-flight.

Job-level exceptions are *not* retried: a job that raises on a healthy
worker would raise identically everywhere.  The batch drains fully and
the **lowest-indexed** failing job's exception is re-raised — the same
job whose error serial execution surfaces — so the error a caller sees
never depends on scheduling.
"""

from __future__ import annotations

import collections
import dataclasses
import http.client
import json
import threading
import urllib.request
import zlib
from typing import Any, Sequence

from repro.engine.batch import Job, warm_units
from repro.engine.remote.wire import (
    WireJob,
    decode_results,
    encode_jobs,
)
from repro.engine.remote.worker import BATCH_PATH, HEALTH_PATH
from repro.errors import EngineError, RemoteError

#: Default per-request timeout.  Generous — matrix cells simulate for
#: minutes — but finite, so a hung worker is eventually reassigned.
DEFAULT_TIMEOUT = 600.0


@dataclasses.dataclass
class RemoteStats:
    """Cumulative statistics of one :class:`RemoteExecutor`.

    Attributes:
        batches: :meth:`RemoteExecutor.execute` calls.
        units: submission units posted successfully.
        executed: jobs completed remotely (including cache answers).
        remote_cached: the subset answered from a worker's shared cache.
        reassigned: units re-queued onto survivors after a worker failure.
        failed_workers: workers marked dead (connection/timeout/protocol).
    """

    batches: int = 0
    units: int = 0
    executed: int = 0
    remote_cached: int = 0
    reassigned: int = 0
    failed_workers: int = 0


class _WorkerFailure(Exception):
    """Internal: one worker failed at the transport/protocol level."""


class RemoteExecutor:
    """Executes engine batches on a pool of ``repro worker`` processes.

    Args:
        urls: worker base URLs (e.g. ``("http://10.0.0.5:8750",)``).
            Order matters only for deterministic sharding; duplicates are
            dropped.
        timeout: per-request timeout in seconds.  A worker that exceeds
            it is treated as failed and its units are reassigned.

    A worker marked dead stays dead for the executor's lifetime (the
    engine builds one executor per engine instance, mirroring how a
    broken process pool is not rebuilt mid-engine).
    """

    def __init__(
        self, urls: Sequence[str], *, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        cleaned: list[str] = []
        for url in urls:
            url = url.strip().rstrip("/")
            if url and url not in cleaned:
                cleaned.append(url)
        if not cleaned:
            raise EngineError(
                "remote execution needs at least one worker URL; start "
                "workers with `repro worker` and pass their URLs"
            )
        if timeout <= 0:
            raise EngineError("remote timeout must be positive")
        self.urls = tuple(cleaned)
        self.timeout = timeout
        self.stats = RemoteStats()
        self._dead: set[str] = set()

    # ------------------------------------------------------------------
    def alive(self) -> list[str]:
        """Workers not yet marked dead, in sharding order."""
        return [url for url in self.urls if url not in self._dead]

    def execute(
        self,
        batch: Sequence[Job],
        pending: Sequence[int],
        results: list[Any],
    ) -> list[int]:
        """Run ``pending`` jobs remotely, writing into ``results``.

        Returns the indices no live worker could execute (empty in the
        healthy case); the caller runs those in-process.  A job-level
        exception propagates after the batch drains — always the
        lowest-indexed failing job's, the one serial mode surfaces.
        """
        workers = self.alive()
        if not workers:
            return sorted(pending)
        self.stats.batches += 1

        units = warm_units(batch, pending)
        queues: dict[str, collections.deque] = {
            url: collections.deque() for url in workers
        }
        robin = 0
        for unit in units:
            group = batch[unit[0]].warm_group
            if group is not None:
                # Stable shard: one warm group always lands on one worker.
                target = workers[
                    zlib.crc32(group.encode("utf-8")) % len(workers)
                ]
            else:
                target = workers[robin % len(workers)]
                robin += 1
            queues[target].append(unit)

        cond = threading.Condition()
        in_flight: dict[str, list[int] | None] = {u: None for u in workers}
        leftovers: list[int] = []
        job_errors: list[tuple[int, BaseException]] = []

        def drain(url: str) -> None:
            while True:
                with cond:
                    unit = None
                    while unit is None:
                        if url in self._dead:
                            return
                        if queues[url]:
                            unit = queues[url].popleft()
                            in_flight[url] = unit
                            break
                        # Idle — but another worker may still die and
                        # reassign its queue here, so only exit once no
                        # live worker holds queued or in-flight units.
                        busy = any(
                            queues[other] or in_flight[other]
                            for other in workers
                            if other != url and other not in self._dead
                        )
                        if not busy:
                            return
                        cond.wait(0.05)
                try:
                    outcomes = self._post_unit(url, batch, unit)
                except _WorkerFailure:
                    with cond:
                        self._dead.add(url)
                        self.stats.failed_workers += 1
                        in_flight[url] = None
                        orphans = [unit, *queues[url]]
                        queues[url].clear()
                        survivors = [
                            other for other in workers
                            if other not in self._dead
                        ]
                        if survivors:
                            for offset, orphan in enumerate(orphans):
                                queues[
                                    survivors[offset % len(survivors)]
                                ].append(orphan)
                            self.stats.reassigned += len(orphans)
                        else:
                            for orphan in orphans:
                                leftovers.extend(orphan)
                        cond.notify_all()
                    return
                with cond:
                    in_flight[url] = None
                    for index, outcome in zip(unit, outcomes):
                        if outcome.ok:
                            results[index] = outcome.value
                            self.stats.executed += 1
                            if outcome.cached:
                                self.stats.remote_cached += 1
                        else:
                            # Collect, don't bail: draining the batch
                            # first makes the raised error deterministic
                            # (lowest job index), not schedule-dependent.
                            job_errors.append((index, outcome.error))
                    self.stats.units += 1
                    cond.notify_all()

        threads = [
            threading.Thread(
                target=drain, args=(url,), name=f"repro-remote:{url}"
            )
            for url in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if job_errors:
            job_errors.sort(key=lambda pair: pair[0])
            raise job_errors[0][1]
        return sorted(leftovers)

    # ------------------------------------------------------------------
    def _post_unit(
        self, url: str, batch: Sequence[Job], unit: Sequence[int]
    ) -> list:
        """POST one unit to one worker; transport faults raise
        :class:`_WorkerFailure` so the caller reassigns."""
        body = encode_jobs(
            [WireJob(batch[i], _cache_key(batch[i])) for i in unit]
        )
        request = urllib.request.Request(
            url + BATCH_PATH,
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                data = response.read()
        except (OSError, http.client.HTTPException) as exc:
            # Connection refused/reset, timeouts, HTTP 4xx/5xx
            # (urllib.error.{URL,HTTP}Error are OSError subclasses).
            raise _WorkerFailure(f"{url}: {exc}") from exc
        try:
            return decode_results(data, expected=len(unit))
        except RemoteError as exc:
            # Corrupt, truncated or version-mismatched response: the
            # worker cannot be trusted with further units either.
            raise _WorkerFailure(f"{url}: {exc}") from exc


def _cache_key(item: Job) -> str | None:
    """The job's content address, or ``None`` when it has no stable one."""
    if not item.cacheable:
        return None
    try:
        return item.resolved_cache_key()
    except EngineError:
        return None


def worker_health(url: str, *, timeout: float = 5.0) -> dict:
    """Fetch one worker's ``/healthz`` document (raises on any failure)."""
    target = url.strip().rstrip("/") + HEALTH_PATH
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_for_workers(
    urls: Sequence[str], *, timeout: float = 30.0
) -> None:
    """Block until every worker answers its health check.

    Used by CI scripts and the benchmark harness after launching
    ``repro worker`` subprocesses.  Polls the whole pool each round
    under the shared :class:`~repro.service.retry.RetryPolicy` backoff
    (50 ms doubling to a 2 s cap — a fixed short interval hammers
    sockets that are still binding), and enforces one *total* deadline:
    past ``timeout`` seconds an :class:`EngineError` names every
    still-unreachable URL and its last failure, not just whichever
    worker happened to be polled when time ran out.
    """
    from repro.service.retry import RetryPolicy

    backoff = RetryPolicy(deadline=timeout).backoff()
    pending: dict[str, BaseException | None] = {url: None for url in urls}
    while True:
        for url in list(pending):
            try:
                worker_health(url, timeout=2.0)
            except (OSError, http.client.HTTPException, ValueError) as exc:
                # URLError/HTTPError are OSError; a non-JSON healthz
                # body decodes to ValueError.  Anything else is a bug.
                pending[url] = exc
            else:
                del pending[url]
        if not pending:
            return
        if not backoff.sleep():
            failures = "; ".join(
                f"{url} ({exc})" for url, exc in pending.items()
            )
            raise EngineError(
                f"{len(pending)} worker(s) not reachable after "
                f"{timeout:g}s: {failures}"
            )
