"""Remote execution backend: engine batches over a pool of HTTP workers.

``mode="remote"`` is the engine's fourth execution mode: instead of
fanning jobs out over local threads or processes, the batch is sharded
over a pool of ``repro worker`` processes — on one host or many — via a
thin, versioned JSON-over-HTTP protocol.  The moving parts:

* :mod:`~repro.engine.remote.wire` — versioned job/result envelopes
  (JSON carrying base64 pickles) with cache-key passthrough, so workers
  dedupe against a shared disk :class:`~repro.engine.cache.ResultCache`;
* :mod:`~repro.engine.remote.worker` — a single-threaded stdlib HTTP
  server executing batches sequentially, which keeps its thread-local
  batch-ILP warm-start pool alive across every request it serves;
* :mod:`~repro.engine.remote.client` — :class:`RemoteExecutor`, which
  shards units across the pool (``warm_group`` is the shard key: one
  sweep's structurally identical ILPs always land on one worker),
  retries and reassigns units when workers die, hang or corrupt, and
  collects results in job order so output stays byte-identical to
  ``mode="serial"``.

Two-terminal quickstart (one host; swap loopback for real addresses to
span machines — on trusted networks only, the protocol is
unauthenticated pickle)::

    # terminal 1 — start two workers, sharing one disk cache
    repro worker --port 8750 --cache-dir /tmp/repro-cache &
    repro worker --port 8751 --cache-dir /tmp/repro-cache

    # terminal 2 — run the model x scenario matrix on them
    repro matrix --workers http://127.0.0.1:8750,http://127.0.0.1:8751

Programmatic use mirrors the other modes::

    from repro.engine import ExperimentEngine
    engine = ExperimentEngine(
        mode="remote",
        worker_urls=("http://127.0.0.1:8750", "http://127.0.0.1:8751"),
    )
    rows = figure4_paper_mode(engine=engine)   # identical to serial

Fault tolerance: a worker that dies, hangs past the request timeout or
returns garbage is dropped from the pool and its queued units are
redistributed over the survivors; with no survivors left the engine
finishes the batch in-process.  Results are pure functions of job
inputs, so every recovery path yields the same artefacts.
"""

from repro.engine.remote.client import (
    DEFAULT_TIMEOUT,
    RemoteExecutor,
    RemoteStats,
    wait_for_workers,
    worker_health,
)
from repro.engine.remote.wire import (
    PROTOCOL_VERSION,
    WireJob,
    WireResult,
    decode_jobs,
    decode_results,
    encode_jobs,
    encode_results,
)
from repro.engine.remote.worker import (
    DEFAULT_WORKER_PORT,
    WorkerServer,
    WorkerStats,
    serve,
)

__all__ = [
    "DEFAULT_TIMEOUT",
    "DEFAULT_WORKER_PORT",
    "PROTOCOL_VERSION",
    "RemoteExecutor",
    "RemoteStats",
    "WireJob",
    "WireResult",
    "WorkerServer",
    "WorkerStats",
    "decode_jobs",
    "decode_results",
    "encode_jobs",
    "encode_results",
    "serve",
    "wait_for_workers",
    "worker_health",
]
