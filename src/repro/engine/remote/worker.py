"""The remote worker: a stdlib HTTP server that executes engine jobs.

One :class:`WorkerServer` is one execution slot.  It is deliberately
**single-threaded** (plain :class:`http.server.HTTPServer`, no thread per
request): batches execute sequentially on the serving thread, so the
thread-local batch-ILP warm-start pool
(:func:`repro.ilp.batch.default_batch_solver`) accumulates across every
request the worker ever serves — the whole point of routing one
``warm_group`` to one worker — and a busy worker exerts natural
backpressure instead of oversubscribing its host.

Endpoints:

* ``POST /batch`` — execute a :func:`~repro.engine.remote.wire.decode_jobs`
  envelope, answering with the order-aligned result envelope.  Jobs whose
  cache key hits the worker's (optionally disk-backed, fleet-shared)
  :class:`~repro.engine.cache.ResultCache` are answered without executing.
  Wire-format violations return 400; unexpected worker faults return 500
  (the client treats both as a worker failure and reassigns the unit).
* ``GET /healthz`` — protocol version plus execution statistics (batches
  served, jobs executed, shared-cache hits, warm-solver reuses), used by
  clients and CI to wait for worker readiness and by the analysis
  service to surface per-worker counters in ``repro jobs --workers``.

Run one from a shell with ``repro worker`` (see the package docstring for
the two-terminal quickstart) or in-process via ``WorkerServer().start()``
— the test-suite's fault-injection harness subclasses
:meth:`WorkerServer.handle_batch` to simulate dying, hanging and
corrupting workers.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

from repro.engine.cache import ResultCache, is_miss
from repro.engine.remote.wire import (
    PROTOCOL_VERSION,
    WireJob,
    WireResult,
    decode_jobs,
    encode_results,
)
from repro.errors import RemoteError

#: Default TCP port of ``repro worker`` (port 0 binds an ephemeral one).
DEFAULT_WORKER_PORT = 8750

#: URL paths of the two endpoints.
BATCH_PATH = "/batch"
HEALTH_PATH = "/healthz"


@dataclasses.dataclass
class WorkerStats:
    """Cumulative statistics of one worker instance.

    Shared by the push server below and the service's pull worker
    (:class:`repro.service.pull.PullWorker`); the full record is exposed
    on ``GET /healthz`` and shipped in service heartbeats, so
    ``repro jobs --workers`` renders the same counters either way.

    Attributes:
        batches: batch requests (push) / leased units (pull) served.
        executed: jobs actually run.
        cached: jobs answered from the shared result cache.
        warm_reuses: ILP solves that reused the worker's warm-start pool
            (the thread-local batch solver's ``warm_hits`` — the counter
            warm-group sharding exists to maximise).
        failures: requests that failed at the protocol or worker level.
    """

    batches: int = 0
    executed: int = 0
    cached: int = 0
    warm_reuses: int = 0
    failures: int = 0


def execute_wire_job(
    item: WireJob, cache: ResultCache | None, stats: WorkerStats
) -> WireResult:
    """Run one wire job, consulting the shared result cache first.

    The single execution path both worker flavours share: the push
    server's ``POST /batch`` handler and the service pull worker's lease
    loop call this per job, so cache dedupe and statistics behave
    identically whichever direction the work travelled.
    """
    key = item.cache_key if item.job.cacheable else None
    if cache is not None and key is not None:
        value = cache.lookup(key)
        if not is_miss(value):
            stats.cached += 1
            return WireResult(ok=True, value=value, cached=True)
    try:
        value = item.job.run()
    except Exception as exc:  # repro: ignore[broad-except] the job's failure is the result — shipped as data, re-raised client-side
        return WireResult(ok=False, error=exc)
    stats.executed += 1
    if cache is not None and key is not None:
        cache.store(key, value)
    return WireResult(ok=True, value=value)


def snapshot_warm_reuses(stats: WorkerStats) -> None:
    """Refresh ``stats.warm_reuses`` from the calling thread's solver.

    Must run on the thread that executes jobs — the batch solver pool is
    thread-local, which is exactly why one warm group stays on one
    worker.
    """
    from repro.ilp.batch import default_batch_solver

    stats.warm_reuses = default_batch_solver().stats.warm_hits


class _WorkerHandler(BaseHTTPRequestHandler):
    """Request handler delegating all real work to the server object."""

    server: "WorkerServer"

    def log_message(self, format: str, *args: object) -> None:
        """Quiet per-request logging (the engine narrates progress)."""

    def _send(self, code: int, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path != HEALTH_PATH:
            self._send(404, b'{"error":"not found"}')
            return
        document = {
            "protocol": PROTOCOL_VERSION,
            "status": "ok",
            "pid": os.getpid(),
            **dataclasses.asdict(self.server.stats),
        }
        self._send(200, json.dumps(document).encode("utf-8"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != BATCH_PATH:
            self._send(404, b'{"error":"not found"}')
            return
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        try:
            response = self.server.handle_batch(body)
        except RemoteError as exc:
            self.server.stats.failures += 1
            self._send(400, json.dumps({"error": str(exc)}).encode("utf-8"))
            return
        except Exception as exc:  # repro: ignore[broad-except] the 500 boundary: a worker fault answers the client, which reassigns
            self.server.stats.failures += 1
            message = f"{type(exc).__name__}: {exc}"
            self._send(500, json.dumps({"error": message}).encode("utf-8"))
            return
        self._send(200, response)


class WorkerServer(HTTPServer):
    """One remote execution slot over HTTP.

    Args:
        host: bind address (default loopback; bind non-loopback only on
            trusted networks — the wire format is unauthenticated pickle).
        port: TCP port; ``0`` binds an ephemeral one (read :attr:`url`).
        cache: optional :class:`ResultCache`.  Construct it with
            ``directory=`` pointing at a shared path and a whole worker
            fleet dedupes against one disk cache: a job any worker (or
            any past run) completed is answered without re-executing.
    """

    allow_reuse_address = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache: ResultCache | None = None,
    ) -> None:
        super().__init__((host, port), _WorkerHandler)
        self.cache = cache
        self.stats = WorkerStats()
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """The base URL clients address this worker under."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def handle_error(self, request, client_address) -> None:
        """Quiet client disconnects; keep real faults visible.

        A fault-tolerant client abandons requests that exceed its
        timeout, so the eventual write to its closed socket is expected
        operation, not a worker error worth a traceback.
        """
        import sys

        exc = sys.exc_info()[1]  # sys.exception() needs 3.11; CI runs 3.10
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)

    # ------------------------------------------------------------------
    def handle_batch(self, body: bytes) -> bytes:
        """Decode, execute and re-encode one job batch.

        The fault-injection test harness overrides this to simulate
        worker failure modes; the override point sits *inside* the HTTP
        plumbing, so injected faults exercise the real transport paths.
        """
        items = decode_jobs(body)
        self.stats.batches += 1
        results = [self.execute_job(item) for item in items]
        snapshot_warm_reuses(self.stats)
        return encode_results(results)

    def execute_job(self, item: WireJob) -> WireResult:
        """Run one job, consulting the shared result cache first."""
        return execute_wire_job(item, self.cache, self.stats)

    # ------------------------------------------------------------------
    def start(self) -> "WorkerServer":
        """Serve in a daemon thread (in-process workers for tests/benchmarks)."""
        thread = threading.Thread(
            target=self.serve_forever,
            name=f"repro-worker:{self.url}",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        """Stop serving and release the socket."""
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_WORKER_PORT,
    *,
    cache_dir: str | os.PathLike | None = None,
) -> None:
    """Run one worker in the foreground (the ``repro worker`` command).

    Prints the listening URL (the line scripts and the benchmark harness
    parse to discover ephemeral ports), then serves until interrupted.
    """
    cache = ResultCache(directory=cache_dir) if cache_dir else None
    server = WorkerServer(host, port, cache=cache)
    print(f"repro worker listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
