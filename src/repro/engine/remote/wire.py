"""Versioned job/result serialization of the remote execution backend.

The remote protocol is JSON-over-HTTP: every request and response body is
a JSON *envelope* carrying a ``protocol`` version, a ``kind`` tag and a
list of items.  Engine jobs and their results are arbitrary picklable
Python objects (dataclass records, enums, numpy-free plain data), so each
item's payload is a pickle, base64-armoured inside the JSON document.
The envelope keeps the parts a worker must read *without* unpickling —
the protocol version, the job labels, the content-addressed cache keys —
as plain JSON fields.

Versioning: both sides speak exactly :data:`PROTOCOL_VERSION`.  A worker
(or client) receiving any other version rejects the envelope with a
:class:`~repro.errors.RemoteError` naming both versions, so mixed-version
pools fail loudly instead of computing garbage.

Cache-key passthrough: the client resolves each job's content-addressed
cache key once (see :meth:`~repro.engine.batch.Job.resolved_cache_key`)
and ships it alongside the pickle.  A worker holding a shared disk
:class:`~repro.engine.cache.ResultCache` answers repeated keys from the
cache without re-executing — and without recomputing the hash — which is
what lets a worker fleet dedupe against one cache directory.

Security note: payloads are pickles, and unpickling executes code.  Run
workers only on hosts and networks where every client is trusted — the
protocol authenticates nothing (same trust model as a shared SSH box).
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
from typing import Any, Sequence

from repro.engine.batch import Job
from repro.errors import RemoteError

#: Version of the JSON-over-HTTP envelope this library speaks.  Bump on
#: any incompatible change to the envelope or payload conventions.
PROTOCOL_VERSION = 1

_JOBS_KIND = "job-batch"
_RESULTS_KIND = "result-batch"


@dataclasses.dataclass(frozen=True)
class WireJob:
    """One engine job as shipped to a worker.

    Attributes:
        job: the :class:`~repro.engine.batch.Job` to execute.
        cache_key: the client-resolved content address of the job's
            result (``None`` for uncacheable jobs), so a worker with a
            shared disk cache can dedupe without recomputing the hash.
    """

    job: Job
    cache_key: str | None = None


@dataclasses.dataclass(frozen=True)
class WireResult:
    """One job outcome as shipped back from a worker.

    Attributes:
        ok: whether the job completed; ``False`` means the job function
            itself raised (worker-infrastructure failures never produce a
            :class:`WireResult` — they surface as transport errors).
        value: the job's return value (``ok`` results only).
        error: the exception the job raised (``not ok`` results only).
        cached: the value was answered from the worker's shared result
            cache instead of being executed.
    """

    ok: bool
    value: Any = None
    error: BaseException | None = None
    cached: bool = False


def _pack(obj: Any) -> str:
    """Pickle + base64 one payload object into a JSON-safe string."""
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii")


def _unpack(text: Any) -> Any:
    """Invert :func:`_pack`; malformed payloads raise :class:`RemoteError`."""
    if not isinstance(text, str):
        raise RemoteError(
            f"wire payload must be a base64 string, got {type(text).__name__}"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
        return pickle.loads(raw)
    except RemoteError:
        raise
    except Exception as exc:
        raise RemoteError(f"undecodable wire payload: {exc}") from exc


def _envelope(data: bytes, kind: str) -> dict:
    """Parse and validate one envelope, checking version and kind."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RemoteError(f"undecodable wire envelope: {exc}") from exc
    if not isinstance(document, dict):
        raise RemoteError(
            f"wire envelope must be a JSON object, got "
            f"{type(document).__name__}"
        )
    version = document.get("protocol")
    if version != PROTOCOL_VERSION:
        raise RemoteError(
            f"unsupported remote protocol version {version!r}: this side "
            f"speaks version {PROTOCOL_VERSION}; upgrade the older of "
            "client and worker so both run the same repro release"
        )
    if document.get("kind") != kind:
        raise RemoteError(
            f"expected a {kind!r} envelope, got {document.get('kind')!r}"
        )
    return document


def encode_jobs(items: Sequence[WireJob]) -> bytes:
    """Serialise one job batch into a request body."""
    payload = {
        "protocol": PROTOCOL_VERSION,
        "kind": _JOBS_KIND,
        "jobs": [
            {
                "label": item.job.describe(),
                "cache_key": item.cache_key,
                "payload": _pack(item.job),
            }
            for item in items
        ],
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_jobs(data: bytes) -> list[WireJob]:
    """Parse a request body back into :class:`WireJob` items."""
    document = _envelope(data, _JOBS_KIND)
    entries = document.get("jobs")
    if not isinstance(entries, list):
        raise RemoteError("job envelope carries no 'jobs' list")
    items: list[WireJob] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise RemoteError("job entry must be a JSON object")
        item = _unpack(entry.get("payload"))
        if not isinstance(item, Job):
            raise RemoteError(
                f"job payload decoded to {type(item).__name__}, not a Job"
            )
        key = entry.get("cache_key")
        if key is not None and not isinstance(key, str):
            raise RemoteError("job cache_key must be a string or null")
        items.append(WireJob(job=item, cache_key=key))
    return items


def encode_results(items: Sequence[WireResult]) -> bytes:
    """Serialise one result batch into a response body.

    An unpicklable *value* raises (pickling is the same contract
    process-pool mode imposes on results); an unpicklable *exception*
    degrades to its type name and message, which the client rebuilds as
    a :class:`RemoteError`.
    """
    encoded: list[dict] = []
    for item in items:
        if item.ok:
            encoded.append(
                {
                    "ok": True,
                    "cached": item.cached,
                    "payload": _pack(item.value),
                }
            )
        else:
            entry: dict = {
                "ok": False,
                "error_type": type(item.error).__name__,
                "error_message": str(item.error),
            }
            try:
                entry["payload"] = _pack(item.error)
            except Exception:
                entry["payload"] = None
            encoded.append(entry)
    payload = {
        "protocol": PROTOCOL_VERSION,
        "kind": _RESULTS_KIND,
        "results": encoded,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_results(
    data: bytes, expected: int | None = None
) -> list[WireResult]:
    """Parse a response body back into :class:`WireResult` items.

    Args:
        data: the response body.
        expected: when given, the number of results the batch must carry;
            a mismatch (truncated or padded response) raises
            :class:`RemoteError` so the client treats the worker as
            failed rather than mis-aligning results with jobs.
    """
    document = _envelope(data, _RESULTS_KIND)
    entries = document.get("results")
    if not isinstance(entries, list):
        raise RemoteError("result envelope carries no 'results' list")
    if expected is not None and len(entries) != expected:
        raise RemoteError(
            f"worker returned {len(entries)} results for {expected} jobs"
        )
    items: list[WireResult] = []
    for entry in entries:
        if not isinstance(entry, dict) or "ok" not in entry:
            raise RemoteError("result entry must be a JSON object with 'ok'")
        if entry["ok"]:
            items.append(
                WireResult(
                    ok=True,
                    value=_unpack(entry.get("payload")),
                    cached=bool(entry.get("cached")),
                )
            )
        else:
            error: BaseException | None = None
            payload = entry.get("payload")
            if payload is not None:
                try:
                    decoded = _unpack(payload)
                except RemoteError:
                    decoded = None
                if isinstance(decoded, BaseException):
                    error = decoded
            if error is None:
                error = RemoteError(
                    "remote job failed with "
                    f"{entry.get('error_type')}: {entry.get('error_message')}"
                )
            items.append(WireResult(ok=False, error=error))
    return items
