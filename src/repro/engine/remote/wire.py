"""Versioned job/result serialization of the remote execution backend.

The remote protocol is JSON-over-HTTP: every request and response body is
a JSON *envelope* carrying a ``protocol`` version, a ``kind`` tag and a
list of items.  Engine jobs and their results are arbitrary picklable
Python objects (dataclass records, enums, numpy-free plain data), so each
item's payload is a pickle, base64-armoured inside the JSON document.
The envelope keeps the parts a worker must read *without* unpickling —
the protocol version, the job labels, the content-addressed cache keys —
as plain JSON fields.

Two backends share this format.  The original push path (``mode="remote"``)
speaks job-batch/result-batch envelopes directly between client and
worker.  The analysis service (:mod:`repro.service`) adds coordinator
envelopes on top: job submission (``job-submit``/``job-accepted``),
worker registration (``worker-register``/``worker-registered``), unit
leasing (``lease-request``/``lease-grant``), progress
(``heartbeat``/``job-status``) and result upload/download
(``unit-result``/``job-results``).  All of them reuse the same job/result
*entry* encoding — :func:`encode_job_entries` / :func:`encode_result_entries`
— so a job pickled for a push worker is byte-identical on the queue.

Versioning: both sides speak exactly :data:`PROTOCOL_VERSION`.  A worker
(or client) receiving any other version rejects the envelope with a
:class:`~repro.errors.RemoteError` naming both versions, so mixed-version
pools fail loudly instead of computing garbage.

Cache-key passthrough: the client resolves each job's content-addressed
cache key once (see :meth:`~repro.engine.batch.Job.resolved_cache_key`)
and ships it alongside the pickle.  A worker holding a shared disk
:class:`~repro.engine.cache.ResultCache` answers repeated keys from the
cache without re-executing — and without recomputing the hash — which is
what lets a worker fleet dedupe against one cache directory.

Security note: payloads are pickles, and unpickling executes code.  Run
workers only on hosts and networks where every client is trusted — the
protocol authenticates nothing (same trust model as a shared SSH box).
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
from typing import Any, Sequence

from repro.engine.batch import Job
from repro.errors import RemoteError

#: Version of the JSON-over-HTTP envelope this library speaks.  Bump on
#: any incompatible change to the envelope or payload conventions.
#: Version 2 added the analysis-service envelopes (submission,
#: registration, leasing, progress, result up/download).
PROTOCOL_VERSION = 2

_JOBS_KIND = "job-batch"
_RESULTS_KIND = "result-batch"
_SUBMIT_KIND = "job-submit"
_LEASE_KIND = "lease-grant"
_UNIT_RESULT_KIND = "unit-result"
_JOB_RESULTS_KIND = "job-results"


@dataclasses.dataclass(frozen=True)
class WireJob:
    """One engine job as shipped to a worker.

    Attributes:
        job: the :class:`~repro.engine.batch.Job` to execute.
        cache_key: the client-resolved content address of the job's
            result (``None`` for uncacheable jobs), so a worker with a
            shared disk cache can dedupe without recomputing the hash.
    """

    job: Job
    cache_key: str | None = None


@dataclasses.dataclass(frozen=True)
class WireResult:
    """One job outcome as shipped back from a worker.

    Attributes:
        ok: whether the job completed; ``False`` means the job function
            itself raised (worker-infrastructure failures never produce a
            :class:`WireResult` — they surface as transport errors).
        value: the job's return value (``ok`` results only).
        error: the exception the job raised (``not ok`` results only).
        cached: the value was answered from the worker's shared result
            cache instead of being executed.
    """

    ok: bool
    value: Any = None
    error: BaseException | None = None
    cached: bool = False


def _pack(obj: Any) -> str:
    """Pickle + base64 one payload object into a JSON-safe string."""
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii")


def _unpack(text: Any) -> Any:
    """Invert :func:`_pack`; malformed payloads raise :class:`RemoteError`."""
    if not isinstance(text, str):
        raise RemoteError(
            f"wire payload must be a base64 string, got {type(text).__name__}"
        )
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
        return pickle.loads(raw)
    except RemoteError:
        raise
    except Exception as exc:
        raise RemoteError(f"undecodable wire payload: {exc}") from exc


def _envelope(data: bytes, kind: str) -> dict:
    """Parse and validate one envelope, checking version and kind."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RemoteError(f"undecodable wire envelope: {exc}") from exc
    if not isinstance(document, dict):
        raise RemoteError(
            f"wire envelope must be a JSON object, got "
            f"{type(document).__name__}"
        )
    version = document.get("protocol")
    if version != PROTOCOL_VERSION:
        raise RemoteError(
            f"unsupported remote protocol version {version!r}: this side "
            f"speaks version {PROTOCOL_VERSION}; upgrade the older of "
            "client and worker so both run the same repro release"
        )
    if document.get("kind") != kind:
        raise RemoteError(
            f"expected a {kind!r} envelope, got {document.get('kind')!r}"
        )
    return document


def encode_job_entries(items: Sequence[WireJob]) -> list[dict]:
    """Serialise jobs into the entry dicts every job-carrying envelope
    shares (``job-batch``, ``job-submit``, ``lease-grant``)."""
    return [
        {
            "label": item.job.describe(),
            "cache_key": item.cache_key,
            "payload": _pack(item.job),
        }
        for item in items
    ]


def decode_job_entries(entries: Any) -> list[WireJob]:
    """Invert :func:`encode_job_entries`, validating every entry."""
    if not isinstance(entries, list):
        raise RemoteError("job envelope carries no job entry list")
    items: list[WireJob] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise RemoteError("job entry must be a JSON object")
        item = _unpack(entry.get("payload"))
        if not isinstance(item, Job):
            raise RemoteError(
                f"job payload decoded to {type(item).__name__}, not a Job"
            )
        key = entry.get("cache_key")
        if key is not None and not isinstance(key, str):
            raise RemoteError("job cache_key must be a string or null")
        items.append(WireJob(job=item, cache_key=key))
    return items


def encode_result_entries(items: Sequence[WireResult]) -> list[dict]:
    """Serialise results into the entry dicts every result-carrying
    envelope shares (``result-batch``, ``unit-result``, ``job-results``).

    An unpicklable *value* raises (pickling is the same contract
    process-pool mode imposes on results); an unpicklable *exception*
    degrades to its type name and message, which the client rebuilds as
    a :class:`RemoteError`.
    """
    encoded: list[dict] = []
    for item in items:
        if item.ok:
            encoded.append(
                {
                    "ok": True,
                    "cached": item.cached,
                    "payload": _pack(item.value),
                }
            )
        else:
            entry: dict = {
                "ok": False,
                "error_type": type(item.error).__name__,
                "error_message": str(item.error),
            }
            try:
                entry["payload"] = _pack(item.error)
            except Exception:  # repro: ignore[broad-except] pickling an arbitrary user exception can raise anything; fall back to message-only
                entry["payload"] = None
            encoded.append(entry)
    return encoded


def decode_result_entries(
    entries: Any, expected: int | None = None
) -> list[WireResult]:
    """Invert :func:`encode_result_entries`, validating count and shape."""
    if not isinstance(entries, list):
        raise RemoteError("result envelope carries no result entry list")
    if expected is not None and len(entries) != expected:
        raise RemoteError(
            f"worker returned {len(entries)} results for {expected} jobs"
        )
    items: list[WireResult] = []
    for entry in entries:
        if not isinstance(entry, dict) or "ok" not in entry:
            raise RemoteError("result entry must be a JSON object with 'ok'")
        if entry["ok"]:
            items.append(
                WireResult(
                    ok=True,
                    value=_unpack(entry.get("payload")),
                    cached=bool(entry.get("cached")),
                )
            )
        else:
            error: BaseException | None = None
            payload = entry.get("payload")
            if payload is not None:
                try:
                    decoded = _unpack(payload)
                except RemoteError:
                    decoded = None
                if isinstance(decoded, BaseException):
                    error = decoded
            if error is None:
                error = RemoteError(
                    "remote job failed with "
                    f"{entry.get('error_type')}: {entry.get('error_message')}"
                )
            items.append(WireResult(ok=False, error=error))
    return items


def encode_jobs(items: Sequence[WireJob]) -> bytes:
    """Serialise one job batch into a request body."""
    return encode_document(_JOBS_KIND, {"jobs": encode_job_entries(items)})


def decode_jobs(data: bytes) -> list[WireJob]:
    """Parse a request body back into :class:`WireJob` items."""
    document = _envelope(data, _JOBS_KIND)
    return decode_job_entries(document.get("jobs"))


def encode_results(items: Sequence[WireResult]) -> bytes:
    """Serialise one result batch into a response body."""
    return encode_document(
        _RESULTS_KIND, {"results": encode_result_entries(items)}
    )


def decode_results(
    data: bytes, expected: int | None = None
) -> list[WireResult]:
    """Parse a response body back into :class:`WireResult` items.

    Args:
        data: the response body.
        expected: when given, the number of results the batch must carry;
            a mismatch (truncated or padded response) raises
            :class:`RemoteError` so the client treats the worker as
            failed rather than mis-aligning results with jobs.
    """
    document = _envelope(data, _RESULTS_KIND)
    return decode_result_entries(document.get("results"), expected)


# ----------------------------------------------------------------------
# Analysis-service envelopes (coordinator <-> client, coordinator <->
# pull worker).  Registration, heartbeat and progress documents carry
# plain JSON only; submission, leases and results embed the shared
# job/result entry encoding above.
# ----------------------------------------------------------------------
def encode_document(kind: str, fields: dict) -> bytes:
    """Serialise one versioned envelope carrying plain-JSON fields."""
    payload = {"protocol": PROTOCOL_VERSION, "kind": kind, **fields}
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_document(data: bytes, kind: str) -> dict:
    """Parse and version-check one envelope of the given kind."""
    return _envelope(data, kind)


def encode_submit(
    items: Sequence[WireJob], *, label: str = "", meta: dict | None = None
) -> bytes:
    """Serialise one job submission (client → coordinator)."""
    return encode_document(
        _SUBMIT_KIND,
        {
            "label": label,
            "meta": meta or {},
            "jobs": encode_job_entries(items),
        },
    )


def decode_submit(data: bytes) -> tuple[list[WireJob], str, dict]:
    """Parse a submission into ``(jobs, label, meta)``."""
    document = _envelope(data, _SUBMIT_KIND)
    meta = document.get("meta") or {}
    if not isinstance(meta, dict):
        raise RemoteError("submit meta must be a JSON object")
    label = document.get("label") or ""
    if not isinstance(label, str):
        raise RemoteError("submit label must be a string")
    return decode_job_entries(document.get("jobs")), label, meta


def encode_lease(grant: dict | None) -> bytes:
    """Serialise one lease response (coordinator → worker).

    ``grant`` is ``None`` for an empty queue; the special field
    ``unregistered`` tells a worker the coordinator does not know its id
    (e.g. after a coordinator restart) and it must re-register.  A real
    grant carries ``job_id``/``unit``/``fence``/``lease_seconds`` plus
    the unit's job entries (already-encoded dicts, straight from the
    queue store).
    """
    if grant is None:
        return encode_document(_LEASE_KIND, {"empty": True})
    return encode_document(_LEASE_KIND, {"empty": False, **grant})


def decode_lease(data: bytes) -> dict | None:
    """Parse a lease response; ``None`` means the queue was empty."""
    document = _envelope(data, _LEASE_KIND)
    if document.get("unregistered"):
        return {"unregistered": True}
    if document.get("empty"):
        return None
    grant = {
        "job_id": document.get("job_id"),
        "unit": document.get("unit"),
        "fence": document.get("fence"),
        "lease_seconds": document.get("lease_seconds"),
        "jobs": decode_job_entries(document.get("jobs")),
    }
    if not isinstance(grant["job_id"], str):
        raise RemoteError("lease grant carries no job_id")
    if not isinstance(grant["unit"], int) or not isinstance(
        grant["fence"], int
    ):
        raise RemoteError("lease grant needs integer unit and fence")
    return grant


def encode_unit_result(
    *,
    worker_id: str,
    job_id: str,
    unit: int,
    fence: int,
    results: Sequence[WireResult],
) -> bytes:
    """Serialise one completed unit (worker → coordinator)."""
    return encode_document(
        _UNIT_RESULT_KIND,
        {
            "worker_id": worker_id,
            "job_id": job_id,
            "unit": unit,
            "fence": fence,
            "results": encode_result_entries(results),
        },
    )


def decode_unit_result(data: bytes) -> dict:
    """Parse a unit completion; result entries stay *encoded* (the
    coordinator persists them verbatim, unpickling only for its cache)."""
    document = _envelope(data, _UNIT_RESULT_KIND)
    for field in ("worker_id", "job_id"):
        if not isinstance(document.get(field), str):
            raise RemoteError(f"unit result carries no {field}")
    for field in ("unit", "fence"):
        if not isinstance(document.get(field), int):
            raise RemoteError(f"unit result needs an integer {field}")
    if not isinstance(document.get("results"), list):
        raise RemoteError("unit result carries no result entries")
    return document


def encode_job_results(
    job_id: str,
    *,
    complete: bool,
    units: Sequence[dict],
    cancelled: bool = False,
) -> bytes:
    """Serialise a job's collected results (coordinator → client).

    ``units`` carry ``indices`` (positions in the submitted batch) and
    already-encoded result entries, straight from the queue store.
    ``cancelled`` marks a job that will never complete because it was
    cancelled; the done units it carries are still valid results.
    """
    return encode_document(
        _JOB_RESULTS_KIND,
        {
            "job_id": job_id,
            "complete": complete,
            "cancelled": cancelled,
            "units": list(units),
        },
    )


def decode_job_results(
    data: bytes,
) -> tuple[bool, bool, list[tuple[list[int], list[WireResult]]]]:
    """Parse a job's results into
    ``(complete, cancelled, [(indices, results)])``."""
    document = _envelope(data, _JOB_RESULTS_KIND)
    units = document.get("units")
    if not isinstance(units, list):
        raise RemoteError("job results carry no 'units' list")
    decoded: list[tuple[list[int], list[WireResult]]] = []
    for entry in units:
        if not isinstance(entry, dict):
            raise RemoteError("job result unit must be a JSON object")
        indices = entry.get("indices")
        if not isinstance(indices, list) or not all(
            isinstance(index, int) for index in indices
        ):
            raise RemoteError("job result unit needs integer indices")
        results = decode_result_entries(
            entry.get("results"), expected=len(indices)
        )
        decoded.append((list(indices), results))
    return (
        bool(document.get("complete")),
        bool(document.get("cancelled")),
        decoded,
    )


def validate_result_entries(entries: Any, expected: int | None) -> str | None:
    """Shape-check encoded result entries *without unpickling them*.

    The coordinator persists completion payloads verbatim and never
    unpickles queue traffic, so this is its entire defence against a
    worker (or a fault-injecting network) uploading garbage: the entry
    list must be well-formed — the right count, each entry a dict with a
    boolean ``ok`` and a base64-decodable payload (ok entries must carry
    one; failed entries may carry ``None``).  Returns a human-readable
    defect description, or ``None`` when the entries look sound.  A
    worker that repeatedly fails this check gets quarantined.
    """
    if not isinstance(entries, list):
        return "result entries are not a list"
    if expected is not None and len(entries) != expected:
        return f"{len(entries)} result entries for {expected} jobs"
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict) or not isinstance(
            entry.get("ok"), bool
        ):
            return f"entry {position} is not an object with boolean 'ok'"
        payload = entry.get("payload")
        if payload is None:
            if entry["ok"]:
                return f"ok entry {position} carries no payload"
            continue
        if not isinstance(payload, str):
            return f"entry {position} payload is not a string"
        try:
            base64.b64decode(payload.encode("ascii"), validate=True)
        except ValueError as exc:
            # binascii.Error and UnicodeEncodeError are both ValueError.
            return f"entry {position} payload is not base64: {exc}"
    return None
