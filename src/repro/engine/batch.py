"""Jobs and batches: the engine's unit of schedulable work.

A :class:`Job` is one independent ``(function, arguments)`` pair — in
practice a ``(scenario, workload, model)`` combination such as "solve the
ILP-PTAC bound for scenario 1 against the H-Load readings" or "simulate
scenario 2 at scale 1/16".  Jobs carry everything needed to

* execute anywhere (the function must be module-level so process workers
  can import it; arguments should be plain data),
* cache the result (a stable content hash of function identity plus
  arguments, see :mod:`repro.engine.cache`), and
* report progress (a human-readable label).

Experiment drivers build flat lists of jobs and hand them to
:class:`~repro.engine.runner.ExperimentEngine`, which preserves order: the
result list always aligns with the job list, whatever executed where.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Sequence

from repro.engine.cache import stable_hash
from repro.errors import EngineError


@dataclasses.dataclass(frozen=True)
class Job:
    """One independent unit of engine work.

    Attributes:
        fn: the function to call.  Must be importable (module-level) for
            process-pool execution and stable cache keys.
        args: positional arguments.
        kwargs: keyword arguments (stored as a sorted item tuple so the
            job itself stays hashable and picklable).
        label: short human-readable description for reports/debugging.
        cache_key: explicit cache key; when ``None`` the key is derived
            from the function's dotted name and the arguments.
        cacheable: opt out of result caching (for jobs whose arguments
            carry closures or other non-addressable state).
        warm_group: jobs sharing a warm group are executed *sequentially
            on one worker* by the pooled engine modes, so per-worker
            solver state (the batch ILP solver's warm-start pool, keyed
            by constraint-structure hash) accumulates across them.
            Drivers set it to a proxy of the constraint structure —
            typically ``scenario:model`` — for jobs whose solves share a
            template.  Purely a performance hint: results are identical
            with or without it, whatever the engine mode.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()
    label: str = ""
    cache_key: str | None = None
    cacheable: bool = True
    warm_group: str | None = None

    def resolved_cache_key(self) -> str:
        """The content-address of this job's result."""
        if self.cache_key is not None:
            return self.cache_key
        return stable_hash((self.fn, self.args, self.kwargs))

    def run(self) -> Any:
        """Execute the job in the current process."""
        return self.fn(*self.args, **dict(self.kwargs))

    def describe(self) -> str:
        return self.label or getattr(self.fn, "__qualname__", repr(self.fn))


def job(
    fn: Callable[..., Any],
    *args: Any,
    label: str = "",
    cache_key: str | None = None,
    cacheable: bool = True,
    warm_group: str | None = None,
    **kwargs: Any,
) -> Job:
    """Build a :class:`Job` with ergonomic call syntax.

    ``job(solve, readings, scenario, backend="bnb")`` reads like the call
    it defers.  ``label``, ``cache_key``, ``cacheable`` and
    ``warm_group`` are reserved keywords; any other keyword is forwarded
    to ``fn``.
    """
    if not callable(fn):
        raise EngineError(f"job function must be callable, got {fn!r}")
    return Job(
        fn=fn,
        args=args,
        kwargs=tuple(sorted(kwargs.items())),
        label=label,
        cache_key=cache_key,
        cacheable=cacheable,
        warm_group=warm_group,
    )


def as_jobs(jobs: Iterable[Job]) -> tuple[Job, ...]:
    """Materialise and validate a job iterable."""
    materialised = tuple(jobs)
    for item in materialised:
        if not isinstance(item, Job):
            raise EngineError(f"expected a Job, got {type(item).__qualname__}")
    return materialised


def warm_units(batch: Sequence[Job], pending: Iterable[int]) -> list[list[int]]:
    """Partition job indices into submission units.

    Jobs with the same ``warm_group`` form one unit (in batch order);
    every other job is its own unit.  A unit is the granularity at which
    the pooled and remote execution backends place work on a worker:
    executing one unit sequentially on one worker lets its batch-ILP
    warm-start pool accumulate across the unit's structurally identical
    solves.  Shared by the process-pool runner and the remote client so
    both backends shard identically.
    """
    units: list[list[int]] = []
    grouped: dict[str, list[int]] = {}
    for index in pending:
        group = batch[index].warm_group
        if group is None:
            units.append([index])
            continue
        bucket = grouped.get(group)
        if bucket is None:
            grouped[group] = bucket = [index]
            units.append(bucket)
        else:
            bucket.append(index)
    return units
