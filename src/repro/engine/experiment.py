"""Generic end-to-end execution of a registered scenario spec.

:func:`run_spec` is the engine's universal driver: given any
:class:`~repro.engine.scenario.ScenarioSpec` — two cores, the TC277's
three, or an N-core derivative — it performs the paper's full protocol:

1. measure the application and every contender in isolation;
2. bound the joint contention (single-contender ILP-PTAC for a pair, the
   multi-contender ILP otherwise) and, for comparison, the naive sum of
   pairwise bounds;
3. co-run all cores (plus any declared DMA masters) and check the
   prediction upper-bounds the observation.

Because it is a module-level function of picklable arguments, whole-spec
runs are themselves engine jobs: :func:`run_specs` fans a list of specs
out over worker processes and caches each result under the spec's content
hash.
"""

from __future__ import annotations

import dataclasses

from repro.core.ilp_ptac import IlpPtacOptions
from repro.core.model import AnalysisContext
from repro.core.registry import get_model, model_names
from repro.core.wcet import contention_bound
from repro.counters.readings import TaskReadings
from repro.engine.batch import job
from repro.engine.registry import default_registry
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.engine.scenario import ScenarioSpec
from repro.errors import ModelError
from repro.platform.latency import LatencyProfile, tc27x_latency_profile
from repro.sim.system import SystemSimulator
from repro.sim.timing import SimTiming


@dataclasses.dataclass(frozen=True)
class ScenarioRunResult:
    """Outcome of one spec's end-to-end run.

    Attributes:
        spec_name: the executed spec.
        base: deployment base of the spec.
        core_count: cores occupied (application included).
        isolation_cycles: application's isolation time.
        contender_names: per-core-tagged contender identifiers.
        joint_delta: joint contention bound over all core contenders.
        pairwise_deltas: single-contender bound per contender (same order
            as ``contender_names``).
        observed_cycles: application's time in the full co-run.
        dma_delta: bound on the declared DMA masters' interference (zero
            when the spec has none), computed by ``dma_model``.
        model: registered name of the pairwise contention model used.
        dma_model: registered name of the DMA-descriptor model that
            produced ``dma_delta``.
    """

    spec_name: str
    base: str
    core_count: int
    isolation_cycles: int
    contender_names: tuple[str, ...]
    joint_delta: int
    pairwise_deltas: tuple[int, ...]
    observed_cycles: int
    dma_delta: int = 0
    model: str = "ilp-ptac"
    dma_model: str = "dma-occupancy"

    @property
    def pairwise_sum_delta(self) -> int:
        return sum(self.pairwise_deltas)

    @property
    def joint_prediction(self) -> int:
        return self.isolation_cycles + self.joint_delta + self.dma_delta

    @property
    def predicted_slowdown(self) -> float:
        return self.joint_prediction / self.isolation_cycles

    @property
    def observed_slowdown(self) -> float:
        return self.observed_cycles / self.isolation_cycles

    @property
    def sound(self) -> bool:
        """Prediction upper-bounds the observation (must hold)."""
        return self.joint_prediction >= self.observed_cycles

    @property
    def joint_saving(self) -> int:
        """Cycles the joint formulation saves over the pairwise sum."""
        return self.pairwise_sum_delta - self.joint_delta


def _tagged(readings: TaskReadings, core: int) -> TaskReadings:
    """Disambiguate contender names by core (two H-Loads must not clash
    in the multi-contender ILP's per-contender variables)."""
    return dataclasses.replace(readings, name=f"{readings.name}@core{core}")


def _dma_delta(
    spec: ScenarioSpec,
    profile: LatencyProfile,
    dma_model: str,
    readings: TaskReadings,
) -> int:
    """Bound the declared DMA masters' interference with ``dma_model``.

    The default, ``"dma-occupancy"``, is the sound occupancy bound: each
    DMA transaction occupies its slave once, delaying at most one
    conflicting application request by the per-request interference
    latency ``l^{t,o}`` — ``count · l^{t,o}`` summed over agents.
    ``"dma-rr-alignment"`` instead extends the paper's same-class
    alignment assumption to the agents (each victim request delayed at
    most once per agent), which is *not* sound against saturating
    higher-priority masters — the dma-pressure scenario family uses the
    pair to demonstrate exactly where the scoping decision breaks.
    Agents addressing slaves the application cannot reach interfere with
    nothing and contribute zero under either model.
    """
    if not spec.dma:
        return 0
    context = AnalysisContext(
        profile=profile,
        scenario=spec.deployment(),
        readings=readings,
        dma_agents=spec.dma_agents(),
        task=readings.name,
    )
    return get_model(dma_model).bound(context).delta_cycles


def run_spec(
    spec: ScenarioSpec | str,
    *,
    model: str = "ilp-ptac",
    dma_model: str = "dma-occupancy",
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
) -> ScenarioRunResult:
    """Execute one spec end to end (measure → bound → co-run → check).

    Args:
        spec: a :class:`ScenarioSpec` or the name of a registered one.
        model: registered contention-model name used for the per-contender
            bounds; must be counter-based (its only inputs the readings a
            scenario run measures).  The joint bound follows the model's
            declared contender arity: unbounded models take all
            contenders at once, models declaring a ``joint_counterpart``
            (``ilp-ptac`` → ``ilp-ptac-multi``) delegate to it, and
            every other model sums the per-core bounds (each victim
            request waits once per co-runner core per round under
            round-robin, so per-contender bounds add).
        dma_model: registered model bounding the declared DMA masters'
            interference from their transfer descriptors (must declare
            ``needs_dma_agents``); ignored for specs without DMA.
        profile: Table 2 constants.
        timing: simulator timing.
        options: ILP knobs shared by the joint and pairwise solves.
    """
    if isinstance(spec, str):
        spec = default_registry().get(spec)
    capabilities = get_model(model).capabilities  # validate the name early
    if not capabilities.counter_based:
        raise ModelError(
            f"model {model!r} cannot drive a scenario run: run_spec only "
            "measures counter readings, so pick a counter-based model "
            "such as 'ilp-ptac' or 'ftc-refined'"
        )
    # The name must resolve always (fail fast on typos), but the
    # descriptor capability only matters when there is DMA to bound —
    # a DMA-less spec ignores dma_model, as documented.
    dma_capabilities = get_model(dma_model).capabilities
    if spec.dma and not dma_capabilities.needs_dma_agents:
        descriptor_models = [
            name
            for name in model_names()
            if get_model(name).capabilities.needs_dma_agents
        ]
        raise ModelError(
            f"model {dma_model!r} cannot bound DMA traffic: dma_model "
            "must consume transfer descriptors "
            f"({', '.join(descriptor_models)})"
        )
    profile = profile or tc27x_latency_profile()
    deployment = spec.deployment()
    simulator = SystemSimulator(
        timing,
        arbitration=spec.arbitration,
        priorities=spec.priority_map(),
    )

    app_program = spec.app_program()
    app = simulator.run({spec.app_core: app_program}).core(spec.app_core)
    isolation = app.readings.require_ccnt()

    contender_programs = spec.contender_programs()
    contender_readings: list[TaskReadings] = []
    for core in sorted(contender_programs):
        result = simulator.run({core: contender_programs[core]}).core(core)
        contender_readings.append(_tagged(result.readings, core))

    pairwise = tuple(
        contention_bound(
            model, app.readings, profile, deployment, contender,
            options=options,
        ).delta_cycles
        for contender in contender_readings
    )
    if not contender_readings:
        joint = 0
    elif len(contender_readings) == 1:
        joint = pairwise[0]
    elif capabilities.max_contenders is None:
        joint = contention_bound(
            model, app.readings, profile, deployment,
            contenders=tuple(contender_readings), options=options,
        ).delta_cycles
    elif capabilities.joint_counterpart is not None:
        # The model declares its multi-contender generalisation (one
        # shared victim mapping); bound the whole set jointly with it.
        joint = contention_bound(
            capabilities.joint_counterpart, app.readings, profile,
            deployment, contenders=tuple(contender_readings),
            options=options,
        ).delta_cycles
    else:
        # No joint formulation: per-contender bounds are additive under
        # round-robin (one delay per co-runner core per round).
        joint = sum(pairwise)

    corun_programs = {spec.app_core: app_program, **contender_programs}
    if len(corun_programs) > 1 or spec.dma:
        observed = (
            simulator.run(corun_programs, dma_agents=spec.dma_agents())
            .core(spec.app_core)
            .readings.require_ccnt()
        )
    else:
        observed = isolation

    return ScenarioRunResult(
        spec_name=spec.name,
        base=spec.base,
        core_count=spec.core_count,
        isolation_cycles=isolation,
        contender_names=tuple(r.name for r in contender_readings),
        joint_delta=joint,
        pairwise_deltas=pairwise,
        observed_cycles=observed,
        dma_delta=_dma_delta(spec, profile, dma_model, app.readings),
        model=model,
        dma_model=dma_model,
    )


def run_specs(
    specs,
    *,
    engine: ExperimentEngine | None = None,
    model: str = "ilp-ptac",
    dma_model: str = "dma-occupancy",
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
) -> list[ScenarioRunResult]:
    """Run many specs as one engine batch (parallel-safe, cacheable).

    Args:
        specs: iterable of :class:`ScenarioSpec` objects or registered
            names (resolved eagerly so workers need no registry state).
        engine: execution engine; ``None`` runs serially.
        model: registered contention-model name; travels through each
            job as plain data, so it is picklable for process-mode
            fan-out and participates in the content-addressed cache key
            (the same spec under two models caches separately).
        dma_model: registered DMA-descriptor model for specs with DMA.
    """
    resolved = [
        default_registry().get(spec) if isinstance(spec, str) else spec
        for spec in specs
    ]
    return run_jobs(
        [
            spec_job(spec, model, profile, timing, options, dma_model=dma_model)
            for spec in resolved
        ],
        engine,
    )


def spec_job(
    spec: ScenarioSpec,
    model: str,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
    *,
    dma_model: str = "dma-occupancy",
    warm_group: str | None = None,
):
    """One :func:`run_spec` engine job.

    By default *not* warm-grouped: a scenario run is dominated by its
    simulations (the ILP solves are ~1% of the job), so serialising
    same-template jobs onto one worker would cost far more fan-out than
    the warm starts save.  Each job still warm-starts internally — its
    own pairwise and joint solves share the worker's batch solver pool.
    Callers whose batches *are* solve-heavy (the family drivers route
    many structurally identical member solves through one worker) pass
    an explicit ``warm_group``.
    """
    return job(
        run_spec,
        spec,
        model=model,
        dma_model=dma_model,
        profile=profile,
        timing=timing,
        options=options,
        label=f"run-spec:{spec.name}:{model}",
        warm_group=warm_group,
    )
