"""Content-addressed result cache for the experiment engine.

Every engine job is a pure function of picklable inputs (a scenario spec,
counter readings, a timing configuration, model options), so its result
can be cached under a *stable content hash* of those inputs.  Repeated
sweeps and figure regenerations then skip re-simulation entirely: the
second identical run performs zero simulator or solver work (asserted by
the engine test-suite via the runner's execution counter).

The hash is structural, not ``repr``-based: dataclasses, enums, mappings,
sets and plain objects are canonicalised into a JSON document whose SHA-256
digest is the cache key.  Two values hash equal iff their canonical forms
are equal, independent of dict ordering or object identity.

Because the hash is process-stable, the cache can also **persist to
disk**: construct ``ResultCache(directory=...)`` (or pass
``--cache-dir`` to the CLI) and every stored result is additionally
pickled under ``<directory>/v<version>/<key>.pkl`` (namespaced per
library version, since keys hash job *inputs*, not code).  A later
process — a second CLI invocation, a CI run — reuses those entries,
making figure regeneration incremental across invocations.  Unpicklable
results (e.g. carrying closure-backed programs) simply stay in-memory;
corrupt or truncated files are dropped and recomputed.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections.abc import Mapping, Set
from pathlib import Path
from typing import Any, Callable

from repro.errors import EngineError

#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()


def _process_umask() -> int:
    """The process umask (os offers no read-only accessor)."""
    mask = os.umask(0)
    os.umask(mask)
    return mask


def canonicalise(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Supported inputs: JSON scalars, floats, enums, dataclasses, mappings,
    sequences, sets/frozensets, callables (identified by their dotted
    name) and plain objects with a ``__dict__``.  Anything else raises
    :class:`~repro.errors.EngineError` — silent fallback to ``id()`` or
    ``repr()`` would make cache keys unstable across processes.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips floats exactly; JSON's float encoding does
        # not distinguish 1.0 from 1, which would merge distinct keys.
        return ["float", repr(obj)]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if isinstance(obj, enum.Enum):
        return ["enum", _type_tag(obj), canonicalise(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dataclass",
            _type_tag(obj),
            [
                [field.name, canonicalise(getattr(obj, field.name))]
                for field in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, Mapping):
        items = [
            [_key_token(key), canonicalise(value)]
            for key, value in obj.items()
        ]
        items.sort(key=lambda item: item[0])
        return ["mapping", items]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonicalise(item) for item in obj]]
    if isinstance(obj, Set):
        return ["set", sorted(_key_token(item) for item in obj)]
    if callable(obj):
        module = getattr(obj, "__module__", None)
        qualname = getattr(obj, "__qualname__", None)
        if not module or not qualname or "<locals>" in qualname:
            raise EngineError(
                f"cannot derive a stable cache key from {obj!r}: only "
                "module-level callables are addressable"
            )
        return ["callable", module, qualname]
    attributes = getattr(obj, "__dict__", None)
    if attributes is not None:
        return [
            "object",
            _type_tag(obj),
            canonicalise(attributes),
        ]
    raise EngineError(
        f"cannot derive a stable cache key from {type(obj).__qualname__!r}"
    )


def _type_tag(obj: Any) -> str:
    """Fully-qualified type name; same-named types in different modules
    must not collide in the key space."""
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _key_token(key: Any) -> str:
    """Serialise a mapping key / set element into a sortable string."""
    return json.dumps(canonicalise(key), sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical form.

    Deterministic across processes and interpreter runs (no reliance on
    ``hash()`` randomisation), so cached results survive process-pool
    round-trips and, in principle, on-disk persistence.
    """
    payload = json.dumps(
        canonicalise(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of one cache instance.

    ``disk_hits`` counts the subset of ``hits`` answered from the
    persistent directory rather than process memory.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed store of completed job results.

    Thread-safe (the engine's thread mode shares one instance across
    workers).  Keys are the stable hashes produced by
    :func:`stable_hash`; values are whatever the job returned.

    Args:
        directory: optional persistence directory.  When given, stored
            values are additionally pickled under a per-library-version
            subdirectory (``<directory>/v<repro.__version__>/<key>.pkl``)
            and misses fall back to it, so a fresh process (another CLI
            invocation, a CI job) reuses earlier results.  The version
            namespace keeps results from leaking across releases — job
            keys hash inputs, not code, so a model fix must not be
            answered with a pre-fix pickle.  The directory is created if
            needed.  Values that cannot be pickled stay purely
            in-memory; unreadable entries are discarded and recomputed.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._store: dict[str, Any] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self._directory: Path | None = None
        if directory is not None:
            from repro import __version__  # deferred: package-init cycle

            self._directory = Path(directory) / f"v{__version__}"
            self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path | None:
        """The persistence directory (``None`` for in-memory only)."""
        return self._directory

    def _path(self, key: str) -> Path:
        assert self._directory is not None
        return self._directory / f"{key}.pkl"

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._store:
                return True
            return (
                self._directory is not None and self._path(key).is_file()
            )

    def lookup(self, key: str) -> Any:
        """Return the cached value or the module's miss sentinel.

        Use :func:`is_miss` on the result; ``None`` is a legitimate cached
        value.
        """
        with self._lock:
            value = self._store.get(key, _MISS)
            if value is _MISS and self._directory is not None:
                value = self._load(key)
                if value is not _MISS:
                    self._store[key] = value
                    self.stats.disk_hits += 1
            if value is _MISS:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return value

    def _load(self, key: str) -> Any:
        """Read one persisted entry; corrupt files are dropped silently."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _MISS
        except Exception:  # repro: ignore[broad-except] unpickling a corrupt/foreign file can raise anything; drop and treat as a miss
            try:
                path.unlink()
            except OSError:
                pass
            return _MISS

    def store(self, key: str, value: Any) -> None:
        """Record ``value`` under ``key`` (last write wins)."""
        with self._lock:
            self._store[key] = value
            if self._directory is not None:
                self._persist(key, value)

    def _persist(self, key: str, value: Any) -> None:
        """Write one entry atomically (tmp + rename); best-effort only.

        The tmp file comes from :func:`tempfile.mkstemp`, which
        guarantees a *fresh* name — a pid-suffixed name is not enough:
        two cache instances in one process (an engine plus a worker, two
        engines sharing ``--cache-dir``) share a pid, and pids collide
        across hosts on a shared mount, so concurrent writers of the
        same key could interleave writes into one tmp file and rename a
        torn pickle into place.  With unique tmp names every rename
        publishes a complete pickle; last write wins, as documented.
        """
        path = self._path(key)
        fd: int | None = None
        tmp: str | None = None
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self._directory), prefix=f".{key}.", suffix=".tmp"
            )
            # mkstemp creates 0600; restore open()'s umask-derived mode
            # so other *users* of a shared cache mount (a worker fleet)
            # can read published entries.  Best-effort: a failure here
            # must not abort the persist itself.
            try:
                os.fchmod(fd, 0o666 & ~_process_umask())
            except (AttributeError, OSError):
                pass
            with os.fdopen(fd, "wb") as handle:
                fd = None  # fdopen owns (and closes) the descriptor now
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            tmp = None
        except Exception:  # repro: ignore[broad-except] persistence is best-effort by contract
            # Unpicklable value or unwritable directory: the entry simply
            # stays in-memory for this process.
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Convenience: lookup, computing and storing on a miss."""
        value = self.lookup(key)
        if value is _MISS:
            value = compute()
            self.store(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry, in memory and (when persistent) on disk."""
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()
            if self._directory is not None:
                for path in self._directory.glob("*.pkl"):
                    try:
                        path.unlink()
                    except OSError:
                        pass


def is_miss(value: Any) -> bool:
    """Whether a :meth:`ResultCache.lookup` result was a miss."""
    return value is _MISS


def cache_namespaces(directory: str | os.PathLike) -> list[tuple[str, Path]]:
    """The ``(version, path)`` namespaces under one cache directory."""
    root = Path(directory)
    found = []
    for path in sorted(root.glob("v*")):
        if path.is_dir() and len(path.name) > 1:
            found.append((path.name[1:], path))
    return found


def prune_stale_versions(
    directory: str | os.PathLike, *, active: str | None = None
) -> list[str]:
    """Delete stale ``v<version>/`` cache namespaces; never the active one.

    Version namespaces accumulate forever across library upgrades —
    nothing ever reads a ``v1.0.0/`` entry once the library is at 1.1 —
    so pruning reclaims the disk.  ``active`` defaults to the running
    library version.  Returns the pruned version strings.

    Safe against concurrent writers in the *active* namespace by
    construction: that directory is never touched.  A writer racing
    inside a stale namespace (an old-version process still running) at
    worst re-creates files; deletion is best-effort per entry and
    missing files are ignored.
    """
    if active is None:
        from repro import __version__  # deferred: package-init cycle

        active = __version__
    pruned: list[str] = []
    for version, path in cache_namespaces(directory):
        if version == active:
            continue
        _remove_tree(path)
        pruned.append(version)
    return pruned


def _remove_tree(root: Path) -> None:
    """Best-effort recursive delete (races with writers tolerated)."""
    for path in sorted(root.rglob("*"), reverse=True):
        try:
            if path.is_dir() and not path.is_symlink():
                path.rmdir()
            else:
                path.unlink()
        except OSError:
            pass
    try:
        root.rmdir()
    except OSError:
        pass
