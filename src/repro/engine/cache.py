"""Content-addressed result cache for the experiment engine.

Every engine job is a pure function of picklable inputs (a scenario spec,
counter readings, a timing configuration, model options), so its result
can be cached under a *stable content hash* of those inputs.  Repeated
sweeps and figure regenerations then skip re-simulation entirely: the
second identical run performs zero simulator or solver work (asserted by
the engine test-suite via the runner's execution counter).

The hash is structural, not ``repr``-based: dataclasses, enums, mappings,
sets and plain objects are canonicalised into a JSON document whose SHA-256
digest is the cache key.  Two values hash equal iff their canonical forms
are equal, independent of dict ordering or object identity.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import threading
from collections.abc import Mapping, Set
from typing import Any, Callable

from repro.errors import EngineError

#: Sentinel distinguishing "cached None" from "not cached".
_MISS = object()


def canonicalise(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serialisable canonical form.

    Supported inputs: JSON scalars, floats, enums, dataclasses, mappings,
    sequences, sets/frozensets, callables (identified by their dotted
    name) and plain objects with a ``__dict__``.  Anything else raises
    :class:`~repro.errors.EngineError` — silent fallback to ``id()`` or
    ``repr()`` would make cache keys unstable across processes.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() round-trips floats exactly; JSON's float encoding does
        # not distinguish 1.0 from 1, which would merge distinct keys.
        return ["float", repr(obj)]
    if isinstance(obj, bytes):
        return ["bytes", obj.hex()]
    if isinstance(obj, enum.Enum):
        return ["enum", _type_tag(obj), canonicalise(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dataclass",
            _type_tag(obj),
            [
                [field.name, canonicalise(getattr(obj, field.name))]
                for field in dataclasses.fields(obj)
            ],
        ]
    if isinstance(obj, Mapping):
        items = [
            [_key_token(key), canonicalise(value)]
            for key, value in obj.items()
        ]
        items.sort(key=lambda item: item[0])
        return ["mapping", items]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonicalise(item) for item in obj]]
    if isinstance(obj, Set):
        return ["set", sorted(_key_token(item) for item in obj)]
    if callable(obj):
        module = getattr(obj, "__module__", None)
        qualname = getattr(obj, "__qualname__", None)
        if not module or not qualname or "<locals>" in qualname:
            raise EngineError(
                f"cannot derive a stable cache key from {obj!r}: only "
                "module-level callables are addressable"
            )
        return ["callable", module, qualname]
    attributes = getattr(obj, "__dict__", None)
    if attributes is not None:
        return [
            "object",
            _type_tag(obj),
            canonicalise(attributes),
        ]
    raise EngineError(
        f"cannot derive a stable cache key from {type(obj).__qualname__!r}"
    )


def _type_tag(obj: Any) -> str:
    """Fully-qualified type name; same-named types in different modules
    must not collide in the key space."""
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _key_token(key: Any) -> str:
    """Serialise a mapping key / set element into a sortable string."""
    return json.dumps(canonicalise(key), sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical form.

    Deterministic across processes and interpreter runs (no reliance on
    ``hash()`` randomisation), so cached results survive process-pool
    round-trips and, in principle, on-disk persistence.
    """
    payload = json.dumps(
        canonicalise(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """In-memory content-addressed store of completed job results.

    Thread-safe (the engine's thread mode shares one instance across
    workers).  Keys are the stable hashes produced by
    :func:`stable_hash`; values are whatever the job returned.
    """

    def __init__(self) -> None:
        self._store: dict[str, Any] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def lookup(self, key: str) -> Any:
        """Return the cached value or the module's miss sentinel.

        Use :func:`is_miss` on the result; ``None`` is a legitimate cached
        value.
        """
        with self._lock:
            value = self._store.get(key, _MISS)
            if value is _MISS:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return value

    def store(self, key: str, value: Any) -> None:
        """Record ``value`` under ``key`` (last write wins)."""
        with self._lock:
            self._store[key] = value

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        """Convenience: lookup, computing and storing on a miss."""
        value = self.lookup(key)
        if value is _MISS:
            value = compute()
            self.store(key, value)
        return value

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()


def is_miss(value: Any) -> bool:
    """Whether a :meth:`ResultCache.lookup` result was a miss."""
    return value is _MISS
