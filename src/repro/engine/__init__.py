"""Unified experiment engine: scenarios as data, experiments as batches.

The engine layer decouples *what* an experiment is from *how* it runs:

* :mod:`repro.engine.scenario` / :mod:`repro.engine.registry` — declarative
  :class:`ScenarioSpec` deployments (any core count, any contender mix,
  optional DMA, round-robin or fixed-priority SRI arbitration)
  registered under names, so new deployments are data; specs validate
  *at construction* — ill-formed placements, workloads and DMA
  descriptors never reach a worker — and ``temporary_scenarios()``
  scopes registrations for tests and examples;
* :mod:`repro.engine.families` — declarative :class:`ScenarioFamily`
  grids expanded into many member specs (``expand_family``,
  ``register_family_members``) and batched end to end
  (``run_family`` / ``family_matrix``); the builtin dma-pressure /
  priority-arbitration / cacheability families probe the contention
  regimes the paper scopes out;
* :mod:`repro.engine.batch` / :mod:`repro.engine.runner` — experiments as
  batches of independent ``(scenario, workload, model)`` jobs, executed
  serially (deterministic default), fanned out over threads/processes,
  sharded across a pool of HTTP workers (``mode="remote"``, see
  :mod:`repro.engine.remote`), or queued on the analysis-service
  coordinator's durable queue (``mode="service"``, see
  :mod:`repro.service`), with results always in job order;
* :mod:`repro.engine.cache` — a content-addressed result cache keyed by a
  stable hash of the job inputs, so repeated sweeps and figure
  regenerations skip re-simulation; ``ResultCache(directory=...)``
  additionally persists entries to disk, making the cache survive
  across processes and CLI invocations (``--cache-dir``);
* :mod:`repro.engine.artifact` — the common :class:`ExperimentArtifact`
  record the report/export layers render;
* :mod:`repro.engine.experiment` — the generic end-to-end driver that
  turns any registered spec into measurements, bounds and a soundness
  check.

Every analysis driver in :mod:`repro.analysis` accepts an optional
``engine=`` argument; ``None`` preserves the historical serial behaviour
bit for bit.
"""

from repro.engine.artifact import ExperimentArtifact, artifact
from repro.engine.batch import Job, as_jobs, job, warm_units
from repro.engine.cache import CacheStats, ResultCache, stable_hash
from repro.engine.experiment import ScenarioRunResult, run_spec, run_specs
from repro.engine.families import (
    FamilyMember,
    FamilyRegistry,
    FamilyRunResult,
    ScenarioFamily,
    builtin_families,
    default_family_registry,
    expand_family,
    family_matrix,
    family_names,
    get_family,
    register_family,
    register_family_members,
    run_family,
    temporary_families,
)
from repro.engine.remote import (
    RemoteExecutor,
    RemoteStats,
    WorkerServer,
    wait_for_workers,
    worker_health,
)
from repro.engine.registry import (
    ScenarioRegistry,
    builtin_specs,
    default_registry,
    get_scenario,
    register_scenario,
    scenario_names,
    temporary_scenarios,
)
from repro.engine.runner import (
    EXECUTION_MODES,
    EngineStats,
    ExperimentEngine,
    run_jobs,
)
from repro.engine.scenario import DmaSpec, ScenarioSpec, WorkloadRef

__all__ = [
    "EXECUTION_MODES",
    "CacheStats",
    "DmaSpec",
    "EngineStats",
    "ExperimentArtifact",
    "ExperimentEngine",
    "FamilyMember",
    "FamilyRegistry",
    "FamilyRunResult",
    "Job",
    "RemoteExecutor",
    "RemoteStats",
    "ResultCache",
    "ScenarioFamily",
    "ScenarioRegistry",
    "WorkerServer",
    "ScenarioRunResult",
    "ScenarioSpec",
    "WorkloadRef",
    "artifact",
    "as_jobs",
    "builtin_families",
    "builtin_specs",
    "default_family_registry",
    "default_registry",
    "expand_family",
    "family_matrix",
    "family_names",
    "get_family",
    "get_scenario",
    "job",
    "register_family",
    "register_family_members",
    "register_scenario",
    "run_family",
    "run_jobs",
    "run_spec",
    "run_specs",
    "scenario_names",
    "stable_hash",
    "temporary_families",
    "temporary_scenarios",
    "wait_for_workers",
    "warm_units",
    "worker_health",
]
