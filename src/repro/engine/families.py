"""Scenario families: parameter grids expanded into scenario specs.

The registry made deployments *data*; this module makes whole sweeps
data.  A :class:`ScenarioFamily` names an ordered set of axes and a
build function mapping one grid point to a
:class:`~repro.engine.scenario.ScenarioSpec` (or ``None`` to skip an
illegal point — the cacheability family filters Table 3 violations that
way).  ``expand_family`` materialises the grid, ``register_family``
mirrors the scenario/model registries, and :func:`run_family` /
:func:`family_matrix` batch every member through the experiment engine,
so "add a sweep" is three lines of axes instead of a new driver::

    from repro.engine import ScenarioFamily, register_family, run_family

    register_family(ScenarioFamily(
        name="my-sweep",
        description="app vs H-Load at three footprint scales",
        axes={"scale_den": (32, 64, 128)},
        build=lambda scale_den: ScenarioSpec(
            name=f"my-sweep/s{scale_den}",
            app=WorkloadRef.control_loop(scale=1 / scale_den),
            contenders=((2, WorkloadRef.load("H", scale=1 / scale_den)),),
        ),
    ))
    results = run_family("my-sweep", engine=engine)

Three builtin families probe the territory the paper scopes out (its
models cover contenders "mapped to the same SRI priority class"):

* **dma-pressure** — ``DmaSpec`` grids over queue depth × period ×
  count against a higher-priority DMA master on both reference bases.
  Paced single-outstanding agents keep the round-robin alignment
  assumption; saturating periods and deep queues starve the victim, so
  ``dma-rr-alignment`` under-predicts there while ``dma-occupancy``
  stays sound on every member.
* **priority-arbitration** — the same contender mixes co-run under
  round-robin and fixed-priority SRI arbitration.  TriCore cores are
  single-outstanding masters: core pairs observe identical victim
  times under both policies (three-master interleavings may shift, but
  every request is still delayed at most once per other master per
  round), so the counter-based bounds remain sound under both — the
  measured justification for the paper's same-class scoping.
* **cacheability** — every Table 3-legal custom placement of code and
  (cacheable or not) data, with dirty-eviction targets derived per
  member; sweeps the deployment dimension the reference scenarios fix.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.core.ilp_ptac import IlpPtacOptions
from repro.core.registry import counter_based_model_names, get_model
from repro.engine.experiment import ScenarioRunResult, spec_job
from repro.engine.registry import ScenarioRegistry, default_registry
from repro.engine.runner import ExperimentEngine, run_jobs
from repro.engine.scenario import DmaSpec, ScenarioSpec, WorkloadRef
from repro.errors import EngineError, ModelError
from repro.platform.cacheability import (
    SectionKind,
    dirty_eviction_targets,
    placement_matrix,
)
from repro.platform.latency import LatencyProfile
from repro.platform.targets import Operation, Target
from repro.sim.timing import SimTiming

#: Workload scale of the builtin families (keeps full expansions fast).
_FAMILY_SCALE = 1 / 256


@dataclasses.dataclass(frozen=True)
class ScenarioFamily:
    """A declarative scenario generator: axes × build function.

    Attributes:
        name: registry key; every member spec's name must start with
            ``"<name>/"`` so members stay addressable per family.
        description: one-line summary for ``repro families`` and the
            README's generated section.
        axes: ordered mapping of axis name → value tuple.  The grid is
            the cartesian product, expanded row-major in declaration
            order (stable member order in every process).
        build: callable taking one keyword argument per axis and
            returning the member :class:`ScenarioSpec`, or ``None`` to
            skip the point (e.g. a placement Table 3 forbids).  Must be
            deterministic: expansion happens in every process that needs
            the family, and member specs are engine cache keys.
        default_model: counter-based contention model driving
            :func:`run_family` when the caller names none.
        default_dma_model: descriptor model bounding members' DMA
            traffic when the caller names none.
    """

    name: str
    description: str
    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    build: Callable[..., ScenarioSpec | None]
    default_model: str = "ilp-ptac"
    default_dma_model: str = "dma-occupancy"

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("a scenario family needs a name")
        if isinstance(self.axes, Mapping):
            object.__setattr__(
                self,
                "axes",
                tuple((k, tuple(v)) for k, v in self.axes.items()),
            )
        else:
            object.__setattr__(
                self,
                "axes",
                tuple((k, tuple(v)) for k, v in self.axes),
            )
        if not self.axes:
            raise EngineError(
                f"family {self.name!r} needs at least one axis"
            )
        names = [axis for axis, _ in self.axes]
        if len(set(names)) != len(names):
            raise EngineError(f"family {self.name!r} has duplicate axes")
        for axis, values in self.axes:
            if not axis.isidentifier():
                raise EngineError(
                    f"family {self.name!r}: axis {axis!r} must be a "
                    "valid identifier (it becomes a build() keyword)"
                )
            if not values:
                raise EngineError(
                    f"family {self.name!r}: axis {axis!r} has no values"
                )
        if not callable(self.build):
            raise EngineError(
                f"family {self.name!r}: build must be callable"
            )

    # ------------------------------------------------------------------
    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis for axis, _ in self.axes)

    @property
    def grid_size(self) -> int:
        """Number of grid points *before* legality filtering."""
        size = 1
        for _, values in self.axes:
            size *= len(values)
        return size

    def points(self) -> Iterator[tuple[tuple[str, Any], ...]]:
        """Grid points in row-major declaration order."""
        names = self.axis_names
        for combo in itertools.product(*(values for _, values in self.axes)):
            yield tuple(zip(names, combo))

    def describe_axes(self) -> str:
        """Compact axes rendering for listings, e.g. ``qd=1|4|8``."""
        return " ".join(
            f"{axis}={'|'.join(str(v) for v in values)}"
            for axis, values in self.axes
        )


@dataclasses.dataclass(frozen=True)
class FamilyMember:
    """One expanded grid point: the axis assignment plus its spec."""

    family: str
    point: tuple[tuple[str, Any], ...]
    spec: ScenarioSpec

    @property
    def name(self) -> str:
        return self.spec.name

    def describe_point(self) -> str:
        """``axis=value`` rendering of the member's grid coordinates."""
        return " ".join(f"{axis}={value}" for axis, value in self.point)


@dataclasses.dataclass(frozen=True)
class FamilyRunResult:
    """One member's end-to-end run, tagged with its grid coordinates."""

    member: FamilyMember
    run: ScenarioRunResult

    @property
    def sound(self) -> bool:
        return self.run.sound


def expand_family(
    family: "ScenarioFamily | str",
) -> tuple[FamilyMember, ...]:
    """Materialise a family's grid into validated members.

    Every surviving point's spec is validated by
    :class:`ScenarioSpec`'s own ``__post_init__`` (build functions
    cannot smuggle ill-formed deployments past registration), must be
    named ``"<family>/..."`` and must not collide with another member.
    """
    if isinstance(family, str):
        family = get_family(family)
    members: list[FamilyMember] = []
    seen: set[str] = set()
    prefix = f"{family.name}/"
    for point in family.points():
        spec = family.build(**dict(point))
        if spec is None:
            continue
        if not isinstance(spec, ScenarioSpec):
            raise EngineError(
                f"family {family.name!r}: build() returned "
                f"{type(spec).__qualname__} for point {dict(point)!r}; "
                "expected a ScenarioSpec or None"
            )
        if not spec.name.startswith(prefix):
            raise EngineError(
                f"family {family.name!r}: member {spec.name!r} must be "
                f"named {prefix!r}<member>"
            )
        if spec.name in seen:
            raise EngineError(
                f"family {family.name!r}: duplicate member name "
                f"{spec.name!r}"
            )
        seen.add(spec.name)
        members.append(
            FamilyMember(family=family.name, point=point, spec=spec)
        )
    if not members:
        raise EngineError(
            f"family {family.name!r} expanded to zero members"
        )
    return tuple(members)


# ----------------------------------------------------------------------
# Family registry (mirrors the scenario and model registries)
# ----------------------------------------------------------------------
class FamilyRegistry:
    """An ordered name → :class:`ScenarioFamily` mapping."""

    def __init__(self, families: "Sequence[ScenarioFamily]" = ()) -> None:
        self._families: dict[str, ScenarioFamily] = {}
        for family in families:
            self.register(family)

    def register(
        self, family: ScenarioFamily, *, replace: bool = False
    ) -> ScenarioFamily:
        """Add a family under its name; re-registration needs ``replace``."""
        if not isinstance(family, ScenarioFamily):
            raise EngineError(
                f"expected a ScenarioFamily, got {type(family).__qualname__}"
            )
        if family.name in self._families and not replace:
            raise EngineError(
                f"family {family.name!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        self._families[family.name] = family
        return family

    def unregister(self, name: str) -> None:
        if name not in self._families:
            raise EngineError(f"family {name!r} is not registered")
        del self._families[name]

    def get(self, name: str) -> ScenarioFamily:
        try:
            return self._families[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown family {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def names(self) -> tuple[str, ...]:
        return tuple(self._families)

    def families(self) -> tuple[ScenarioFamily, ...]:
        return tuple(self._families.values())

    def __contains__(self, name: object) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def __iter__(self) -> Iterator[ScenarioFamily]:
        return iter(self._families.values())


# ----------------------------------------------------------------------
# Builtin families
# ----------------------------------------------------------------------
def _build_dma_pressure(
    base: str, queue_depth: int, period: int, count: int
) -> ScenarioSpec:
    # The DMA master sits in a *higher* SRI priority class than the
    # application core — precisely the contender the paper scopes out.
    # Period 2 saturates the LMU (the agent always has a transaction
    # pending, at any queue depth); period 24 exceeds the service time,
    # so the agent goes idle between transactions and depth never
    # accumulates — the regime where the alignment assumption survives.
    return ScenarioSpec(
        name=f"dma-pressure/{base}-qd{queue_depth}-p{period}-c{count}",
        base=base,
        description=(
            f"app vs higher-priority DMA on the LMU (depth {queue_depth}, "
            f"period {period}, {count} transactions)"
        ),
        app=WorkloadRef.control_loop(scale=_FAMILY_SCALE),
        dma=(
            DmaSpec(
                master_id=9,
                target=Target.LMU,
                count=count,
                period=period,
                queue_depth=queue_depth,
            ),
        ),
        arbitration="priority",
        priorities=((1, 5), (9, 0)),
    )


#: Contender cores of the priority-arbitration mixes (app stays on 1).
_MIX_CORES = (2, 0, 3)


def _build_priority_mix(
    base: str, arbitration: str, mix: str
) -> ScenarioSpec:
    contenders = tuple(
        (core, WorkloadRef.load(level, scale=_FAMILY_SCALE))
        for core, level in zip(_MIX_CORES, mix)
    )
    priorities: tuple[tuple[int, int], ...] = ()
    if arbitration == "priority":
        # Worst case for the application: every contender core wins.
        priorities = ((1, 1),) + tuple(
            (core, 0) for core, _ in contenders
        )
    return ScenarioSpec(
        name=f"priority-arbitration/{base}-{arbitration}-{mix}",
        base=base,
        description=(
            f"app vs {'+'.join(mix)}-Load under {arbitration} SRI "
            "arbitration"
        ),
        app=WorkloadRef.control_loop(scale=_FAMILY_SCALE),
        contenders=contenders,
        arbitration=arbitration,
        priorities=priorities,
    )


def _build_cacheability(
    code_target: str, data_target: str, data_cacheable: bool
) -> ScenarioSpec | None:
    code_kind = SectionKind(Operation.CODE, True)
    data_kind = SectionKind(Operation.DATA, data_cacheable)
    matrix = placement_matrix()
    if not matrix[data_kind.label()][data_target]:
        return None  # Table 3 forbids the placement: skip the point
    if not matrix[code_kind.label()][code_target]:
        return None
    code, data = Target(code_target), Target(data_target)
    placements = ((code_kind, code), (data_kind, data))
    suffix = "c" if data_cacheable else "nc"
    return ScenarioSpec(
        name=f"cacheability/co-{code_target}-da-{data_target}-{suffix}",
        base="custom",
        description=(
            f"code on {code_target}, "
            f"{'cacheable' if data_cacheable else 'non-cacheable'} data "
            f"on {data_target}"
        ),
        app=WorkloadRef.synthetic(11, max_requests=400, name="probe-app"),
        contenders=(
            (2, WorkloadRef.synthetic(23, max_requests=400, name="rival")),
        ),
        code_targets=(code,),
        data_targets=(data,),
        dirty_targets=tuple(dirty_eviction_targets(placements)),
    )


def builtin_families() -> tuple[ScenarioFamily, ...]:
    """The families every registry starts from (see the module docstring)."""
    return (
        ScenarioFamily(
            name="dma-pressure",
            description=(
                "higher-priority DMA grids (queue depth × period × "
                "count) on both reference bases: dma-occupancy stays "
                "sound on every member while the round-robin alignment "
                "bound (dma-rr-alignment) under-predicts once the agent "
                "saturates its slave or queues a deep burst"
            ),
            axes={
                "base": ("scenario1", "scenario2"),
                "queue_depth": (1, 4, 8),
                "period": (2, 24),
                "count": (8000, 16000),
            },
            build=_build_dma_pressure,
        ),
        ScenarioFamily(
            name="priority-arbitration",
            description=(
                "fixed-priority vs round-robin contender mixes: "
                "single-outstanding TriCore pairs observe identical "
                "victim times under both policies and the same-class "
                "counter bounds stay sound throughout — the measured "
                "justification for the paper's priority-class scoping"
            ),
            axes={
                "base": ("scenario1", "scenario2"),
                "arbitration": ("round-robin", "priority"),
                "mix": ("H", "L", "HL"),
            },
            build=_build_priority_mix,
        ),
        ScenarioFamily(
            name="cacheability",
            description=(
                "every Table 3-legal custom placement of code and "
                "(non-)cacheable data across the SRI slaves, with "
                "dirty-eviction targets derived per member; illegal "
                "grid points are filtered by the placement matrix"
            ),
            axes={
                "code_target": ("pf0", "pf1", "lmu"),
                "data_target": ("pf0", "pf1", "dfl", "lmu"),
                "data_cacheable": (True, False),
            },
            build=_build_cacheability,
        ),
    )


_DEFAULT: FamilyRegistry | None = None


def default_family_registry() -> FamilyRegistry:
    """The process-wide registry, created with the builtin families."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = FamilyRegistry(builtin_families())
    return _DEFAULT


def register_family(
    family: ScenarioFamily, *, replace: bool = False
) -> ScenarioFamily:
    """Register a family in the default registry."""
    return default_family_registry().register(family, replace=replace)


@contextlib.contextmanager
def temporary_families(
    *families: ScenarioFamily, replace: bool = False
) -> Iterator[FamilyRegistry]:
    """Scope family registrations to a ``with`` block.

    The family mirror of
    :func:`~repro.engine.registry.temporary_scenarios`: ``register_family``
    mutates the process-wide registry, so a test or example following the
    module docstring's recipe would otherwise leak its family into
    everything that runs later in the process.  Registers ``families``
    (more can be added inside the block) and restores the exact prior
    contents on exit, exception or not.
    """
    registry = default_family_registry()
    snapshot = dict(registry._families)
    try:
        for family in families:
            registry.register(family, replace=replace)
        yield registry
    finally:
        registry._families.clear()
        registry._families.update(snapshot)


def get_family(name: str) -> ScenarioFamily:
    """Look a family up in the default registry."""
    return default_family_registry().get(name)


def family_names() -> tuple[str, ...]:
    """Names registered in the default registry."""
    return default_family_registry().names()


def register_family_members(
    family: "ScenarioFamily | str",
    *,
    registry: ScenarioRegistry | None = None,
    replace: bool = False,
) -> tuple[ScenarioSpec, ...]:
    """Expand a family and register every member spec en masse.

    After this, members are ordinary registered scenarios: ``repro run
    dma-pressure/scenario1-qd8-p2-c16000`` and the model × scenario
    matrix see them like any hand-written spec.  Use
    :func:`repro.engine.registry.temporary_scenarios` around it in tests
    to keep the process-wide registry clean.
    """
    registry = registry if registry is not None else default_registry()
    specs = tuple(
        member.spec for member in expand_family(family)
    )
    for spec in specs:
        registry.register(spec, replace=replace)
    return specs


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _member_subset(
    members: tuple[FamilyMember, ...], names: Sequence[str] | None
) -> tuple[FamilyMember, ...]:
    if names is None:
        return members
    by_name = {member.name: member for member in members}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise EngineError(
            f"unknown family members {missing}; "
            f"members: {', '.join(by_name)}"
        )
    return tuple(by_name[name] for name in names)


def _family_warm_group(
    family: ScenarioFamily, spec: ScenarioSpec, model: str
) -> str | None:
    """Warm-group tag for one member job.

    Members on one *reference* base that solve ILPs against contender
    readings share their entire constraint template, so the engine
    routes them to one worker whose batch solver warm-starts across the
    family (purely a performance hint — results are identical, and the
    grouping trades fan-out width for solver-state reuse exactly like
    :attr:`~repro.engine.batch.Job.warm_group` documents).  Custom-base
    members each describe a *different* deployment, hence a different
    ILP structure: grouping those would serialise unrelated solves on
    one worker for no warm-start benefit, so they fan out ungrouped —
    as do members without contenders (nothing to solve) and
    non-ILP models.
    """
    if not spec.contenders or spec.base == "custom":
        return None
    if not get_model(model).capabilities.needs_ilp:
        return None
    return f"family:{family.name}:{spec.base}:{model}"


def _member_jobs(
    family: ScenarioFamily,
    members: tuple[FamilyMember, ...],
    model: str,
    dma_model: str,
    profile: LatencyProfile | None,
    timing: SimTiming | None,
    options: IlpPtacOptions | None,
):
    return [
        spec_job(
            member.spec,
            model,
            profile,
            timing,
            options,
            dma_model=dma_model,
            warm_group=_family_warm_group(family, member.spec, model),
        )
        for member in members
    ]


def _resolve_models(
    family: ScenarioFamily, model: str | None, dma_model: str | None
) -> tuple[str, str]:
    """Split a caller's model choice into (counter model, DMA model).

    ``repro family dma-pressure --model dma-occupancy`` names a
    *descriptor* model; routing it to the DMA side (with the family's
    default driving the core contenders) keeps the CLI surface a single
    ``--model`` flag for both kinds.  Naming a descriptor model in both
    slots is rejected rather than silently resolved: the caller asked
    for two different DMA bounds at once.
    """
    resolved = model or family.default_model
    resolved_dma = dma_model or family.default_dma_model
    if get_model(resolved).capabilities.needs_dma_agents:
        if dma_model is not None and dma_model != resolved:
            raise ModelError(
                f"family {family.name!r}: model={resolved!r} is a "
                f"DMA-descriptor model and routes to the DMA side, but "
                f"dma_model={dma_model!r} was also given — pass one or "
                "the other"
            )
        resolved_dma = resolved
        resolved = family.default_model
    if get_model(resolved).capabilities.needs_dma_agents:
        raise ModelError(
            f"family {family.name!r}: default model {resolved!r} "
            "consumes DMA descriptors; families need a counter-based "
            "default for the core contenders"
        )
    return resolved, resolved_dma


def run_family(
    family: "ScenarioFamily | str",
    *,
    model: str | None = None,
    dma_model: str | None = None,
    members: Sequence[str] | None = None,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[FamilyRunResult]:
    """Run every member of a family as one engine batch.

    Args:
        family: a :class:`ScenarioFamily` or registered name.
        model: contention model for the members' contender bounds; a
            DMA-descriptor model (``dma-occupancy``,
            ``dma-rr-alignment``) is routed to the DMA side instead,
            with the family default driving the cores.
        dma_model: explicit DMA-descriptor model.  Passing a *different*
            descriptor model as ``model`` at the same time is rejected
            (two DMA bounds for one run would be ambiguous).
        members: restrict to these member names (default: the full
            grid) — the CLI's ``--member`` and CI's tiny-grid hook.
        engine: execution engine; ``None`` runs serially.  Members are
            warm-grouped per (family, base, model) when they are
            solve-heavy, so pooled and remote backends shard them onto
            one worker's warm solver.
    """
    if isinstance(family, str):
        family = get_family(family)
    resolved_model, resolved_dma = _resolve_models(family, model, dma_model)
    selected = _member_subset(expand_family(family), members)
    results = run_jobs(
        _member_jobs(
            family, selected, resolved_model, resolved_dma,
            profile, timing, options,
        ),
        engine,
    )
    return [
        FamilyRunResult(member=member, run=run)
        for member, run in zip(selected, results)
    ]


def family_matrix(
    family: "ScenarioFamily | str",
    *,
    models: Sequence[str] | None = None,
    dma_model: str | None = None,
    members: Sequence[str] | None = None,
    profile: LatencyProfile | None = None,
    timing: SimTiming | None = None,
    options: IlpPtacOptions | None = None,
    engine: ExperimentEngine | None = None,
) -> list[FamilyRunResult]:
    """Run every member under every model — one family, full matrix.

    Rows come back member-major in grid order (models in the given
    order within each member), mirroring
    :func:`~repro.analysis.experiments.model_scenario_matrix`.
    """
    if isinstance(family, str):
        family = get_family(family)
    names = tuple(models) if models is not None else counter_based_model_names()
    for name in names:
        if not get_model(name).capabilities.counter_based:
            raise ModelError(
                f"model {name!r} cannot join a family matrix: member "
                "runs measure counter readings only, so pick "
                f"counter-based models ({', '.join(counter_based_model_names())})"
            )
    resolved_dma = dma_model or family.default_dma_model
    selected = _member_subset(expand_family(family), members)
    jobs = []
    pairs: list[tuple[FamilyMember, str]] = []
    for member in selected:
        for name in names:
            pairs.append((member, name))
            jobs.extend(
                _member_jobs(
                    family, (member,), name, resolved_dma,
                    profile, timing, options,
                )
            )
    results = run_jobs(jobs, engine)
    return [
        FamilyRunResult(member=member, run=run)
        for (member, _), run in zip(pairs, results)
    ]
