"""The execution engine: fan a batch of jobs out, deterministically.

Every analysis driver expresses its experiment as a batch of independent
:class:`~repro.engine.batch.Job` objects and hands them to one
:class:`ExperimentEngine`.  The engine

* consults its :class:`~repro.engine.cache.ResultCache` first — a job
  whose content hash was seen before returns instantly, without touching
  the simulator or a solver;
* executes the remaining jobs in one of five modes: ``"serial"`` (the
  deterministic fallback and the default), ``"thread"`` or ``"process"``
  (``concurrent.futures`` fan-out over CPU cores), ``"remote"``
  (fan-out over a pool of ``repro worker`` HTTP processes, on one host
  or many — see :mod:`repro.engine.remote`), or ``"service"`` (each
  batch is queued on a ``repro serve`` coordinator and executed by
  whatever workers have registered — see :mod:`repro.service`);
* always returns results **in job order**, so driver output is identical
  in every mode — parallelism changes wall-clock time, never artefacts.

Robustness: process pools and remote workers need picklable jobs.  Jobs
that cannot be pickled (e.g. carrying a closure-backed
:class:`~repro.sim.program.TaskProgram`), pool start-up failures and
dead remote pools silently degrade to in-process execution;
``stats.fallbacks`` records how often that happened.  A remote worker
that dies, hangs or corrupts mid-batch is dropped and its jobs are
retried on the surviving workers (``remote_stats`` records it).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import warnings
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.engine.batch import Job, as_jobs, warm_units
from repro.engine.cache import ResultCache, is_miss
from repro.engine.remote.client import RemoteExecutor, RemoteStats
from repro.errors import EngineError

if TYPE_CHECKING:  # runtime import deferred: store <-> engine layering
    from repro.store import ResultStore

#: Supported execution modes.
EXECUTION_MODES = ("serial", "thread", "process", "remote", "service")


@dataclasses.dataclass
class EngineStats:
    """Cumulative execution statistics of one engine instance.

    Attributes:
        executed: jobs actually run (cache misses).  The test-suite's
            "zero re-simulations" assertion watches this counter.
        cached: jobs answered from the result cache.
        batches: number of :meth:`ExperimentEngine.run` calls.
        fallbacks: jobs that were demoted from a worker pool to in-process
            execution (unpicklable payload or pool start-up failure).
        recorded: result-store rows written by the recording hook.
    """

    executed: int = 0
    cached: int = 0
    batches: int = 0
    fallbacks: int = 0
    recorded: int = 0


def _run_job(item: Job) -> Any:
    """Module-level trampoline so process workers can execute jobs."""
    return item.run()


def _run_job_group(items: tuple[Job, ...]) -> list[Any]:
    """Trampoline for a warm group: run sequentially on one worker.

    Jobs sharing a :attr:`~repro.engine.batch.Job.warm_group` solve
    structurally identical ILPs; executing them back-to-back in one
    process lets the per-worker batch solver reuse its warm-start pool
    across them.  Results are order-aligned with ``items``.
    """
    return [item.run() for item in items]


class ExperimentEngine:
    """Runs job batches with optional parallelism and result caching.

    Args:
        mode: ``"serial"`` (default), ``"thread"``, ``"process"`` or
            ``"remote"``.
        workers: worker count for the pooled modes; defaults to the CPU
            count.  The pool is created lazily on the first pooled batch
            and reused until :meth:`close` (or context-manager exit).
        cache: shared :class:`ResultCache`; ``None`` disables caching.
        worker_urls: base URLs of ``repro worker`` processes; required
            by (and only valid with) ``mode="remote"``.
        remote_timeout: per-request timeout for remote mode, in seconds;
            a worker exceeding it is dropped and its jobs reassigned
            (``None`` keeps the client's generous default).
        coordinator_url: base URL of a ``repro serve`` coordinator;
            required by (and only valid with) ``mode="service"``.
        store: optional :class:`~repro.store.ResultStore`; when attached,
            every batch this engine runs is recorded — one provenance-
            stamped row per result cell, cache hits included, so a run's
            recorded cell set always covers its whole matrix.  All five
            execution modes funnel through :meth:`run`, so one hook
            covers them all.  Recording is best-effort: a store failure
            warns and the batch's results are returned regardless.
    """

    def __init__(
        self,
        *,
        mode: str = "serial",
        workers: int | None = None,
        cache: ResultCache | None = None,
        worker_urls: Sequence[str] | None = None,
        remote_timeout: float | None = None,
        coordinator_url: str | None = None,
        store: "ResultStore | None" = None,
    ) -> None:
        if mode not in EXECUTION_MODES:
            raise EngineError(
                f"unknown execution mode {mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        if workers is not None and workers < 1:
            raise EngineError("worker count must be at least 1")
        if mode == "remote":
            if not worker_urls:
                raise EngineError(
                    "mode='remote' needs worker_urls=(...); start workers "
                    "with `repro worker` and pass their URLs"
                )
        elif worker_urls:
            raise EngineError(
                "worker_urls only applies to mode='remote', "
                f"not mode={mode!r}"
            )
        if mode == "service":
            if not coordinator_url:
                raise EngineError(
                    "mode='service' needs coordinator_url=...; start a "
                    "coordinator with `repro serve` and pass its URL"
                )
        elif coordinator_url:
            raise EngineError(
                "coordinator_url only applies to mode='service', "
                f"not mode={mode!r}"
            )
        self.mode = mode
        self.workers = workers
        self.cache = cache
        self.worker_urls = tuple(worker_urls) if worker_urls else ()
        self.remote_timeout = remote_timeout
        self.coordinator_url = coordinator_url
        self.store = store
        self.stats = EngineStats()
        self._executor: Executor | None = None
        self._remote: RemoteExecutor | None = None
        self._service = None
        self._run_id: str | None = None

    # ------------------------------------------------------------------
    @property
    def run_count(self) -> int:
        """Jobs executed so far (excludes cache hits)."""
        return self.stats.executed

    @property
    def remote_stats(self) -> RemoteStats | None:
        """The remote executor's statistics (``None`` until the first
        remote batch, or in the local modes)."""
        return self._remote.stats if self._remote is not None else None

    @property
    def service_stats(self):
        """The service executor's statistics (``None`` until the first
        service batch, or in the other modes)."""
        return self._service.stats if self._service is not None else None

    def _worker_count(self) -> int:
        return max(1, self.workers or os.cpu_count() or 1)

    def close(self) -> None:
        """Shut the worker pool down (idle pools also drain at exit)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, jobs: Iterable[Job]) -> list[Any]:
        """Execute a batch and return results aligned with the job order."""
        batch = as_jobs(jobs)
        self.stats.batches += 1
        results: list[Any] = [None] * len(batch)
        pending: list[int] = []

        keys: list[str | None] = [None] * len(batch)
        duplicates: dict[int, int] = {}  # index -> representative index
        if self.cache is None:
            pending = list(range(len(batch)))
        else:
            representative: dict[str, int] = {}
            for index, item in enumerate(batch):
                key: str | None = None
                if item.cacheable:
                    try:
                        key = item.resolved_cache_key()
                    except EngineError:
                        key = None  # closure-backed args: run uncached
                keys[index] = key
                if key is None:
                    pending.append(index)
                    continue
                value = self.cache.lookup(key)
                if not is_miss(value):
                    results[index] = value
                    self.stats.cached += 1
                elif key in representative:
                    # Same content hash earlier in this batch: execute
                    # once, share the result.
                    duplicates[index] = representative[key]
                else:
                    representative[key] = index
                    pending.append(index)

        if pending:
            self._execute(batch, pending, results)
            if self.cache is not None:
                for index in pending:
                    key = keys[index]
                    if key is not None:
                        self.cache.store(key, results[index])
        for index, source in duplicates.items():
            results[index] = results[source]
            self.stats.cached += 1
        if self.store is not None:
            self._record_batch(batch, keys, results)
        return results

    @property
    def run_id(self) -> str | None:
        """The attached store's run id (``None`` until the first
        recorded batch, or without a store)."""
        return self._run_id

    def _record_batch(
        self,
        batch: Sequence[Job],
        keys: Sequence[str | None],
        results: Sequence[Any],
    ) -> None:
        """Record one completed batch into the attached result store.

        All of the engine's batches land in one run (begun lazily), so
        multi-phase drivers — measure, then model — produce a single
        diffable run per engine instance.  Best-effort by design: the
        store is an observability layer, and a full disk or locked
        database must not fail an otherwise-successful batch.
        """
        try:
            if self._run_id is None:
                self._run_id = self.store.begin_run(engine_mode=self.mode)
            self.stats.recorded += self.store.record_batch(
                self._run_id,
                [
                    (item.label, results[index], keys[index])
                    for index, item in enumerate(batch)
                ],
            )
        except Exception as exc:  # repro: ignore[broad-except] recording is best-effort; a store fault must not fail the batch it observes
            warnings.warn(
                f"result-store recording failed ({exc}); batch results "
                "are unaffected but this run will be missing rows",
                RuntimeWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    def _execute(
        self, batch: Sequence[Job], pending: list[int], results: list[Any]
    ) -> None:
        # Remote and service modes ship even single-job batches: the
        # worker may hold warm solver state or a shared disk cache the
        # client lacks.
        if self.mode == "serial" or (
            len(pending) == 1 and self.mode not in ("remote", "service")
        ):
            self._execute_serial(batch, pending, results)
            return
        if self.mode in ("process", "remote", "service"):
            pooled, local = self._split_picklable(batch, pending)
        else:
            pooled, local = list(pending), []
        if self.mode in ("remote", "service"):
            if pooled:
                if self.mode == "remote":
                    leftover = self._remote_execute(batch, pooled, results)
                else:
                    leftover = self._service_execute(batch, pooled, results)
                if leftover:
                    # The whole worker pool (or the coordinator) died:
                    # finish in-process.
                    self.stats.fallbacks += len(leftover)
                    local = sorted(local + leftover)
            if local:
                self._execute_serial(batch, local, results)
            return
        if pooled and not self._pool_execute(batch, pooled, results):
            # No pool on this platform: degrade to in-process execution.
            # Jobs are pure, so re-running any that completed before the
            # pool broke is safe.
            self.stats.fallbacks += len(pooled)
            local = sorted(local + pooled)
        if local:
            self._execute_serial(batch, local, results)

    def _pool_execute(
        self, batch: Sequence[Job], pooled: Sequence[int], results: list[Any]
    ) -> bool:
        """Run ``pooled`` jobs on the worker pool; False if no pool worked.

        The pool is created lazily and kept for the engine's lifetime, so
        multi-phase drivers (measure, then model) pay worker start-up
        once per engine, not once per batch.  Pool *infrastructure*
        failures — construction, worker spawning (ProcessPoolExecutor
        forks lazily, so a sandbox that forbids it surfaces as
        OSError/BrokenExecutor from submit()/result()) — discard the pool
        and return ``False`` so the caller can degrade to serial
        execution.  Exceptions raised by a job function itself propagate
        unchanged, exactly as they would in serial mode.

        Jobs sharing a ``warm_group`` are submitted as one sequential
        unit so they land on one worker and its batch-ILP warm-start
        pool; ungrouped jobs fan out individually.  Grouping trades
        fan-out width for solver-state reuse within the group — results
        are identical either way.
        """
        try:
            if self._executor is None:
                self._executor = self._make_executor()
            executor = self._executor
        except (OSError, ValueError, PermissionError):
            return False
        units = self._warm_units(batch, pooled)
        broken = False
        futures: list[tuple[list[int], Any]] = []
        try:
            for unit in units:
                if len(unit) == 1:
                    future = executor.submit(_run_job, batch[unit[0]])
                else:
                    future = executor.submit(
                        _run_job_group, tuple(batch[i] for i in unit)
                    )
                futures.append((unit, future))
        except (OSError, RuntimeError, BrokenExecutor):
            broken = True
        if not broken:
            try:
                for unit, future in futures:
                    if len(unit) == 1:
                        results[unit[0]] = future.result()
                    else:
                        for index, value in zip(unit, future.result()):
                            results[index] = value
            except BrokenExecutor:
                broken = True
            except BaseException:
                # A *job* failed: cancel the rest of the batch instead of
                # letting queued jobs drain at interpreter exit, then let
                # the job's exception propagate as in serial mode.
                executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
                raise
        if broken:
            executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            return False
        self.stats.executed += len(pooled)
        return True

    def _remote_execute(
        self, batch: Sequence[Job], pooled: Sequence[int], results: list[Any]
    ) -> list[int]:
        """Run ``pooled`` jobs on the remote worker pool.

        The executor shards warm groups across workers, retries units
        whose worker failed on the survivors, and preserves job order.
        Returns the indices no live worker could run (the caller
        finishes those in-process); job exceptions propagate unchanged,
        exactly as in serial mode.
        """
        if self._remote is None:
            kwargs = {}
            if self.remote_timeout is not None:
                kwargs["timeout"] = self.remote_timeout
            self._remote = RemoteExecutor(self.worker_urls, **kwargs)
        leftover = self._remote.execute(batch, pooled, results)
        self.stats.executed += len(pooled) - len(leftover)
        return leftover

    def _service_execute(
        self, batch: Sequence[Job], pooled: Sequence[int], results: list[Any]
    ) -> list[int]:
        """Run ``pooled`` jobs through the analysis-service coordinator.

        The batch is submitted as one coordinator job; registered
        workers lease its warm-group units and the executor polls until
        the queue drains.  Returns the indices the service could not
        take (unreachable coordinator — the caller finishes those
        in-process); job exceptions propagate unchanged, exactly as in
        serial mode.
        """
        if self._service is None:
            # Imported lazily: repro.service imports the engine package,
            # so a module-level import here would be circular.
            from repro.service.client import ServiceExecutor

            self._service = ServiceExecutor(self.coordinator_url)
        leftover = self._service.execute(batch, pooled, results)
        self.stats.executed += len(pooled) - len(leftover)
        return leftover

    @staticmethod
    def _warm_units(
        batch: Sequence[Job], pooled: Sequence[int]
    ) -> list[list[int]]:
        """Partition pooled job indices into submission units.

        Delegates to :func:`repro.engine.batch.warm_units`, the shared
        partition the remote client also shards by, preserving the
        historical one-job-per-future fan-out for ungrouped jobs.
        """
        return warm_units(batch, pooled)

    def _execute_serial(
        self, batch: Sequence[Job], pending: Sequence[int], results: list[Any]
    ) -> None:
        for index in pending:
            results[index] = batch[index].run()
            self.stats.executed += 1

    def _split_picklable(
        self, batch: Sequence[Job], pending: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Partition pending jobs into pool-safe and local-only sets.

        The upfront ``pickle.dumps`` probe serialises each payload once
        more than strictly needed, but it is the only way to demote an
        unpicklable job cleanly: ProcessPoolExecutor pickles in its
        feeder thread, so a submit-time payload error would otherwise
        surface asynchronously as a broken future.
        """
        pooled: list[int] = []
        local: list[int] = []
        for index in pending:
            try:
                pickle.dumps(batch[index])
            except Exception:  # repro: ignore[broad-except] probing picklability: pickling arbitrary jobs can raise anything
                local.append(index)
                self.stats.fallbacks += 1
            else:
                pooled.append(index)
        return pooled, local

    def _make_executor(self) -> Executor:
        workers = self._worker_count()
        if self.mode == "thread":
            return ThreadPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(max_workers=workers)


def run_jobs(
    jobs: Iterable[Job], engine: ExperimentEngine | None = None
) -> list[Any]:
    """Run a batch on ``engine``, or serially when no engine is supplied.

    This is the hook every analysis driver uses: passing ``engine=None``
    reproduces the historical single-threaded behaviour exactly.
    """
    if engine is None:
        engine = ExperimentEngine()
    return engine.run(jobs)
