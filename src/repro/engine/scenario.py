"""Declarative, parameterised experiment scenarios.

The paper evaluates two fixed deployments with hand-wired drivers; the
engine turns a deployment-plus-workload configuration into *data*: a
:class:`ScenarioSpec` names the deployment base, places the application
and any number of contenders on cores (the TC27x has three, but the spec
deliberately expresses four or more for derivative platforms), and
optionally adds DMA traffic.  Specs are frozen dataclasses of frozen
dataclasses — picklable (they cross process-pool boundaries) and stably
hashable (they are cache keys), which is what lets the engine fan out and
memoise without bespoke per-driver plumbing.

A :class:`WorkloadRef` is the matching declarative task description: the
paper's control loop, an H/M/L load generator, a seeded synthetic task or
an explicit :class:`~repro.workloads.spec.WorkloadSpec` — resolved into a
replayable :class:`~repro.sim.program.TaskProgram` only inside the worker
that needs it (programs themselves hold closures and cannot travel).
"""

from __future__ import annotations

import dataclasses

from repro.errors import EngineError
from repro.platform.deployment import (
    DeploymentScenario,
    custom_scenario,
    named_scenarios,
)
from repro.platform.targets import Operation, Target
from repro.sim.dma import DmaAgent
from repro.sim.program import TaskProgram
from repro.sim.requests import MissKind, SriRequest
from repro.sim.system import ARBITRATION_POLICIES
from repro.workloads.spec import WorkloadSpec

#: Deployment bases a spec can name without spelling out target sets.
NAMED_BASES = ("scenario1", "scenario2", "architectural", "custom")

#: Workload kinds a :class:`WorkloadRef` can describe.
WORKLOAD_KINDS = ("control-loop", "load", "synthetic", "spec")


@dataclasses.dataclass(frozen=True)
class WorkloadRef:
    """Declarative reference to one task program.

    Attributes:
        kind: one of :data:`WORKLOAD_KINDS`.
        level: contender level (``"H"``/``"M"``/``"L"``) for ``"load"``.
        seed: RNG seed for ``"synthetic"``.
        scale: footprint scale relative to the paper's full-size run.
        max_requests: request budget for ``"synthetic"``.
        name: task name override (defaults per kind).
        spec: explicit workload for ``"spec"``.
    """

    kind: str
    level: str | None = None
    seed: int | None = None
    scale: float = 1.0
    max_requests: int = 2_000
    name: str = ""
    spec: WorkloadSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise EngineError(
                f"unknown workload kind {self.kind!r}; "
                f"expected one of {WORKLOAD_KINDS}"
            )
        if self.kind == "load" and self.level is None:
            raise EngineError("load workloads need a level (H/M/L)")
        if self.kind == "synthetic" and self.seed is None:
            raise EngineError("synthetic workloads need a seed")
        if self.kind == "spec" and self.spec is None:
            raise EngineError("spec workloads need an explicit WorkloadSpec")
        if self.scale <= 0:
            raise EngineError("workload scale must be positive")

    # -- constructors --------------------------------------------------
    @classmethod
    def control_loop(cls, *, scale: float = 1.0, name: str = "app") -> "WorkloadRef":
        """The paper's cruise-control application (Section 4.2)."""
        return cls(kind="control-loop", scale=scale, name=name)

    @classmethod
    def load(cls, level: str, *, scale: float = 1.0) -> "WorkloadRef":
        """One of the H/M/L SRI load generators."""
        return cls(kind="load", level=level, scale=scale)

    @classmethod
    def synthetic(
        cls,
        seed: int,
        *,
        scale: float = 1.0,
        max_requests: int = 2_000,
        name: str = "",
    ) -> "WorkloadRef":
        """A seeded random-but-valid task (soundness sweeps)."""
        return cls(
            kind="synthetic",
            seed=seed,
            scale=scale,
            max_requests=max_requests,
            name=name,
        )

    @classmethod
    def from_spec(cls, spec: WorkloadSpec, *, scale: float = 1.0) -> "WorkloadRef":
        """An explicit request-block workload."""
        return cls(kind="spec", spec=spec, scale=scale, name=spec.name)

    # -- resolution ----------------------------------------------------
    def build(
        self, base: str, deployment: DeploymentScenario
    ) -> TaskProgram:
        """Materialise the program under a spec's deployment."""
        # Imported here: repro.workloads.control_loop pulls in the
        # footprint inverter, which is only needed at build time.
        from repro.workloads.control_loop import build_control_loop
        from repro.workloads.loads import build_load
        from repro.workloads.synthetic import random_workload

        if self.kind == "control-loop":
            if base not in ("scenario1", "scenario2"):
                raise EngineError(
                    "the control-loop application is defined for the two "
                    f"reference deployments; base is {base!r}"
                )
            program, _ = build_control_loop(
                deployment, scale=self.scale, name=self.name or "app"
            )
            return program
        if self.kind == "load":
            assert self.level is not None
            return build_load(base, self.level, scale=self.scale)
        if self.kind == "synthetic":
            assert self.seed is not None
            spec = random_workload(
                self.name or f"rand-{self.seed}",
                deployment,
                seed=self.seed,
                max_requests=self.max_requests,
            )
            if self.scale != 1.0:
                spec = spec.scaled(self.scale)
            return spec.program()
        assert self.spec is not None
        spec = self.spec if self.scale == 1.0 else self.spec.scaled(self.scale)
        return spec.program()


@dataclasses.dataclass(frozen=True)
class DmaSpec:
    """Declarative DMA traffic: a fixed-rate extra SRI master.

    Mirrors :class:`~repro.sim.dma.DmaAgent` with plain data so specs
    stay picklable and hashable.
    """

    master_id: int
    target: Target
    count: int
    operation: Operation = Operation.DATA
    period: int = 1
    queue_depth: int = 4
    start_time: int = 0
    write: bool = False

    def __post_init__(self) -> None:
        # Mirror DmaAgent's checks so a bad descriptor is rejected when
        # the spec is *constructed* (the registry's reject-at-registration
        # principle), not when `.agent()` finally runs inside a possibly
        # remote worker.
        if self.master_id < 0:
            raise EngineError("DMA master id must be non-negative")
        if not isinstance(self.target, Target):
            raise EngineError(
                f"DMA target must be a Target, got {self.target!r}"
            )
        if self.count < 0:
            raise EngineError("DMA count must be non-negative")
        if self.period < 1:
            raise EngineError("DMA period must be at least one cycle")
        if self.queue_depth < 1:
            raise EngineError("DMA queue depth must be at least 1")
        if self.start_time < 0:
            raise EngineError("DMA start time must be non-negative")

    def agent(self) -> DmaAgent:
        """Build the simulator-facing agent."""
        return DmaAgent(
            master_id=self.master_id,
            request=SriRequest(
                target=self.target,
                operation=self.operation,
                miss_kind=MissKind.UNCACHED,
                write=self.write,
            ),
            count=self.count,
            period=self.period,
            queue_depth=self.queue_depth,
            start_time=self.start_time,
        )


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative experiment deployment.

    Attributes:
        name: registry key (``"scenario1-pair-H"``, ``"scenario1-4core"``).
        base: deployment base — a named deployment (``"scenario1"``,
            ``"scenario2"``, ``"architectural"``) or ``"custom"`` with the
            target sets spelled out in the ``code_targets`` /
            ``data_targets`` / ``dirty_targets`` fields.
        description: one-line summary for reports and ``repro scenarios``.
        app: the task under analysis.
        app_core: core the application is pinned on (the paper uses 1).
        contenders: ``(core, workload)`` placements of the co-runners;
            any number of cores is allowed, so a spec can describe a
            four-core derivative as easily as the TC27x's three.
        dma: additional DMA masters contending on the SRI.
        arbitration: SRI arbitration policy the co-run simulates —
            ``"round-robin"`` (the paper's same-priority-class scoping,
            default) or ``"priority"`` (fixed priority with round-robin
            among equals, the SRI's behaviour across priority classes).
        priorities: ``(master_id, class)`` pairs for ``"priority"``
            arbitration (lower class wins); masters left out default to
            class 0.  Only declared cores / DMA masters may appear.
        code_targets, data_targets, dirty_targets, code_count_exact,
        data_count_lower_bounded: custom-base deployment description
            (ignored for named bases).
    """

    name: str
    base: str = "scenario1"
    description: str = ""
    app: WorkloadRef = WorkloadRef.control_loop()
    app_core: int = 1
    contenders: tuple[tuple[int, WorkloadRef], ...] = ()
    dma: tuple[DmaSpec, ...] = ()
    arbitration: str = "round-robin"
    priorities: tuple[tuple[int, int], ...] = ()
    code_targets: tuple[Target, ...] = ()
    data_targets: tuple[Target, ...] = ()
    dirty_targets: tuple[Target, ...] = ()
    code_count_exact: bool = False
    data_count_lower_bounded: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise EngineError("a scenario spec needs a name")
        if self.base not in NAMED_BASES:
            raise EngineError(
                f"unknown deployment base {self.base!r}; "
                f"expected one of {NAMED_BASES}"
            )
        if self.base == "custom" and not (
            self.code_targets or self.data_targets
        ):
            raise EngineError(
                f"custom spec {self.name!r} needs code or data targets"
            )
        # The control loop and the H/M/L generators are reconstructions
        # of the paper's Table 6 workloads — they only exist under the
        # two reference deployments.  Reject the mismatch at registration
        # rather than deep inside a (possibly remote) worker.
        if self.base not in ("scenario1", "scenario2"):
            placed = [("app", self.app)] + [
                (f"core {core}", ref) for core, ref in self.contenders
            ]
            for where, ref in placed:
                if ref.kind in ("control-loop", "load"):
                    raise EngineError(
                        f"spec {self.name!r}: {ref.kind!r} workloads "
                        f"({where}) are defined only for the reference "
                        f"deployments, not base {self.base!r}"
                    )
        cores = [self.app_core] + [core for core, _ in self.contenders]
        if len(set(cores)) != len(cores):
            raise EngineError(
                f"spec {self.name!r} places two tasks on one core"
            )
        if any(core < 0 for core in cores):
            raise EngineError("core ids must be non-negative")
        masters = [agent.master_id for agent in self.dma]
        if len(set(masters)) != len(masters) or set(masters) & set(cores):
            raise EngineError(
                f"spec {self.name!r}: DMA master ids must be unique and "
                "distinct from core ids"
            )
        if self.arbitration not in ARBITRATION_POLICIES:
            raise EngineError(
                f"spec {self.name!r}: unknown arbitration policy "
                f"{self.arbitration!r}; expected one of "
                f"{ARBITRATION_POLICIES}"
            )
        if self.priorities:
            if self.arbitration != "priority":
                raise EngineError(
                    f"spec {self.name!r}: priorities only apply to "
                    "arbitration='priority' (round-robin ignores them)"
                )
            ids = [master for master, _ in self.priorities]
            known = set(cores) | set(masters)
            if len(set(ids)) != len(ids):
                raise EngineError(
                    f"spec {self.name!r}: duplicate master id in priorities"
                )
            unknown = set(ids) - known
            if unknown:
                raise EngineError(
                    f"spec {self.name!r}: priorities name masters "
                    f"{sorted(unknown)} that are neither occupied cores "
                    "nor declared DMA masters"
                )
            if any(
                not isinstance(level, int) or level < 0
                for _, level in self.priorities
            ):
                raise EngineError(
                    f"spec {self.name!r}: priority classes must be "
                    "non-negative integers"
                )

    # ------------------------------------------------------------------
    @property
    def core_count(self) -> int:
        """Number of cores the spec occupies (application included)."""
        return 1 + len(self.contenders)

    @property
    def cores(self) -> tuple[int, ...]:
        """All occupied core ids, sorted."""
        return tuple(
            sorted([self.app_core] + [core for core, _ in self.contenders])
        )

    def deployment(self) -> DeploymentScenario:
        """The model-facing deployment scenario this spec runs under."""
        if self.base != "custom":
            return named_scenarios()[self.base]
        return custom_scenario(
            self.name,
            code_targets=self.code_targets,
            data_targets=self.data_targets,
            dirty_targets=frozenset(self.dirty_targets),
            code_count_exact=self.code_count_exact,
            data_count_lower_bounded=self.data_count_lower_bounded,
            description=self.description,
        )

    def app_program(self) -> TaskProgram:
        """Materialise the application's program."""
        return self.app.build(self.base, self.deployment())

    def contender_programs(self) -> dict[int, TaskProgram]:
        """Materialise every contender, keyed by core."""
        deployment = self.deployment()
        return {
            core: workload.build(self.base, deployment)
            for core, workload in self.contenders
        }

    def programs(self) -> dict[int, TaskProgram]:
        """All per-core programs of one co-run, application included."""
        programs = {self.app_core: self.app_program()}
        programs.update(self.contender_programs())
        return programs

    def dma_agents(self) -> tuple[DmaAgent, ...]:
        """Materialise the DMA masters."""
        return tuple(spec.agent() for spec in self.dma)

    def priority_map(self) -> dict[int, int]:
        """The simulator-facing master id → priority class mapping."""
        return dict(self.priorities)

    def scaled(self, factor: float) -> "ScenarioSpec":
        """The same deployment with every workload footprint scaled."""
        if factor <= 0:
            raise EngineError("scale factor must be positive")
        return dataclasses.replace(
            self,
            app=dataclasses.replace(self.app, scale=self.app.scale * factor),
            contenders=tuple(
                (core, dataclasses.replace(ref, scale=ref.scale * factor))
                for core, ref in self.contenders
            ),
        )
