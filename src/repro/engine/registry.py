"""Named scenario registry: deployments as data, not code.

Adding an experiment deployment used to mean writing a driver; now it
means registering a :class:`~repro.engine.scenario.ScenarioSpec`::

    from repro.engine import ScenarioSpec, WorkloadRef, register_scenario

    register_scenario(ScenarioSpec(
        name="sc1-quad",
        base="scenario1",
        description="app + three staggered loads (4-core derivative)",
        contenders=(
            (0, WorkloadRef.load("H", scale=1 / 64)),
            (2, WorkloadRef.load("M", scale=1 / 64)),
            (3, WorkloadRef.load("L", scale=1 / 64)),
        ),
        app=WorkloadRef.control_loop(scale=1 / 64),
    ))

after which ``repro run sc1-quad`` (or
:func:`repro.engine.experiment.run_spec`) executes it end to end.

The default registry ships the paper's pairings, the three-core TC277
layouts and a four-core derivative per reference deployment, so scenario
diversity is no longer capped at the paper's two figures.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Iterator

from repro.engine.scenario import ScenarioSpec, WorkloadRef
from repro.errors import EngineError

#: Workload scale of the bundled multi-core specs (keeps them fast).
_BUILTIN_SCALE = 1 / 32


class ScenarioRegistry:
    """An ordered name → :class:`ScenarioSpec` mapping."""

    def __init__(self, specs: Iterable[ScenarioSpec] = ()) -> None:
        self._specs: dict[str, ScenarioSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(
        self, spec: ScenarioSpec, *, replace: bool = False
    ) -> ScenarioSpec:
        """Add a spec under its name; re-registration needs ``replace``."""
        if not isinstance(spec, ScenarioSpec):
            raise EngineError(
                f"expected a ScenarioSpec, got {type(spec).__qualname__}"
            )
        if spec.name in self._specs and not replace:
            raise EngineError(
                f"scenario {spec.name!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        if name not in self._specs:
            raise EngineError(f"scenario {name!r} is not registered")
        del self._specs[name]

    def get(self, name: str) -> ScenarioSpec:
        try:
            return self._specs[name]
        except KeyError as exc:
            raise EngineError(
                f"unknown scenario {name!r}; "
                f"registered: {', '.join(self.names()) or '(none)'}"
            ) from exc

    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def specs(self) -> tuple[ScenarioSpec, ...]:
        return tuple(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs.values())


def builtin_specs() -> tuple[ScenarioSpec, ...]:
    """The specs every registry starts from.

    Per reference deployment: the paper's three two-core pairings
    (Figure 4's bars), the three-core TC277 layout (application plus two
    loads) and a four-core derivative demonstrating that specs are not
    capped at the TC27x's core count.
    """
    specs: list[ScenarioSpec] = []
    for base in ("scenario1", "scenario2"):
        for level in ("H", "M", "L"):
            specs.append(
                ScenarioSpec(
                    name=f"{base}-pair-{level}",
                    base=base,
                    description=(
                        f"paper pairing: app on core 1 vs {level}-Load "
                        "on core 2"
                    ),
                    app=WorkloadRef.control_loop(scale=_BUILTIN_SCALE),
                    contenders=(
                        (2, WorkloadRef.load(level, scale=_BUILTIN_SCALE)),
                    ),
                )
            )
        specs.append(
            ScenarioSpec(
                name=f"{base}-3core",
                base=base,
                description=(
                    "full TC277: app on core 1, H-Load on core 0, "
                    "L-Load on core 2"
                ),
                app=WorkloadRef.control_loop(scale=_BUILTIN_SCALE),
                contenders=(
                    (0, WorkloadRef.load("H", scale=_BUILTIN_SCALE)),
                    (2, WorkloadRef.load("L", scale=_BUILTIN_SCALE)),
                ),
            )
        )
        specs.append(
            ScenarioSpec(
                name=f"{base}-4core",
                base=base,
                description=(
                    "four-core derivative: app on core 1, H/M/L loads "
                    "on cores 0, 2, 3"
                ),
                app=WorkloadRef.control_loop(scale=_BUILTIN_SCALE),
                contenders=(
                    (0, WorkloadRef.load("H", scale=_BUILTIN_SCALE)),
                    (2, WorkloadRef.load("M", scale=_BUILTIN_SCALE)),
                    (3, WorkloadRef.load("L", scale=_BUILTIN_SCALE)),
                ),
            )
        )
    return tuple(specs)


_DEFAULT: ScenarioRegistry | None = None


def default_registry() -> ScenarioRegistry:
    """The process-wide registry, created with the builtin specs."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ScenarioRegistry(builtin_specs())
    return _DEFAULT


def register_scenario(
    spec: ScenarioSpec, *, replace: bool = False
) -> ScenarioSpec:
    """Register a spec in the default registry."""
    return default_registry().register(spec, replace=replace)


@contextlib.contextmanager
def temporary_scenarios(
    *specs: ScenarioSpec, replace: bool = False
) -> Iterator[ScenarioRegistry]:
    """Scope registrations to a ``with`` block.

    Registration mutates the *process-wide* registry, so an example or
    test that registers specs would otherwise leak them into everything
    that runs later in the process.  This context manager snapshots the
    registry, registers ``specs`` (more can be added inside the block —
    ``register_scenario`` and :func:`~repro.engine.families.
    register_family_members` both target the same default registry) and
    restores the exact prior contents on exit, exception or not::

        with temporary_scenarios(my_spec) as registry:
            run_spec(my_spec.name)
        # my_spec is gone again

    The accompanying pytest fixture (``scenario_sandbox`` in
    ``tests/conftest.py``) wraps whole tests in one.
    """
    registry = default_registry()
    snapshot = dict(registry._specs)
    try:
        for spec in specs:
            registry.register(spec, replace=replace)
        yield registry
    finally:
        registry._specs.clear()
        registry._specs.update(snapshot)


def get_scenario(name: str) -> ScenarioSpec:
    """Look a spec up in the default registry."""
    return default_registry().get(name)


def scenario_names() -> tuple[str, ...]:
    """Names registered in the default registry."""
    return default_registry().names()
