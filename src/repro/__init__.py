"""repro — reproduction of "Modelling Multicore Contention on the AURIX
TC27x" (Diaz, Mezzetti, Kosmidis, Abella, Cazorla — DAC 2018).

The library has four layers; each is importable on its own and re-exported
here for convenience:

* :mod:`repro.platform` — TC27x architecture facts: SRI targets, Table 2
  latencies, memory map, Table 3 placement rules, deployment scenarios.
* :mod:`repro.core` — the contention models (ideal, fTC, ILP-PTAC) and
  WCET assembly; :mod:`repro.ilp` is the self-contained ILP substrate
  underneath.
* :mod:`repro.sim` — a cycle-level simulator of the TC27x memory system
  standing in for the paper's hardware testbed, with
  :mod:`repro.workloads` generating the evaluation tasks.
* :mod:`repro.analysis` — MBTA protocol, platform characterisation and
  the drivers regenerating every table and figure of the paper
  (reference constants in :mod:`repro.paper`).

Quickstart::

    from repro import (
        TaskReadings, scenario_1, tc27x_latency_profile, wcet_estimate,
    )

    app = TaskReadings("app", pmem_stall=3_421_242, dmem_stall=8_345_056,
                       pcache_miss=236_544, ccnt=13_600_000)
    rival = TaskReadings("rival", pmem_stall=1_744_167,
                         dmem_stall=4_251_811, pcache_miss=120_594)
    estimate = wcet_estimate(
        "ilp-ptac", app, tc27x_latency_profile(), scenario_1(), rival,
    )
    print(estimate.describe())   # isolation + Δcont, 1.49x
"""

from repro.core import (
    AccessProfile,
    ContentionBound,
    IlpPtacOptions,
    ModelKind,
    WcetEstimate,
    access_count_bounds,
    contention_bound,
    ftc_baseline,
    ftc_refined,
    ideal_bound,
    ilp_ptac_bound,
    multi_contender_bound,
    wcet_estimate,
)
from repro.counters import DebugCounter, TaskReadings
from repro.errors import ReproError
from repro.platform import (
    DeploymentScenario,
    LatencyProfile,
    Operation,
    Target,
    architectural_scenario,
    custom_scenario,
    scenario_1,
    scenario_2,
    tc277,
    tc27x_latency_profile,
)

__version__ = "1.0.0"

__all__ = [
    "AccessProfile",
    "ContentionBound",
    "DebugCounter",
    "DeploymentScenario",
    "IlpPtacOptions",
    "LatencyProfile",
    "ModelKind",
    "Operation",
    "ReproError",
    "Target",
    "TaskReadings",
    "WcetEstimate",
    "__version__",
    "access_count_bounds",
    "architectural_scenario",
    "contention_bound",
    "custom_scenario",
    "ftc_baseline",
    "ftc_refined",
    "ideal_bound",
    "ilp_ptac_bound",
    "multi_contender_bound",
    "scenario_1",
    "scenario_2",
    "tc277",
    "tc27x_latency_profile",
    "wcet_estimate",
]
