"""repro — reproduction of "Modelling Multicore Contention on the AURIX
TC27x" (Diaz, Mezzetti, Kosmidis, Abella, Cazorla — DAC 2018).

The library has five layers; each is importable on its own and the most
useful names are re-exported here for convenience:

* :mod:`repro.platform` — TC27x architecture facts: SRI targets, Table 2
  latencies, memory map, Table 3 placement rules, deployment scenarios.
* :mod:`repro.core` — the contention models as a registered,
  name-addressable family (fTC, ILP-PTAC and its time-composable /
  multi-contender variants, ideal, the priority/DMA occupancy bounds
  and the FSB reductions — ``repro models`` lists them) behind one
  ``contention_bound(name, ...)`` facade, plus WCET assembly;
  :mod:`repro.ilp` is the self-contained ILP substrate underneath.
* :mod:`repro.sim` — a cycle-level simulator of the TC27x memory system
  standing in for the paper's hardware testbed, with
  :mod:`repro.workloads` generating the evaluation tasks.
* :mod:`repro.engine` — the unified experiment engine: deployments as
  declarative, registered :class:`~repro.engine.scenario.ScenarioSpec`
  data (any core count), whole parameter grids as registered
  :class:`~repro.engine.families.ScenarioFamily` generators
  (``repro families``), experiments as batches of independent jobs
  fanned out serially or over thread/process pools, and a
  content-addressed result cache that lets repeated sweeps skip
  re-simulation.
* :mod:`repro.analysis` — MBTA protocol, platform characterisation and
  the drivers regenerating every table and figure of the paper
  (reference constants in :mod:`repro.paper`); every driver accepts an
  optional ``engine=`` for parallel, cached execution.

Quickstart::

    from repro import (
        TaskReadings, scenario_1, tc27x_latency_profile, wcet_estimate,
    )

    app = TaskReadings("app", pmem_stall=3_421_242, dmem_stall=8_345_056,
                       pcache_miss=236_544, ccnt=13_600_000)
    rival = TaskReadings("rival", pmem_stall=1_744_167,
                         dmem_stall=4_251_811, pcache_miss=120_594)
    estimate = wcet_estimate(
        "ilp-ptac", app, tc27x_latency_profile(), scenario_1(), rival,
    )
    print(estimate.describe())   # isolation + Δcont, 1.49x

Registering and running a new deployment scenario::

    from repro import ScenarioSpec, WorkloadRef, register_scenario, run_spec

    register_scenario(ScenarioSpec(
        name="my-quad",
        base="scenario2",
        app=WorkloadRef.control_loop(scale=1 / 32),
        contenders=(
            (0, WorkloadRef.load("H", scale=1 / 32)),
            (2, WorkloadRef.load("M", scale=1 / 32)),
            (3, WorkloadRef.load("L", scale=1 / 32)),
        ),
    ))
    print(run_spec("my-quad").sound)   # measured, bounded, co-run: True
"""

from repro.core import (
    AccessProfile,
    AnalysisContext,
    ContentionBound,
    ContentionModel,
    IlpPtacOptions,
    ModelCapabilities,
    ModelKind,
    ModelSpec,
    WcetEstimate,
    access_count_bounds,
    contention_bound,
    ftc_baseline,
    ftc_refined,
    get_model,
    ideal_bound,
    ilp_ptac_bound,
    model_names,
    multi_contender_bound,
    register_model,
    temporary_models,
    wcet_estimate,
)
from repro.counters import DebugCounter, TaskReadings
from repro.engine import (
    DmaSpec,
    ExperimentEngine,
    ResultCache,
    ScenarioFamily,
    ScenarioSpec,
    WorkloadRef,
    expand_family,
    register_family,
    register_scenario,
    run_family,
    run_spec,
    temporary_families,
    temporary_scenarios,
)
from repro.errors import ReproError
from repro.platform import (
    DeploymentScenario,
    LatencyProfile,
    Operation,
    Target,
    architectural_scenario,
    custom_scenario,
    scenario_1,
    scenario_2,
    tc277,
    tc27x_latency_profile,
)

__version__ = "1.0.0"

__all__ = [
    "AccessProfile",
    "AnalysisContext",
    "ContentionBound",
    "ContentionModel",
    "DebugCounter",
    "DeploymentScenario",
    "ExperimentEngine",
    "IlpPtacOptions",
    "LatencyProfile",
    "ModelCapabilities",
    "ModelKind",
    "ModelSpec",
    "Operation",
    "DmaSpec",
    "ReproError",
    "ResultCache",
    "ScenarioFamily",
    "ScenarioSpec",
    "Target",
    "TaskReadings",
    "WcetEstimate",
    "WorkloadRef",
    "__version__",
    "access_count_bounds",
    "architectural_scenario",
    "contention_bound",
    "custom_scenario",
    "expand_family",
    "ftc_baseline",
    "ftc_refined",
    "get_model",
    "ideal_bound",
    "ilp_ptac_bound",
    "model_names",
    "multi_contender_bound",
    "register_family",
    "register_model",
    "register_scenario",
    "run_family",
    "run_spec",
    "scenario_1",
    "scenario_2",
    "tc277",
    "tc27x_latency_profile",
    "temporary_families",
    "temporary_models",
    "temporary_scenarios",
    "wcet_estimate",
]
