"""Per-task debug-counter readings — the models' only input about a task.

A :class:`TaskReadings` object is what "running the task in isolation and
reading the DSU" produces (Table 4/Table 6 of the paper): cumulative
PMEM_STALL / DMEM_STALL stall cycles, the three cache-miss counts and,
optionally, the observed execution time (CCNT) needed to turn a contention
bound into a WCET estimate.

The class is deliberately dumb — plain validated integers — because model
flexibility (contribution ➂) comes from *interpreting* the readings under a
deployment scenario, which is the job of :mod:`repro.core`.
"""

from __future__ import annotations

import dataclasses
import math

from repro.counters.dsu import DebugCounter
from repro.errors import CounterError


@dataclasses.dataclass(frozen=True)
class TaskReadings:
    """Cumulative DSU readings of one task over one run in isolation.

    Attributes:
        name: task identifier for reports (e.g. ``"app"``, ``"H-Load"``).
        pmem_stall: PMEM_STALL — cycles stalled on the program memory
            interface (``cs^co`` in the paper's notation).
        dmem_stall: DMEM_STALL — cycles stalled on the data memory
            interface (``cs^da``).
        pcache_miss: PCACHE_MISS — instruction cache misses (``PM``).
        dcache_miss_clean: D$ clean misses (``DMC``).
        dcache_miss_dirty: D$ dirty misses (``DMD``).
        ccnt: observed execution time in cycles, if collected.  Required
            only when assembling WCET estimates, not for contention bounds.
    """

    name: str
    pmem_stall: int
    dmem_stall: int
    pcache_miss: int
    dcache_miss_clean: int = 0
    dcache_miss_dirty: int = 0
    ccnt: int | None = None

    def __post_init__(self) -> None:
        for field in (
            "pmem_stall",
            "dmem_stall",
            "pcache_miss",
            "dcache_miss_clean",
            "dcache_miss_dirty",
        ):
            value = getattr(self, field)
            if not isinstance(value, int) or value < 0:
                raise CounterError(
                    f"{self.name!r}: {field} must be a non-negative integer, "
                    f"got {value!r}"
                )
        if self.ccnt is not None and (
            not isinstance(self.ccnt, int) or self.ccnt <= 0
        ):
            raise CounterError(
                f"{self.name!r}: ccnt must be a positive integer when present"
            )
        if self.ccnt is not None and self.ccnt < self.pmem_stall + self.dmem_stall:
            raise CounterError(
                f"{self.name!r}: execution time ({self.ccnt}) is shorter "
                f"than the stall cycles it must contain "
                f"({self.pmem_stall + self.dmem_stall})"
            )

    # ------------------------------------------------------------------
    # Table 4 shorthand accessors
    # ------------------------------------------------------------------
    @property
    def ps(self) -> int:
        """PMEM_STALL (code stall cycles, ``cs^co``)."""
        return self.pmem_stall

    @property
    def ds(self) -> int:
        """DMEM_STALL (data stall cycles, ``cs^da``)."""
        return self.dmem_stall

    @property
    def pm(self) -> int:
        """PCACHE_MISS (instruction cache miss count)."""
        return self.pcache_miss

    @property
    def dmc(self) -> int:
        """DCACHE_MISS_CLEAN."""
        return self.dcache_miss_clean

    @property
    def dmd(self) -> int:
        """DCACHE_MISS_DIRTY."""
        return self.dcache_miss_dirty

    @property
    def data_cache_misses(self) -> int:
        """Total data-cache misses (DMC + DMD).

        Under Scenario 2 this is a lower bound on the task's SRI data
        requests (the tailoring constraint of Table 5).
        """
        return self.dcache_miss_clean + self.dcache_miss_dirty

    def require_ccnt(self) -> int:
        """Return the execution time, raising if it was not collected."""
        if self.ccnt is None:
            raise CounterError(
                f"{self.name!r}: execution time (CCNT) was not collected; "
                "it is required to assemble a WCET estimate"
            )
        return self.ccnt

    # ------------------------------------------------------------------
    # Derived / transformed readings
    # ------------------------------------------------------------------
    def scaled(self, factor: float, *, name: str | None = None) -> "TaskReadings":
        """Scale every reading by ``factor`` (rounding up, conservatively).

        Used to synthesise the M/L-load contender readings from the H-Load
        row of Table 6 and to shrink workloads for fast simulation.  Counts
        are rounded *up* so scaled readings never under-approximate.
        """
        if factor <= 0:
            raise CounterError("scale factor must be positive")

        def scale(value: int) -> int:
            return int(math.ceil(value * factor))

        return TaskReadings(
            name=name if name is not None else f"{self.name}x{factor:g}",
            pmem_stall=scale(self.pmem_stall),
            dmem_stall=scale(self.dmem_stall),
            pcache_miss=scale(self.pcache_miss),
            dcache_miss_clean=scale(self.dcache_miss_clean),
            dcache_miss_dirty=scale(self.dcache_miss_dirty),
            ccnt=scale(self.ccnt) if self.ccnt is not None else None,
        )

    def with_ccnt(self, ccnt: int) -> "TaskReadings":
        """A copy of the readings with the execution time attached."""
        return dataclasses.replace(self, ccnt=ccnt)

    def as_row(self) -> dict[str, int]:
        """Table 6 row rendering: ``{PM, DMC, DMD, PS, DS}``."""
        return {
            "PM": self.pcache_miss,
            "DMC": self.dcache_miss_clean,
            "DMD": self.dcache_miss_dirty,
            "PS": self.pmem_stall,
            "DS": self.dmem_stall,
        }

    @classmethod
    def from_bank_snapshot(
        cls,
        name: str,
        snapshot: dict[DebugCounter, int],
        *,
        ccnt: int | None = None,
    ) -> "TaskReadings":
        """Build readings from a :class:`~repro.counters.dsu.CounterBank`
        snapshot taken by the simulator's DSU."""
        return cls(
            name=name,
            pmem_stall=snapshot.get(DebugCounter.PMEM_STALL, 0),
            dmem_stall=snapshot.get(DebugCounter.DMEM_STALL, 0),
            pcache_miss=snapshot.get(DebugCounter.PCACHE_MISS, 0),
            dcache_miss_clean=snapshot.get(DebugCounter.DCACHE_MISS_CLEAN, 0),
            dcache_miss_dirty=snapshot.get(DebugCounter.DCACHE_MISS_DIRTY, 0),
            ccnt=ccnt
            if ccnt is not None
            else (snapshot.get(DebugCounter.CCNT) or None),
        )
