"""Debug Support Unit counters and per-task readings (Table 4)."""

from repro.counters.dsu import (
    COUNTER_MAX,
    COUNTER_WIDTH_BITS,
    MODEL_COUNTERS,
    CounterBank,
    DebugCounter,
)
from repro.counters.readings import TaskReadings

__all__ = [
    "COUNTER_MAX",
    "COUNTER_WIDTH_BITS",
    "CounterBank",
    "DebugCounter",
    "MODEL_COUNTERS",
    "TaskReadings",
]
