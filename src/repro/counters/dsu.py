"""Debug Support Unit (DSU) counter model.

The contention model's industrial-viability claim (contribution ➀ of the
paper) is that it only consumes information available through the standard
AURIX DSU: the on-chip cycle counter plus five configurable debug counters.
This module names those counters and provides a small mutable bank the
simulator increments, with the same read-out semantics as the hardware
(saturating 32-bit counts, snapshot/delta reads).
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import CounterError


class DebugCounter(enum.Enum):
    """The TC27x debug counters the model relies on (Section 2).

    Values are the names used by the AURIX debug infrastructure; the short
    aliases of Table 4 (PS, DS, PM, DMC, DMD) are available through
    :attr:`short_name`.
    """

    CCNT = "CCNT"
    PMEM_STALL = "PMEM_STALL"
    DMEM_STALL = "DMEM_STALL"
    PCACHE_MISS = "PCACHE_MISS"
    DCACHE_MISS_CLEAN = "DCACHE_MISS_CLEAN"
    DCACHE_MISS_DIRTY = "DCACHE_MISS_DIRTY"

    @property
    def short_name(self) -> str:
        """Table 4 shorthand (``PS``, ``DS``, ``PM``, ``DMC``, ``DMD``)."""
        return {
            DebugCounter.CCNT: "CCNT",
            DebugCounter.PMEM_STALL: "PS",
            DebugCounter.DMEM_STALL: "DS",
            DebugCounter.PCACHE_MISS: "PM",
            DebugCounter.DCACHE_MISS_CLEAN: "DMC",
            DebugCounter.DCACHE_MISS_DIRTY: "DMD",
        }[self]

    @property
    def description(self) -> str:
        """What the counter measures, per the paper's Section 2."""
        return {
            DebugCounter.CCNT: "elapsed clock cycles",
            DebugCounter.PMEM_STALL: (
                "cycles the pipeline stalled on the program memory interface"
            ),
            DebugCounter.DMEM_STALL: (
                "cycles the pipeline stalled on the data memory interface"
            ),
            DebugCounter.PCACHE_MISS: "instruction cache misses",
            DebugCounter.DCACHE_MISS_CLEAN: "clean data cache misses",
            DebugCounter.DCACHE_MISS_DIRTY: "dirty data cache misses",
        }[self]


#: The counters configured for every experiment run (Table 4).
MODEL_COUNTERS: tuple[DebugCounter, ...] = (
    DebugCounter.PMEM_STALL,
    DebugCounter.DMEM_STALL,
    DebugCounter.PCACHE_MISS,
    DebugCounter.DCACHE_MISS_CLEAN,
    DebugCounter.DCACHE_MISS_DIRTY,
)

#: Hardware counter width: the TC27x debug counters are 32-bit.
COUNTER_WIDTH_BITS = 32
COUNTER_MAX = (1 << COUNTER_WIDTH_BITS) - 1


@dataclasses.dataclass
class CounterBank:
    """A mutable bank of DSU counters, incremented by the simulator.

    The bank mimics the hardware behaviour relevant to MBTA practice:
    counts saturate at the 32-bit limit (rather than wrapping, which would
    silently corrupt measurements) and reads are non-destructive.
    """

    _values: dict[DebugCounter, int] = dataclasses.field(
        default_factory=lambda: {c: 0 for c in DebugCounter}
    )
    saturated: bool = False

    def increment(self, counter: DebugCounter, amount: int = 1) -> None:
        """Add ``amount`` to ``counter``, saturating at the 32-bit limit."""
        if amount < 0:
            raise CounterError("counter increments must be non-negative")
        value = self._values[counter] + amount
        if value > COUNTER_MAX:
            value = COUNTER_MAX
            self.saturated = True
        self._values[counter] = value

    def read(self, counter: DebugCounter) -> int:
        """Current value of ``counter``."""
        return self._values[counter]

    def reset(self) -> None:
        """Zero every counter (done before each measurement run)."""
        for counter in DebugCounter:
            self._values[counter] = 0
        self.saturated = False

    def snapshot(self) -> dict[DebugCounter, int]:
        """An immutable copy of all counter values."""
        return dict(self._values)

    def delta(self, earlier: dict[DebugCounter, int]) -> dict[DebugCounter, int]:
        """Per-counter difference against an earlier :meth:`snapshot`."""
        deltas = {}
        for counter, value in self._values.items():
            before = earlier.get(counter, 0)
            if value < before:
                raise CounterError(
                    f"{counter.value} decreased between snapshots "
                    f"({before} -> {value})"
                )
            deltas[counter] = value - before
        return deltas
